"""Setuptools entry point.

Kept alongside pyproject.toml so `pip install -e .` works on
environments whose pip/setuptools lack PEP 660 editable-wheel support
(the legacy `setup.py develop` path needs this file).
"""

from setuptools import setup

setup()
