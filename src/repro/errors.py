"""The unified typed exception hierarchy.

Before this module existed, each subsystem grew its own ad-hoc errors:
``optimize/lp.py`` raised a bare ``ValueError`` subclass for infeasible
constraints, ``service/protocol.py`` owned the wire-level service
errors, and the estimators raised ``InsufficientSamplesError`` from
their own base module.  Robust degradation needs one place where the
runtime can say "anything recoverable" (``except ReproError``) and one
taxonomy the fault injector, the degradation ladder, and the chaos
reports all agree on.

Every class that moved here is still re-exported from its historical
module (``repro.optimize.lp``, ``repro.estimators.base``,
``repro.service.protocol``), so existing imports — and existing
``except`` clauses — keep working.  Back-compat constraints honoured:

* :class:`InsufficientSamplesError` and
  :class:`InfeasibleConstraintError` still subclass ``ValueError``.
* :class:`CovarianceError` subclasses ``numpy.linalg.LinAlgError`` so
  historical ``except LinAlgError`` around the PSD repair keeps firing.
* Every :class:`ServiceError` subclass keeps its wire-level ``code``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

__all__ = [
    "ReproError",
    # estimation
    "EstimationError",
    "InsufficientSamplesError",
    "ConvergenceError",
    "CovarianceError",
    # optimization
    "OptimizationError",
    "InfeasibleConstraintError",
    # telemetry
    "TelemetryError",
    "SensorReadError",
    # persistence
    "PersistenceError",
    "CheckpointError",
    # cluster
    "ClusterError",
    "TenantCrashError",
    # fault injection
    "FaultPlanError",
    # service (wire-level)
    "ServiceError",
    "ServiceOverloaded",
    "DeadlineExceeded",
    "RequestRejected",
    "EstimationRejected",
    "ProtocolError",
    "FrameError",
    "RemoteError",
    "ShardUnavailable",
]


class ReproError(Exception):
    """Root of every typed error the reproduction raises on purpose.

    The degradation machinery treats ``ReproError`` (plus the transport
    exceptions the service client surfaces) as *recoverable*: something
    a controller may answer by stepping down its estimator ladder rather
    than crashing.  Genuine programming errors stay ordinary
    ``TypeError`` / ``RuntimeError`` and propagate.
    """


# ----------------------------------------------------------------------
# Estimation
# ----------------------------------------------------------------------
class EstimationError(ReproError):
    """An estimator failed to produce a usable curve."""


class InsufficientSamplesError(EstimationError, ValueError):
    """The estimator cannot produce a well-posed estimate from so few samples.

    Subclasses ``ValueError`` because it historically did (it lived in
    ``repro.estimators.base``) and callers catch it as one.
    """


class ConvergenceError(EstimationError):
    """EM hit its iteration cap without converging, or its likelihood
    became non-finite mid-fit.

    Attributes:
        iterations: Iterations executed before giving up.
        loglik: The last observed-data log-likelihood (may be NaN).
    """

    def __init__(self, message: str, iterations: int = 0,
                 loglik: float = float("nan")) -> None:
        super().__init__(message)
        self.iterations = int(iterations)
        self.loglik = float(loglik)


class CovarianceError(EstimationError, np.linalg.LinAlgError):
    """A covariance matrix could not be repaired to positive definite.

    Raised by :func:`repro.core.linalg.nearest_psd_jitter` after its
    jitter escalation is exhausted.  Subclasses
    ``numpy.linalg.LinAlgError`` so code written against the old raise
    (``except np.linalg.LinAlgError``) keeps working.
    """


# ----------------------------------------------------------------------
# Optimization
# ----------------------------------------------------------------------
class OptimizationError(ReproError):
    """The Eq. (1) optimizer could not produce a schedule."""


class InfeasibleConstraintError(OptimizationError, ValueError):
    """The performance constraint exceeds the estimated capacity.

    Raised by :meth:`repro.optimize.lp.EnergyMinimizer.solve` when
    ``work / deadline`` is higher than the highest rate on the estimated
    frontier.  Subclasses ``ValueError`` so historical ``except
    ValueError`` call sites keep working; new callers (notably the
    cluster power allocator) catch the typed error and read the attached
    capacity to degrade gracefully instead of failing.

    Attributes:
        required: The demanded rate, ``work / deadline`` (hb/s).
        max_rate: The highest achievable rate under the estimate (hb/s).
    """

    def __init__(self, required: float, max_rate: float) -> None:
        super().__init__(
            f"demand {required:g} hb/s exceeds estimated capacity "
            f"{max_rate:g} hb/s"
        )
        self.required = float(required)
        self.max_rate = float(max_rate)


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
class TelemetryError(ReproError):
    """A measurement channel misbehaved."""


class SensorReadError(TelemetryError):
    """A sensor reading was lost (meter dropout).

    The application kept running — the machine's clock, energy, and
    heartbeats still advanced — but the *observation* of the window
    never arrived.  Controllers account the lost window conservatively:
    time passed, no work is credited.

    Attributes:
        site: The injection/measurement site that dropped the reading.
    """

    def __init__(self, message: str = "sensor reading lost",
                 site: str = "") -> None:
        super().__init__(message)
        self.site = site


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
class PersistenceError(ReproError):
    """A store could not complete a read or write."""


class CheckpointError(PersistenceError):
    """A controller checkpoint could not be written, read, or applied."""


# ----------------------------------------------------------------------
# Cluster
# ----------------------------------------------------------------------
class ClusterError(ReproError):
    """A coordinator-level failure."""


class TenantCrashError(ClusterError):
    """A tenant process died mid-epoch (injected or real)."""

    def __init__(self, name: str, message: str = "") -> None:
        super().__init__(message or f"tenant {name!r} crashed")
        self.name = name


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class FaultPlanError(ReproError, ValueError):
    """A fault plan or fault spec is malformed."""


# ----------------------------------------------------------------------
# Service (wire-level)
# ----------------------------------------------------------------------
class ServiceError(ReproError):
    """Base class for service failures; ``code`` is the wire-level type."""

    code = "internal"

    def __init__(self, message: str = "",
                 details: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message or self.code)
        self.details: Dict[str, Any] = dict(details or {})


class ServiceOverloaded(ServiceError):
    """The admission queue is full; the request was shed, not queued."""

    code = "overloaded"


class DeadlineExceeded(ServiceError):
    """The request's deadline passed before a result was produced."""

    code = "deadline-exceeded"


class RequestRejected(ServiceError):
    """The request is well-formed JSON but semantically invalid."""

    code = "bad-request"


class EstimationRejected(ServiceError):
    """The chosen estimator is ill-posed for the submitted samples."""

    code = "insufficient-samples"


class ProtocolError(ServiceError):
    """The frame could not be parsed as a protocol message."""

    code = "protocol-error"


class FrameError(ProtocolError):
    """A binary wire frame is truncated, corrupt, or from an unknown
    protocol version.

    Subclasses :class:`ProtocolError` so transports that already treat
    unparseable input as a protocol failure handle binary framing
    failures identically, while new callers can distinguish the framed
    codec (checksum mismatch, bad magic, truncation) from JSON-lines
    parse errors.
    """

    code = "frame-error"


class RemoteError(ServiceError):
    """An unexpected failure inside the server."""

    code = "internal"


class ShardUnavailable(ServiceError):
    """The tenant's owning shard is down; the rest of the fleet serves on.

    Raised by the shard router (and the sharded client) when the
    consistent-hash owner of a tenant key is marked unhealthy.  The
    error is scoped to the lost shard's tenants by construction — other
    tenants hash to healthy shards and never see it — which is the
    fleet's load-shedding contract under partial failure.
    """

    code = "shard-unavailable"
