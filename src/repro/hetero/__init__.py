"""Heterogeneous-platform support: one import surface.

Re-exports the asymmetric platform layer
(:mod:`repro.platform.hetero`), the cross-platform transfer-prior math
(:mod:`repro.core.transfer`), and the transfer-aware estimator
(:mod:`repro.estimators.transfer`) so heterogeneous experiments need a
single import:

    from repro.hetero import BIG_LITTLE, HeteroMachine, TransferPrior

See docs/PLATFORMS.md for the topology model, the transfer priors, and
the degeneracy guarantee.
"""

from repro.core.transfer import (
    PlatformBlock,
    PlatformSignature,
    TransferPrior,
    TransferredPrior,
    alignment_features,
    block_psi,
    map_indices,
    platform_distance,
    platform_similarity,
    signature_of,
)
from repro.estimators.transfer import TransferAwareLEO
from repro.platform.hetero import (
    BIG_LITTLE,
    CoreCluster,
    HeteroConfiguration,
    HeteroMachine,
    HeteroPerformanceModel,
    HeteroPowerModel,
    HeteroTopology,
    OffloadDevice,
    cluster_indices,
    hetero_space,
)

__all__ = [
    "PlatformBlock",
    "PlatformSignature",
    "TransferPrior",
    "TransferredPrior",
    "alignment_features",
    "block_psi",
    "map_indices",
    "platform_distance",
    "platform_similarity",
    "signature_of",
    "TransferAwareLEO",
    "BIG_LITTLE",
    "CoreCluster",
    "HeteroConfiguration",
    "HeteroMachine",
    "HeteroPerformanceModel",
    "HeteroPowerModel",
    "HeteroTopology",
    "OffloadDevice",
    "cluster_indices",
    "hetero_space",
]
