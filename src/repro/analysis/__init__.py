"""Statistical analysis helpers for experiment results."""

from repro.analysis.stats import (
    ConfidenceInterval,
    bootstrap_mean_ci,
    paired_diff_ci,
    probability_of_superiority,
)

__all__ = [
    "ConfidenceInterval",
    "bootstrap_mean_ci",
    "paired_diff_ci",
    "probability_of_superiority",
]
