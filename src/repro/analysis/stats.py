"""Resampling statistics for experiment results.

The paper reports point averages ("we take the average estimates
produced over 10 separate trials").  For a reproduction it is useful to
also quantify run-to-run variation: these helpers provide seeded
bootstrap confidence intervals for means and for *paired* differences
(the right tool when two approaches are evaluated on the same trials,
as every experiment here does).

Pure numpy, no scipy.stats dependency, deterministic under a seed.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np


@dataclasses.dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a bootstrap percentile interval.

    Attributes:
        estimate: The statistic on the original sample (the mean).
        lower: Lower percentile bound.
        upper: Upper percentile bound.
        level: Nominal coverage (e.g. 0.95).
    """

    estimate: float
    lower: float
    upper: float
    level: float

    def __contains__(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def __str__(self) -> str:
        return (f"{self.estimate:.3f} "
                f"[{self.lower:.3f}, {self.upper:.3f}]@{self.level:.0%}")


def _validate(samples: np.ndarray, level: float, n_boot: int) -> None:
    if samples.ndim != 1 or samples.size < 2:
        raise ValueError("need a 1-D sample of at least 2 values")
    if not np.all(np.isfinite(samples)):
        raise ValueError("samples must be finite")
    if not 0 < level < 1:
        raise ValueError(f"level must be in (0, 1), got {level}")
    if n_boot < 100:
        raise ValueError(f"n_boot must be >= 100, got {n_boot}")


def bootstrap_mean_ci(samples: Sequence[float], level: float = 0.95,
                      n_boot: int = 2000, seed: int = 0
                      ) -> ConfidenceInterval:
    """Percentile bootstrap CI for the mean of ``samples``."""
    data = np.asarray(samples, dtype=float)
    _validate(data, level, n_boot)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, data.size, size=(n_boot, data.size))
    means = data[indices].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    lower, upper = np.quantile(means, [alpha, 1.0 - alpha])
    return ConfidenceInterval(estimate=float(data.mean()),
                              lower=float(lower), upper=float(upper),
                              level=level)


def paired_diff_ci(a: Sequence[float], b: Sequence[float],
                   level: float = 0.95, n_boot: int = 2000,
                   seed: int = 0) -> ConfidenceInterval:
    """Bootstrap CI for ``mean(a - b)`` over paired observations.

    ``a`` and ``b`` must align trial-for-trial (same seeds, same
    benchmarks) — the pairing removes shared trial variance, which is
    why it detects small approach differences that unpaired comparisons
    miss.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"paired samples must align: {a.shape} vs {b.shape}")
    return bootstrap_mean_ci(a - b, level=level, n_boot=n_boot, seed=seed)


def probability_of_superiority(a: Sequence[float],
                               b: Sequence[float]) -> float:
    """Fraction of pairs where ``a`` beats ``b`` (ties count half).

    A robust effect size: 0.5 means indistinguishable, 1.0 means ``a``
    wins every paired trial.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1 or a.size == 0:
        raise ValueError("need equal-length, non-empty 1-D samples")
    wins = np.sum(a > b) + 0.5 * np.sum(a == b)
    return float(wins / a.size)
