"""Behavioural profiles of applications running on the simulated platform.

The paper's evaluation rests on the *diversity* of its 25 benchmarks: some
scale to all 32 hardware contexts, some peak at 8 cores and then degrade
sharply (kmeans), some are memory- or I/O-bound and gain little from
frequency.  An :class:`ApplicationProfile` captures exactly those
behavioural dimensions, and the platform's performance/power models
(:mod:`repro.platform.performance_model`, :mod:`repro.platform.power_model`)
map a profile plus a configuration to a heartbeat rate and a power draw.

A profile is a *ground truth* description; estimators never see it.  They
only see the (noisy) rates and powers the simulated machine reports.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class ApplicationProfile:
    """Ground-truth behavioural parameters of one application.

    Attributes:
        name: Benchmark name (e.g. ``"kmeans"``).
        base_rate: Heartbeats per second on one core at nominal frequency
            with one memory controller.  Sets the scale of the
            application's performance curve.
        serial_fraction: Amdahl's-law serial portion of the computation,
            in [0, 1).  Limits achievable speedup.
        scaling_peak: Thread count at which useful scaling ends.  Beyond
            it, synchronization/contention overhead grows.
        contention_slope: How sharply performance degrades past
            ``scaling_peak`` (0 means it merely flattens, as for x264;
            large values mean a sharp drop, as for kmeans).
        memory_intensity: Fraction of per-heartbeat time spent waiting on
            memory at the baseline configuration, in [0, 1].  Memory time
            does not speed up with core frequency but does benefit from a
            second memory controller and from memory-level parallelism.
        io_intensity: Fraction of per-heartbeat time spent in I/O at the
            baseline configuration, in [0, 1].  I/O time is insensitive
            to every knob (filebound, swish).
        ht_efficiency: How much useful work a hyperthread partner context
            contributes relative to a physical core, in [-0.5, 1].
            Negative values model applications that hyperthreading
            actively hurts (cache-thrashing kernels).
        memory_parallelism: Number of concurrent memory streams the
            application can sustain; memory time stops shrinking once
            thread-level parallelism exceeds it.
        activity_factor: Average switching activity of an active core
            relative to a power-virus workload, in (0, 1].  Compute-dense
            codes draw more dynamic power than stall-heavy ones.
        noise: Relative standard deviation of run-to-run measurement
            noise applied by the simulated machine.
    """

    name: str
    base_rate: float
    serial_fraction: float
    scaling_peak: int
    contention_slope: float
    memory_intensity: float
    io_intensity: float
    ht_efficiency: float
    memory_parallelism: float
    activity_factor: float
    noise: float = 0.01

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("profile name must be non-empty")
        if self.base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {self.base_rate}")
        if not 0.0 <= self.serial_fraction < 1.0:
            raise ValueError(
                f"serial_fraction must be in [0, 1), got {self.serial_fraction}"
            )
        if self.scaling_peak < 1:
            raise ValueError(f"scaling_peak must be >= 1, got {self.scaling_peak}")
        if self.contention_slope < 0:
            raise ValueError(
                f"contention_slope must be non-negative, got {self.contention_slope}"
            )
        if not 0.0 <= self.memory_intensity <= 1.0:
            raise ValueError(
                f"memory_intensity must be in [0, 1], got {self.memory_intensity}"
            )
        if not 0.0 <= self.io_intensity <= 1.0:
            raise ValueError(
                f"io_intensity must be in [0, 1], got {self.io_intensity}"
            )
        if self.memory_intensity + self.io_intensity > 1.0:
            raise ValueError(
                "memory_intensity + io_intensity must not exceed 1 "
                f"(got {self.memory_intensity} + {self.io_intensity})"
            )
        if not -0.5 <= self.ht_efficiency <= 1.0:
            raise ValueError(
                f"ht_efficiency must be in [-0.5, 1], got {self.ht_efficiency}"
            )
        if self.memory_parallelism < 1:
            raise ValueError(
                f"memory_parallelism must be >= 1, got {self.memory_parallelism}"
            )
        if not 0.0 < self.activity_factor <= 1.0:
            raise ValueError(
                f"activity_factor must be in (0, 1], got {self.activity_factor}"
            )
        if self.noise < 0:
            raise ValueError(f"noise must be non-negative, got {self.noise}")

    @property
    def compute_intensity(self) -> float:
        """Fraction of baseline time spent in frequency-sensitive compute."""
        return 1.0 - self.memory_intensity - self.io_intensity

    def scaled(self, work_scale: float, name: str = "") -> "ApplicationProfile":
        """A copy whose computational demand is scaled by ``work_scale``.

        Used to build phased workloads (Section 6.6): a phase that needs
        2/3 of the resources of another is the same application with its
        per-heartbeat work scaled by 2/3, i.e. its base rate scaled by
        ``1 / work_scale``.
        """
        if work_scale <= 0:
            raise ValueError(f"work_scale must be positive, got {work_scale}")
        return dataclasses.replace(
            self,
            name=name or f"{self.name}@x{work_scale:g}",
            base_rate=self.base_rate / work_scale,
        )
