"""The 25-benchmark suite of the paper's evaluation (Section 6.1).

The paper evaluates on 25 applications drawn from PARSEC (blackscholes,
bodytrack, fluidanimate, swaptions, x264), Minebench (ScalParC, apr,
semphy, svmrfe, kmeans, HOP, PLSA, kmeansnf), Rodinia (cfd, nn, lud,
particlefilter, vips, btree, streamcluster, backprop, bfs), plus a PDE
solver (jacobi), a file-intensive benchmark (filebound), and the swish++
search web server.

Each profile below is a synthetic stand-in whose parameters are chosen to
reproduce the behaviour the paper documents, most importantly:

* **kmeans** scales well to 8 threads and then degrades sharply
  (Section 2: "the application scales well to 8 cores, but its
  performance degrades sharply with more");
* **swish** peaks at 16 threads (Section 6.3) and, as a web server,
  carries substantial I/O time;
* **x264** is "(essentially) constant after 16 cores" (Section 6.3);
* the remainder span compute-bound, memory-bandwidth-bound, and
  I/O-bound behaviours with heartbeat rates over several orders of
  magnitude (kmeans clusters thousands of samples per second; semphy is
  the slowest application, x264 encodes ~10 frames per second).
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.profile import ApplicationProfile

#: Benchmark-suite membership, as listed in Section 6.1.
SUITE_MEMBERSHIP: Dict[str, str] = {
    "blackscholes": "parsec", "bodytrack": "parsec", "fluidanimate": "parsec",
    "swaptions": "parsec", "x264": "parsec",
    "scalparc": "minebench", "apr": "minebench", "semphy": "minebench",
    "svmrfe": "minebench", "kmeans": "minebench", "hop": "minebench",
    "plsa": "minebench", "kmeansnf": "minebench",
    "cfd": "rodinia", "nn": "rodinia", "lud": "rodinia",
    "particlefilter": "rodinia", "vips": "rodinia", "btree": "rodinia",
    "streamcluster": "rodinia", "backprop": "rodinia", "bfs": "rodinia",
    "jacobi": "other", "filebound": "other", "swish": "other",
}


def _p(name: str, base_rate: float, serial: float, peak: int, slope: float,
       mem: float, io: float, ht: float, mlp: float, act: float,
       noise: float = 0.01) -> ApplicationProfile:
    return ApplicationProfile(
        name=name, base_rate=base_rate, serial_fraction=serial,
        scaling_peak=peak, contention_slope=slope, memory_intensity=mem,
        io_intensity=io, ht_efficiency=ht, memory_parallelism=mlp,
        activity_factor=act, noise=noise,
    )


_PROFILES: List[ApplicationProfile] = [
    # PARSEC ----------------------------------------------------------------
    _p("blackscholes", 120.0, 0.02, 32, 0.000, 0.05, 0.00, 0.70, 8, 0.95),
    _p("bodytrack",     40.0, 0.08, 24, 0.010, 0.15, 0.00, 0.50, 8, 0.85),
    _p("fluidanimate",  30.0, 0.05, 32, 0.005, 0.25, 0.00, 0.45, 12, 0.80),
    _p("swaptions",     80.0, 0.01, 32, 0.000, 0.03, 0.00, 0.75, 4, 0.97),
    _p("x264",          12.0, 0.06, 16, 0.002, 0.20, 0.02, 0.30, 8, 0.85),
    # Minebench -------------------------------------------------------------
    _p("scalparc",      25.0, 0.10, 16, 0.020, 0.30, 0.00, 0.30, 10, 0.75),
    _p("apr",           18.0, 0.15, 12, 0.030, 0.25, 0.05, 0.20, 8, 0.70),
    _p("semphy",         0.6, 0.12, 20, 0.015, 0.20, 0.00, 0.40, 8, 0.80),
    _p("svmrfe",        15.0, 0.05, 24, 0.008, 0.35, 0.00, 0.35, 12, 0.75),
    _p("kmeans",      5000.0, 0.03,  8, 0.120, 0.30, 0.00, -0.20, 8, 0.80),
    _p("hop",         2000.0, 0.07, 12, 0.050, 0.25, 0.00, 0.00, 8, 0.75),
    _p("plsa",          10.0, 0.09, 16, 0.020, 0.30, 0.00, 0.25, 10, 0.75),
    _p("kmeansnf",    4000.0, 0.04, 10, 0.090, 0.28, 0.00, -0.10, 8, 0.80),
    # Rodinia ---------------------------------------------------------------
    _p("cfd",            8.0, 0.04, 28, 0.004, 0.45, 0.00, 0.30, 16, 0.70),
    _p("nn",           600.0, 0.02, 32, 0.000, 0.55, 0.00, 0.50, 24, 0.60),
    _p("lud",           35.0, 0.15, 14, 0.025, 0.20, 0.00, 0.20, 8, 0.85),
    _p("particlefilter", 50.0, 0.06, 26, 0.006, 0.15, 0.00, 0.55, 8, 0.85),
    _p("vips",          22.0, 0.05, 30, 0.003, 0.25, 0.05, 0.45, 12, 0.80),
    _p("btree",        900.0, 0.10, 18, 0.020, 0.40, 0.05, 0.30, 16, 0.65),
    _p("streamcluster", 15.0, 0.03, 32, 0.001, 0.60, 0.00, 0.60, 28, 0.60),
    _p("backprop",      70.0, 0.08, 20, 0.012, 0.35, 0.00, 0.35, 12, 0.75),
    _p("bfs",          250.0, 0.12, 10, 0.040, 0.50, 0.00, 0.10, 10, 0.60),
    # Others ----------------------------------------------------------------
    _p("jacobi",        45.0, 0.02, 32, 0.000, 0.65, 0.00, 0.55, 30, 0.55),
    _p("filebound",    150.0, 0.22,  6, 0.015, 0.15, 0.35, 0.05, 6, 0.45),
    _p("swish",        350.0, 0.05, 16, 0.060, 0.15, 0.30, 0.10, 8, 0.55),
]


def paper_suite() -> List[ApplicationProfile]:
    """The 25 benchmark profiles, in the paper's listing order."""
    return list(_PROFILES)


def benchmark_names() -> List[str]:
    """Names of the 25 benchmarks."""
    return [p.name for p in _PROFILES]


def get_benchmark(name: str) -> ApplicationProfile:
    """Look up one benchmark profile by name (case-insensitive)."""
    wanted = name.lower()
    for profile in _PROFILES:
        if profile.name == wanted:
            return profile
    raise KeyError(
        f"unknown benchmark {name!r}; known: {', '.join(benchmark_names())}"
    )
