"""Application substrate: profiles, the 25-benchmark suite, phases, traces."""

from repro.workloads.generator import ProfileGenerator
from repro.workloads.inputs import REFERENCE_INPUT, InputSpec, input_sweep
from repro.workloads.phases import Phase, PhasedWorkload, fluidanimate_two_phase
from repro.workloads.profile import ApplicationProfile
from repro.workloads.suite import (
    SUITE_MEMBERSHIP,
    benchmark_names,
    get_benchmark,
    paper_suite,
)
from repro.workloads.traces import LeaveOneOut, OfflineDataset, cached_dataset

__all__ = [
    "ApplicationProfile",
    "REFERENCE_INPUT",
    "InputSpec",
    "input_sweep",
    "ProfileGenerator",
    "Phase",
    "PhasedWorkload",
    "fluidanimate_two_phase",
    "SUITE_MEMBERSHIP",
    "benchmark_names",
    "get_benchmark",
    "paper_suite",
    "LeaveOneOut",
    "OfflineDataset",
    "cached_dataset",
]
