"""Phased workloads for the dynamic-adaptation experiment (Section 6.6).

The paper runs fluidanimate, "which renders frames, with an input that has
two distinct phases.  Both phases must be completed in the same time, but
the second phase requires significantly less work.  In particular, the
second phase requires 2/3 the resources of the first phase."

A :class:`Phase` pairs an application profile (the behaviour during the
phase) with a frame count and a per-frame deadline; a
:class:`PhasedWorkload` strings phases together and exposes the points
where the runtime must detect and react to the change.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Sequence

from repro.workloads.profile import ApplicationProfile


@dataclasses.dataclass(frozen=True)
class Phase:
    """One phase of a phased workload.

    Attributes:
        profile: Application behaviour during the phase.  Lighter phases
            are the same application with cheaper heartbeats, i.e. a
            higher base rate (see :meth:`ApplicationProfile.scaled`).
        frames: Number of heartbeats (frames) the phase comprises.
        frame_deadline: Wall-clock seconds available per frame; the
            performance constraint is ``1 / frame_deadline`` frames/s.
    """

    profile: ApplicationProfile
    frames: int
    frame_deadline: float

    def __post_init__(self) -> None:
        if self.frames < 1:
            raise ValueError(f"frames must be >= 1, got {self.frames}")
        if self.frame_deadline <= 0:
            raise ValueError(
                f"frame_deadline must be positive, got {self.frame_deadline}"
            )

    @property
    def target_rate(self) -> float:
        """Required heartbeat rate to meet the per-frame deadline."""
        return 1.0 / self.frame_deadline

    @property
    def duration(self) -> float:
        """Wall-clock length of the phase when deadlines are met exactly."""
        return self.frames * self.frame_deadline


class PhasedWorkload:
    """A sequence of phases executed back to back."""

    def __init__(self, phases: Sequence[Phase], name: str = "phased") -> None:
        if not phases:
            raise ValueError("a phased workload needs at least one phase")
        self.phases: List[Phase] = list(phases)
        self.name = name

    def __len__(self) -> int:
        return len(self.phases)

    def __iter__(self) -> Iterator[Phase]:
        return iter(self.phases)

    @property
    def total_frames(self) -> int:
        return sum(phase.frames for phase in self.phases)

    @property
    def total_duration(self) -> float:
        return sum(phase.duration for phase in self.phases)

    def phase_boundaries(self) -> List[int]:
        """Frame indices at which a new phase begins (excluding frame 0)."""
        boundaries = []
        total = 0
        for phase in self.phases[:-1]:
            total += phase.frames
            boundaries.append(total)
        return boundaries


def fluidanimate_two_phase(base_profile: ApplicationProfile,
                           frames_per_phase: int = 100,
                           frame_deadline: float = 0.25,
                           work_ratio: float = 2.0 / 3.0) -> PhasedWorkload:
    """The Section 6.6 workload: two phases, second needs 2/3 the resources.

    Args:
        base_profile: Behaviour of the heavy first phase (fluidanimate).
        frames_per_phase: Frames rendered in each phase.
        frame_deadline: Real-time deadline per frame, identical across
            phases ("both phases must be completed in the same time").
        work_ratio: Per-frame work of phase 2 relative to phase 1.
    """
    if not 0 < work_ratio <= 1:
        raise ValueError(f"work_ratio must be in (0, 1], got {work_ratio}")
    light_profile = base_profile.scaled(
        work_ratio, name=f"{base_profile.name}-light")
    return PhasedWorkload(
        phases=[
            Phase(base_profile, frames_per_phase, frame_deadline),
            Phase(light_profile, frames_per_phase, frame_deadline),
        ],
        name=f"{base_profile.name}-two-phase",
    )
