"""Input-dependent behaviour: the same application, different inputs.

"For many applications, these values [power and performance] also vary
with varying inputs" (Section 4).  An :class:`InputSpec` is a structured
perturbation of an application profile — a bigger dataset raises the
per-heartbeat work, a different working set shifts memory intensity, a
sparser graph moves the scaling peak — producing the input-specific
ground truth an online-aware estimator must track.

:func:`input_sweep` generates a seeded family of plausible inputs for
stress-testing estimators across input drift, complementing the phase
machinery (which is a mid-run input change of exactly this kind).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro.workloads.profile import ApplicationProfile


def _clip(value: float, lo: float, hi: float) -> float:
    return float(min(max(value, lo), hi))


@dataclasses.dataclass(frozen=True)
class InputSpec:
    """A structured input for an application.

    Attributes:
        name: Input label (e.g. ``"native"``, ``"sparse-graph"``).
        work_scale: Per-heartbeat work relative to the reference input
            (> 1 means heavier frames/batches, hence a lower base rate).
        memory_shift: Additive change to memory intensity (clipped to
            keep the profile valid).
        peak_shift: Additive change to the scaling peak (inputs with
            less exploitable parallelism peak earlier).
        noise_scale: Multiplier on run-to-run noise (irregular inputs
            measure noisier).
    """

    name: str
    work_scale: float = 1.0
    memory_shift: float = 0.0
    peak_shift: int = 0
    noise_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("input name must be non-empty")
        if self.work_scale <= 0:
            raise ValueError(f"work_scale must be positive, got {self.work_scale}")
        if self.noise_scale <= 0:
            raise ValueError(
                f"noise_scale must be positive, got {self.noise_scale}"
            )

    def apply(self, profile: ApplicationProfile) -> ApplicationProfile:
        """The profile's behaviour under this input."""
        memory = _clip(profile.memory_intensity + self.memory_shift,
                       0.0, 1.0 - profile.io_intensity - 1e-9)
        peak = max(profile.scaling_peak + self.peak_shift, 1)
        return dataclasses.replace(
            profile,
            name=f"{profile.name}@{self.name}",
            base_rate=profile.base_rate / self.work_scale,
            memory_intensity=memory,
            scaling_peak=peak,
            noise=profile.noise * self.noise_scale,
        )


#: The reference input: the behaviour the offline trace was collected on.
REFERENCE_INPUT = InputSpec(name="reference")


def input_sweep(profile: ApplicationProfile, count: int,
                seed: Optional[int] = None,
                max_work_scale: float = 3.0) -> List[ApplicationProfile]:
    """A seeded family of input variants of ``profile``.

    Draws input perturbations whose magnitudes reflect the paper's
    setting (same application, moderately different behaviour): work
    scales log-uniform up to ``max_work_scale`` either way, memory
    intensity drifts by up to +/-0.15, scaling peaks by up to +/-4.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if max_work_scale <= 1:
        raise ValueError(
            f"max_work_scale must exceed 1, got {max_work_scale}"
        )
    rng = np.random.default_rng(seed)
    variants = []
    for i in range(count):
        spec = InputSpec(
            name=f"input-{i + 1:02d}",
            work_scale=float(np.exp(rng.uniform(-np.log(max_work_scale),
                                                np.log(max_work_scale)))),
            memory_shift=float(rng.uniform(-0.15, 0.15)),
            peak_shift=int(rng.integers(-4, 5)),
            noise_scale=float(rng.uniform(0.8, 2.0)),
        )
        variants.append(spec.apply(profile))
    return variants
