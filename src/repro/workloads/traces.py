"""Offline profiling traces: the "previously observed applications".

LEO's prior knowledge is a table of power and performance for M-1
applications measured offline in every configuration (Section 5.2).  On
the authors' testbed this table took days of exhaustive search to collect
(Section 6.7); here :class:`OfflineDataset` produces it from the simulated
machine, deterministically for a given seed, and supports the
leave-one-out protocol the evaluation uses (the target application's own
trace is withheld and kept only as ground truth).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.platform.config_space import ConfigurationSpace
from repro.workloads.profile import ApplicationProfile

if TYPE_CHECKING:  # avoid a circular import with repro.platform.machine
    from repro.platform.machine import Machine


@dataclasses.dataclass(frozen=True)
class LeaveOneOut:
    """The view of an :class:`OfflineDataset` for one target application.

    Attributes:
        target: Name of the held-out application.
        prior_names: Names of the M-1 applications whose traces LEO sees.
        prior_rates: ``(M-1, n)`` heartbeat-rate table of the priors.
        prior_powers: ``(M-1, n)`` system-power table of the priors.
        true_rates: ``(n,)`` ground-truth rates of the target (withheld
            from estimators; used only for evaluation and for simulating
            the target's online samples).
        true_powers: ``(n,)`` ground-truth powers of the target.
    """

    target: str
    prior_names: Tuple[str, ...]
    prior_rates: np.ndarray
    prior_powers: np.ndarray
    true_rates: np.ndarray
    true_powers: np.ndarray


class OfflineDataset:
    """Full profiling tables for a set of applications on one space."""

    def __init__(self, space: ConfigurationSpace, names: Sequence[str],
                 rates: np.ndarray, powers: np.ndarray) -> None:
        rates = np.asarray(rates, dtype=float)
        powers = np.asarray(powers, dtype=float)
        if rates.shape != (len(names), len(space)):
            raise ValueError(
                f"rates shape {rates.shape} != ({len(names)}, {len(space)})"
            )
        if powers.shape != rates.shape:
            raise ValueError(
                f"powers shape {powers.shape} != rates shape {rates.shape}"
            )
        if len(set(names)) != len(names):
            raise ValueError("application names must be unique")
        if np.any(rates <= 0) or np.any(powers <= 0):
            raise ValueError("rates and powers must be strictly positive")
        self.space = space
        self.names: List[str] = list(names)
        self.rates = rates
        self.powers = powers

    def __len__(self) -> int:
        return len(self.names)

    def index_of(self, name: str) -> int:
        """Row index of application ``name``; KeyError if absent."""
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(f"unknown application {name!r}") from None

    def row(self, name: str) -> Tuple[np.ndarray, np.ndarray]:
        """``(rates, powers)`` of one application, each shape ``(n,)``."""
        i = self.index_of(name)
        return self.rates[i], self.powers[i]

    def leave_one_out(self, target: str) -> LeaveOneOut:
        """Withhold ``target`` and expose the remaining traces as priors."""
        i = self.index_of(target)
        keep = [j for j in range(len(self.names)) if j != i]
        return LeaveOneOut(
            target=target,
            prior_names=tuple(self.names[j] for j in keep),
            prior_rates=self.rates[keep],
            prior_powers=self.powers[keep],
            true_rates=self.rates[i].copy(),
            true_powers=self.powers[i].copy(),
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def collect(cls, machine: "Machine", profiles: Sequence[ApplicationProfile],
                space: ConfigurationSpace, noisy: bool = True,
                window: float = 1.0) -> "OfflineDataset":
        """Run the offline profiling campaign on ``machine``.

        With ``noisy=False`` this is the exhaustive-search ground truth;
        with ``noisy=True`` it is the realistic offline dataset whose
        entries carry single-window measurement noise.
        """
        if not profiles:
            raise ValueError("need at least one profile")
        names = [p.name for p in profiles]
        rates = np.empty((len(profiles), len(space)))
        powers = np.empty_like(rates)
        for i, profile in enumerate(profiles):
            rates[i], powers[i] = machine.sweep(
                profile, space, window=window, noisy=noisy)
        return cls(space, names, rates, powers)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Serialize the tables (not the space) to an ``.npz`` file."""
        np.savez_compressed(
            path, names=np.array(self.names), rates=self.rates,
            powers=self.powers,
        )

    @classmethod
    def load(cls, path: str, space: ConfigurationSpace) -> "OfflineDataset":
        """Load tables saved by :meth:`save`, rebinding them to ``space``."""
        with np.load(path, allow_pickle=False) as data:
            names = [str(n) for n in data["names"]]
            return cls(space, names, data["rates"], data["powers"])


#: Cache of generated datasets keyed by (suite id, space id, noisy, seed),
#: because the full 25 x 1024 sweep is the costliest part of experiment
#: setup and every figure needs the same tables.
_DATASET_CACHE: Dict[Tuple[int, int, bool, Optional[int]], OfflineDataset] = {}


def cached_dataset(machine_seed: Optional[int],
                   profiles: Sequence[ApplicationProfile],
                   space: ConfigurationSpace,
                   noisy: bool = True) -> OfflineDataset:
    """Collect (or reuse) the offline dataset for a profile list.

    The cache key includes the machine seed so different noise draws are
    kept apart; ``id()`` of the profile tuple and space keep logically
    different inputs apart within one process.
    """
    key = (hash(tuple(p.name for p in profiles)), id(space), noisy, machine_seed)
    if key not in _DATASET_CACHE:
        from repro.platform.machine import Machine
        machine = Machine(space.topology, seed=machine_seed)
        _DATASET_CACHE[key] = OfflineDataset.collect(
            machine, profiles, space, noisy=noisy)
    return _DATASET_CACHE[key]
