"""Seeded random generation of application profiles.

The paper's offline dataset is a fixed set of measured applications.  For
stress tests, property-based tests, and scaling studies we also want an
unbounded supply of *plausible* applications: profiles drawn from
distributions whose support matches the behavioural range of the real
suite (serial fractions up to ~30 %, scaling peaks anywhere in 2..32,
compute- through I/O-bound mixes).

Generation is fully determined by the seed, so generated suites are
reproducible across runs and machines.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.workloads.profile import ApplicationProfile


class ProfileGenerator:
    """Draws random :class:`ApplicationProfile` instances.

    Args:
        seed: Seed for the underlying generator; identical seeds produce
            identical profile sequences.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rng = np.random.default_rng(seed)
        self._counter = 0

    def sample(self, name: Optional[str] = None) -> ApplicationProfile:
        """Draw one random profile.

        The marginal distributions are chosen so that a generated suite
        has the same qualitative diversity as the paper's: roughly a
        third of applications scale past 16 threads, a third peak
        between 6 and 16, and a third are memory- or I/O-limited.
        """
        rng = self._rng
        self._counter += 1
        if name is None:
            name = f"synthetic-{self._counter:03d}"

        # Log-uniform base rate spanning the suite's range (semphy ~0.6/s
        # up to kmeans ~5000/s).
        base_rate = float(np.exp(rng.uniform(np.log(0.5), np.log(5000.0))))
        serial = float(rng.beta(1.2, 12.0))          # mostly small, tail to ~0.3
        peak = int(rng.integers(2, 33))
        # Applications that scale all the way rarely degrade; early peaks
        # often come with real contention.
        if peak >= 28:
            slope = float(rng.uniform(0.0, 0.004))
        else:
            slope = float(rng.uniform(0.0, 0.13))
        mem = float(rng.uniform(0.0, 0.65))
        io = float(rng.uniform(0.0, max(0.0, 0.6 - mem))) if rng.random() < 0.3 else 0.0
        ht = float(rng.uniform(-0.3, 0.8))
        mlp = float(rng.uniform(2.0, 32.0))
        activity = float(rng.uniform(0.4, 1.0))
        noise = float(rng.uniform(0.005, 0.02))

        return ApplicationProfile(
            name=name, base_rate=base_rate, serial_fraction=serial,
            scaling_peak=peak, contention_slope=slope, memory_intensity=mem,
            io_intensity=io, ht_efficiency=ht, memory_parallelism=mlp,
            activity_factor=activity, noise=noise,
        )

    def sample_suite(self, count: int, prefix: str = "synthetic"
                     ) -> List[ApplicationProfile]:
        """Draw ``count`` profiles named ``{prefix}-001`` onwards."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return [self.sample(name=f"{prefix}-{i + 1:03d}") for i in range(count)]
