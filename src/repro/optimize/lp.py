"""The energy-minimization linear program (paper Eq. 1) and its solvers.

    minimize    sum_c p_c t_c
    subject to  sum_c r_c t_c  = W     (work finished)
                sum_c t_c     <= T     (by the deadline)
                t >= 0

Because the LP has two constraints, its optimum uses at most two
configurations; geometrically it lies on the lower convex hull of the
(rate, power) cloud.  :class:`EnergyMinimizer` solves it by walking that
hull (exactly what the paper describes in Section 5.3), and can
cross-check itself against the from-scratch simplex solver.

Two accounting modes are supported:

* ``"deadline-energy"`` (default): the system must exist until the
  deadline, so unused time is charged at idle power.  This matches the
  paper's measurements (energy is read off a wall meter over the whole
  window; race-to-idle's idle tail is charged).  It is the Eq. (1) LP
  with an explicit idle configuration (rate 0, idle power) and the time
  constraint tightened to equality.
* ``"active-energy"``: the literal Eq. (1) objective, where time after
  completion is free.  Here it can pay to finish early in the most
  energy-efficient configuration.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import InfeasibleConstraintError
from repro.obs import get_observability
from repro.optimize.pareto import TradeoffFrontier
from repro.optimize.schedule import Schedule, Slot
from repro.optimize.simplex import SimplexSolution, solve_lp

# Back-compat alias: InfeasibleConstraintError was born in this module
# and moved to repro.errors in the exception consolidation; imports of
# ``repro.optimize.lp.InfeasibleConstraintError`` resolve to the same
# class object.
__all__ = ["EnergyMinimizer", "InfeasibleConstraintError"]

_MODES = ("deadline-energy", "active-energy")


class EnergyMinimizer:
    """Solves Eq. (1) for one application's estimated tradeoffs.

    Args:
        rates: Estimated per-configuration heartbeat rates.
        powers: Estimated per-configuration powers.
        idle_power: System idle power (the rate-0 anchor).
        mode: Energy accounting mode, see module docstring.
    """

    def __init__(self, rates: Sequence[float], powers: Sequence[float],
                 idle_power: float, mode: str = "deadline-energy") -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.rates = np.asarray(rates, dtype=float)
        self.powers = np.asarray(powers, dtype=float)
        if self.rates.shape != self.powers.shape or self.rates.ndim != 1:
            raise ValueError("rates and powers must be equal-length 1-D arrays")
        self.idle_power = float(idle_power)
        self.mode = mode
        self.frontier = TradeoffFrontier(self.rates, self.powers,
                                         idle_power=self.idle_power)

    # ------------------------------------------------------------------
    # Problem geometry
    # ------------------------------------------------------------------
    @property
    def max_rate(self) -> float:
        """Highest estimated sustainable rate."""
        return self.frontier.max_rate

    def work_for_utilization(self, utilization: float, deadline: float) -> float:
        """Work W corresponding to a utilization demand in (0, 1].

        The paper sweeps "100 different values for W — each representing
        a different utilization demand from 1 to 100%" (Section 6.4):
        utilization u demands u times the maximum work achievable within
        the deadline.
        """
        if not 0 < utilization <= 1:
            raise ValueError(f"utilization must be in (0, 1], got {utilization}")
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        return utilization * self.max_rate * deadline

    # ------------------------------------------------------------------
    # Hull-walk solver (the paper's method)
    # ------------------------------------------------------------------
    def solve(self, work: float, deadline: float) -> Schedule:
        """Minimal-energy schedule finishing ``work`` by ``deadline``.

        Raises :class:`InfeasibleConstraintError` (a ``ValueError``)
        when the demand exceeds the estimated capacity
        (``work > max_rate * deadline``); the error carries the maximum
        achievable rate so callers can clamp and degrade.
        """
        ob = get_observability()
        if not ob.enabled:
            return self._solve(work, deadline)
        with ob.tracer.span("lp.solve", work=float(work),
                            deadline=float(deadline), mode=self.mode) as span:
            schedule = self._solve(work, deadline)
            span.set_attribute("hull_vertices", len(self.frontier.vertices))
            span.set_attribute(
                "chosen_configs",
                [slot.config_index for slot in schedule
                 if slot.config_index is not None])
        ob.metrics.inc("lp_resolves_total")
        return schedule

    def _solve(self, work: float, deadline: float) -> Schedule:
        """The uninstrumented hull walk behind :meth:`solve`."""
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        required = work / deadline
        if required > self.max_rate * (1 + 1e-12):
            raise InfeasibleConstraintError(required, self.max_rate)
        required = min(required, self.max_rate)

        if self.mode == "active-energy":
            best = self.frontier.energy_per_work()
            if work == 0:
                return Schedule([])
            if work / best.rate <= deadline:
                # Time constraint slack: run the most efficient vertex alone.
                return Schedule([Slot(best.config_index, work / best.rate)])
        # Deadline-energy mode, or active mode with the time constraint
        # binding: mix the two hull vertices around the required rate.
        low, high, lam = self.frontier.bracket(required)
        slots = [
            Slot(low.config_index, (1.0 - lam) * deadline),
            Slot(high.config_index, lam * deadline),
        ]
        return Schedule(slots)

    def min_energy(self, work: float, deadline: float) -> float:
        """Energy (J) of the optimal schedule under the estimated model."""
        schedule = self.solve(work, deadline)
        energy = schedule.energy(self.powers, self.idle_power)
        if self.mode == "deadline-energy":
            # Charge idle power for any window time the schedule leaves.
            energy += self.idle_power * max(deadline - schedule.total_time, 0.0)
        return energy

    # ------------------------------------------------------------------
    # Simplex cross-check
    # ------------------------------------------------------------------
    def solve_simplex(self, work: float, deadline: float
                      ) -> Tuple[Schedule, SimplexSolution]:
        """Solve the same instance with the general simplex solver.

        Builds the LP over all configurations plus (in deadline-energy
        mode) an explicit idle variable and a time-equality row; in
        active-energy mode the time row gets a slack variable instead.
        Returns the recovered schedule and the raw simplex solution.
        """
        n = self.rates.size
        if self.mode == "deadline-energy":
            # Variables: t_1..t_n, t_idle.
            c = np.concatenate([self.powers, [self.idle_power]])
            a = np.vstack([
                np.concatenate([self.rates, [0.0]]),
                np.ones(n + 1),
            ])
            b = np.array([work, deadline])
            solution = solve_lp(c, a, b)
            slots = [Slot(i, solution.x[i]) for i in range(n)]
            slots.append(Slot(None, solution.x[n]))
        else:
            # Variables: t_1..t_n, slack for the time row.
            c = np.concatenate([self.powers, [0.0]])
            a = np.vstack([
                np.concatenate([self.rates, [0.0]]),
                np.ones(n + 1),
            ])
            b = np.array([work, deadline])
            solution = solve_lp(c, a, b)
            slots = [Slot(i, solution.x[i]) for i in range(n)]
        return Schedule(slots), solution

    # ------------------------------------------------------------------
    # Heuristics expressed in the same vocabulary
    # ------------------------------------------------------------------
    def race_to_idle(self, work: float, deadline: float,
                     race_config: Optional[int] = None) -> Schedule:
        """The race-to-idle schedule: all resources, then idle.

        ``race_config`` defaults to the configuration with the highest
        estimated rate (allocating everything, as the heuristic does).
        """
        if race_config is None:
            race_config = int(np.argmax(self.rates))
        rate = self.rates[race_config]
        runtime = work / rate
        if runtime > deadline * (1 + 1e-12):
            raise ValueError(
                f"race config {race_config} cannot finish {work:g} work "
                f"within {deadline:g}s"
            )
        runtime = min(runtime, deadline)
        return Schedule([Slot(race_config, runtime),
                         Slot(None, deadline - runtime)])
