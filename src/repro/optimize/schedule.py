"""Schedules: how the runtime divides time among configurations.

The Eq. (1) linear program's decision variables are the residencies t_c —
time spent in each configuration.  Its optimum has at most two nonzero
residencies (two constraints), so a :class:`Schedule` is a short list of
:class:`Slot` entries; ``config_index`` of ``None`` denotes idling.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np


@dataclasses.dataclass(frozen=True)
class Slot:
    """A residency: run configuration ``config_index`` for ``duration`` s.

    ``config_index=None`` means the system idles for the slot.
    """

    config_index: Optional[int]
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if self.config_index is not None and self.config_index < 0:
            raise ValueError(
                f"config_index must be None or >= 0, got {self.config_index}"
            )


class Schedule:
    """An ordered set of residencies filling (part of) a deadline window."""

    def __init__(self, slots: Sequence[Slot]) -> None:
        self.slots: List[Slot] = [s for s in slots if s.duration > 0]

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self):
        return iter(self.slots)

    @property
    def total_time(self) -> float:
        """Wall-clock length of the schedule."""
        return sum(slot.duration for slot in self.slots)

    @property
    def busy_time(self) -> float:
        """Time spent in non-idle configurations."""
        return sum(s.duration for s in self.slots if s.config_index is not None)

    def work(self, rates: Sequence[float]) -> float:
        """Heartbeats completed under per-configuration ``rates``."""
        r = np.asarray(rates, dtype=float)
        total = 0.0
        for slot in self.slots:
            if slot.config_index is not None:
                total += r[slot.config_index] * slot.duration
        return total

    def energy(self, powers: Sequence[float], idle_power: float) -> float:
        """Joules consumed under per-configuration ``powers``.

        Idle slots are charged at ``idle_power``.
        """
        if idle_power < 0:
            raise ValueError(f"idle_power must be >= 0, got {idle_power}")
        p = np.asarray(powers, dtype=float)
        total = 0.0
        for slot in self.slots:
            watts = idle_power if slot.config_index is None else p[slot.config_index]
            total += watts * slot.duration
        return total

    def average_rate(self, rates: Sequence[float]) -> float:
        """Work divided by total time (0 for an empty schedule)."""
        span = self.total_time
        if span == 0:
            return 0.0
        return self.work(rates) / span

    def padded_to(self, deadline: float) -> "Schedule":
        """This schedule with an idle slot appended to fill ``deadline``.

        Raises if the schedule is already longer than the deadline
        (beyond a small numerical tolerance).
        """
        span = self.total_time
        slack = deadline - span
        if slack < -1e-9 * max(1.0, deadline):
            raise ValueError(
                f"schedule length {span} exceeds deadline {deadline}"
            )
        if slack <= 0:
            return Schedule(self.slots)
        return Schedule(list(self.slots) + [Slot(None, slack)])

    def __repr__(self) -> str:
        parts = ", ".join(
            f"(idle, {s.duration:.3g}s)" if s.config_index is None
            else f"(c{s.config_index}, {s.duration:.3g}s)"
            for s in self.slots
        )
        return f"Schedule[{parts}]"
