"""Pareto-optimal power/performance tradeoffs and their convex hull.

After estimation, LEO "finds the set of configurations that represent
Pareto-optimal performance and power tradeoffs, and finally walks along
the convex hull of this optimal tradeoff space until the performance goal
is reached" (Section 5.3).  This module implements both steps:

* :func:`pareto_optimal_mask` — which configurations are undominated
  (no other configuration is at least as fast and strictly cheaper, or
  strictly faster and at most as expensive);
* :class:`TradeoffFrontier` — the lower convex hull of the (rate, power)
  cloud, anchored at the idle point (rate 0 at idle power), supporting
  interpolation at any achievable rate.  Points on this hull are exactly
  the average behaviours achievable by time-division between two
  configurations, which is what the Eq. (1) linear program optimizes
  over.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import get_metrics, start_timer, stop_timer


def pareto_optimal_mask(rates: Sequence[float],
                        powers: Sequence[float]) -> np.ndarray:
    """Boolean mask of Pareto-optimal configurations.

    A configuration dominates another if it has rate >= and power <= the
    other's, with at least one strict.  Ties (identical rate and power)
    are all kept.
    """
    r = np.asarray(rates, dtype=float)
    p = np.asarray(powers, dtype=float)
    if r.shape != p.shape or r.ndim != 1:
        raise ValueError("rates and powers must be equal-length 1-D arrays")
    mask = np.zeros(r.size, dtype=bool)
    best_strictly_faster = np.inf
    # Walk rate groups from fastest to slowest.  A point survives iff no
    # strictly faster point is as cheap, and no equal-rate point is cheaper.
    for rate in np.unique(r)[::-1]:
        group = np.where(r == rate)[0]
        group_pmin = p[group].min()
        for idx in group:
            mask[idx] = (p[idx] < best_strictly_faster
                         and p[idx] == group_pmin)
        best_strictly_faster = min(best_strictly_faster, group_pmin)
    return mask


@dataclasses.dataclass(frozen=True)
class HullPoint:
    """One vertex of the tradeoff frontier.

    ``config_index`` is ``None`` for the idle anchor (rate 0).
    """

    rate: float
    power: float
    config_index: Optional[int]


class TradeoffFrontier:
    """Lower convex hull of (rate, power) points, anchored at idle.

    Args:
        rates: Per-configuration performance (heartbeats/s); must be > 0.
        powers: Per-configuration power (W); must be > 0.
        idle_power: Power of the idle system, the rate-0 anchor.  Pass
            ``None`` to build a frontier without an idle point (then only
            rates between the slowest and fastest hull vertices are
            interpolable).
    """

    def __init__(self, rates: Sequence[float], powers: Sequence[float],
                 idle_power: Optional[float] = None) -> None:
        r = np.asarray(rates, dtype=float)
        p = np.asarray(powers, dtype=float)
        if r.shape != p.shape or r.ndim != 1 or r.size == 0:
            raise ValueError("rates and powers must be equal-length, non-empty")
        if np.any(~np.isfinite(r)) or np.any(~np.isfinite(p)):
            raise ValueError("rates and powers must be finite")
        if np.any(r <= 0):
            raise ValueError("all configuration rates must be positive")
        if np.any(p <= 0):
            raise ValueError("all configuration powers must be positive")
        points: List[Tuple[float, float, Optional[int]]] = [
            (float(r[i]), float(p[i]), i) for i in range(r.size)
        ]
        if idle_power is not None:
            if idle_power < 0:
                raise ValueError(f"idle_power must be >= 0, got {idle_power}")
            points.append((0.0, float(idle_power), None))
        self.idle_power = idle_power
        started = start_timer()
        self._vertices = self._lower_hull(points)
        stop_timer("hull_build_seconds", started)
        get_metrics().set_gauge("hull_vertices", len(self._vertices))

    @staticmethod
    def _lower_hull(points: List[Tuple[float, float, Optional[int]]]
                    ) -> List[HullPoint]:
        """Andrew's monotone chain, lower boundary only."""
        points = sorted(points, key=lambda q: (q[0], q[1]))
        # Deduplicate identical rates, keeping the cheapest.
        dedup: List[Tuple[float, float, Optional[int]]] = []
        for q in points:
            if dedup and dedup[-1][0] == q[0]:
                continue  # sorted by power within rate; first is cheapest
            dedup.append(q)
        hull: List[Tuple[float, float, Optional[int]]] = []
        for q in dedup:
            while len(hull) >= 2:
                (x1, y1, _), (x2, y2, _) = hull[-2], hull[-1]
                cross = (x2 - x1) * (q[1] - y1) - (q[0] - x1) * (y2 - y1)
                if cross <= 0:
                    hull.pop()
                else:
                    break
            hull.append(q)
        return [HullPoint(rate=x, power=y, config_index=i) for x, y, i in hull]

    @property
    def vertices(self) -> List[HullPoint]:
        """Hull vertices sorted by increasing rate."""
        return list(self._vertices)

    @property
    def max_rate(self) -> float:
        """Highest achievable rate (rightmost vertex)."""
        return self._vertices[-1].rate

    @property
    def min_rate(self) -> float:
        """Lowest rate on the hull (0 if an idle anchor exists)."""
        return self._vertices[0].rate

    def achievable(self, rate: float) -> bool:
        """Whether ``rate`` lies within the hull's rate span."""
        return self.min_rate <= rate <= self.max_rate

    def power_at(self, rate: float) -> float:
        """Minimum average power achieving ``rate``, by hull interpolation."""
        lo, hi, lam = self.bracket(rate)
        return (1.0 - lam) * lo.power + lam * hi.power

    def bracket(self, rate: float) -> Tuple[HullPoint, HullPoint, float]:
        """The hull segment covering ``rate`` and its mixing weight.

        Returns ``(low, high, lam)`` with
        ``rate == (1-lam)*low.rate + lam*high.rate``.  For a rate exactly
        on a vertex, ``low == high`` and ``lam == 0``.
        """
        if not np.isfinite(rate):
            raise ValueError(f"rate must be finite, got {rate}")
        if not self.achievable(rate):
            raise ValueError(
                f"rate {rate} outside achievable span "
                f"[{self.min_rate}, {self.max_rate}]"
            )
        verts = self._vertices
        for low, high in zip(verts, verts[1:]):
            if low.rate <= rate <= high.rate:
                span = high.rate - low.rate
                lam = 0.0 if span == 0 else (rate - low.rate) / span
                if lam == 0.0:
                    return low, low, 0.0
                if lam == 1.0:
                    return high, high, 0.0
                return low, high, lam
        # rate == max_rate with a single vertex, or exactly the last vertex.
        last = verts[-1]
        return last, last, 0.0

    def energy_per_work(self) -> HullPoint:
        """The vertex minimizing energy per unit work (power / rate).

        This is the most energy-efficient sustained operating point; the
        idle anchor (rate 0) is excluded.
        """
        best: Optional[HullPoint] = None
        for vertex in self._vertices:
            if vertex.rate <= 0:
                continue
            if best is None or vertex.power / vertex.rate < best.power / best.rate:
                best = vertex
        if best is None:
            raise RuntimeError("frontier has no positive-rate vertex")
        return best
