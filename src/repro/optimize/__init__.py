"""Energy-minimization machinery: Pareto frontier, LP solvers, schedules."""

from repro.optimize.lp import EnergyMinimizer, InfeasibleConstraintError
from repro.optimize.pareto import HullPoint, TradeoffFrontier, pareto_optimal_mask
from repro.optimize.schedule import Schedule, Slot
from repro.optimize.simplex import (
    InfeasibleError,
    SimplexSolution,
    UnboundedError,
    solve_lp,
)

__all__ = [
    "EnergyMinimizer",
    "InfeasibleConstraintError",
    "HullPoint",
    "TradeoffFrontier",
    "pareto_optimal_mask",
    "Schedule",
    "Slot",
    "InfeasibleError",
    "SimplexSolution",
    "UnboundedError",
    "solve_lp",
]
