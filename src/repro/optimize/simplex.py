"""A from-scratch dense primal simplex solver.

Solves linear programs in standard equality form,

    minimize    c' x
    subject to  A x = b,  x >= 0,

via the two-phase primal simplex method with Bland's anti-cycling rule.
The energy-minimization problem (paper Eq. 1) reduces to two equality
rows over the configuration residencies, so the instances here are tiny;
this implementation favours clarity and numerical care over speed and is
used to cross-check the specialized convex-hull solver in
:mod:`repro.optimize.lp` (see the LP ablation benchmark).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

#: Feasibility / optimality tolerance.
_EPS = 1e-9


class InfeasibleError(ValueError):
    """The LP has no feasible point."""


class UnboundedError(ValueError):
    """The LP objective is unbounded below."""


@dataclasses.dataclass(frozen=True)
class SimplexSolution:
    """Result of a simplex solve.

    Attributes:
        x: Optimal primal solution.
        objective: Optimal objective value ``c' x``.
        iterations: Total pivots across both phases.
    """

    x: np.ndarray
    objective: float
    iterations: int


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Pivot the tableau so column ``col`` enters the basis at ``row``."""
    tableau[row] /= tableau[row, col]
    for i in range(tableau.shape[0]):
        if i != row and abs(tableau[i, col]) > 0:
            tableau[i] -= tableau[i, col] * tableau[row]
    basis[row] = col


def _solve_phase(tableau: np.ndarray, basis: np.ndarray, num_vars: int,
                 max_iterations: int) -> int:
    """Run simplex pivots until optimal; returns the pivot count.

    The tableau's last row holds reduced costs (objective row), the last
    column holds the right-hand side.  Bland's rule (smallest eligible
    index) guarantees termination.
    """
    iterations = 0
    while True:
        costs = tableau[-1, :num_vars]
        entering = -1
        for j in range(num_vars):
            if costs[j] < -_EPS:
                entering = j
                break
        if entering < 0:
            return iterations
        # Ratio test with Bland's tie-break on the leaving variable index.
        ratios = np.full(tableau.shape[0] - 1, np.inf)
        col = tableau[:-1, entering]
        rhs = tableau[:-1, -1]
        positive = col > _EPS
        ratios[positive] = rhs[positive] / col[positive]
        if not np.any(np.isfinite(ratios)):
            raise UnboundedError("objective is unbounded below")
        best = np.min(ratios)
        candidates = np.where(ratios <= best + _EPS)[0]
        leaving = min(candidates, key=lambda i: basis[i])
        _pivot(tableau, basis, leaving, entering)
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError(
                f"simplex exceeded {max_iterations} pivots; "
                "this should be impossible with Bland's rule"
            )


def solve_lp(c: np.ndarray, a: np.ndarray, b: np.ndarray,
             max_iterations: Optional[int] = None) -> SimplexSolution:
    """Solve ``min c'x s.t. a x = b, x >= 0`` by two-phase simplex.

    Raises:
        InfeasibleError: If no feasible point exists.
        UnboundedError: If the objective is unbounded below.
    """
    c = np.asarray(c, dtype=float).ravel()
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.asarray(b, dtype=float).ravel()
    m, n = a.shape
    if c.size != n:
        raise ValueError(f"c has {c.size} entries; A has {n} columns")
    if b.size != m:
        raise ValueError(f"b has {b.size} entries; A has {m} rows")
    if not (np.all(np.isfinite(c)) and np.all(np.isfinite(a))
            and np.all(np.isfinite(b))):
        raise ValueError("LP data must be finite")
    if max_iterations is None:
        max_iterations = 200 * (n + m + 10)

    # Normalize to b >= 0 so the artificial basis is feasible.
    flip = b < 0
    a = a.copy()
    b = b.copy()
    a[flip] *= -1
    b[flip] *= -1

    # Phase 1: minimize the sum of artificial variables.
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a
    tableau[:m, n:n + m] = np.eye(m)
    tableau[:m, -1] = b
    tableau[-1, n:n + m] = 1.0
    basis = np.arange(n, n + m)
    # Price out the artificial basis from the objective row.
    for i in range(m):
        tableau[-1] -= tableau[i]
    iterations = _solve_phase(tableau, basis, n + m, max_iterations)
    if tableau[-1, -1] < -_EPS:
        raise InfeasibleError(
            f"phase-1 optimum {-tableau[-1, -1]:g} > 0: LP is infeasible"
        )

    # Drive any artificial variables out of the basis (degenerate rows).
    for i in range(m):
        if basis[i] >= n:
            pivot_col = -1
            for j in range(n):
                if abs(tableau[i, j]) > _EPS:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(tableau, basis, i, pivot_col)
                iterations += 1
            # Else the row is all zeros over the original columns: the
            # constraint was redundant; the artificial stays at zero.

    # Phase 2: original objective over the original columns.
    phase2 = np.zeros((m + 1, n + 1))
    phase2[:m, :n] = tableau[:m, :n]
    phase2[:m, -1] = tableau[:m, -1]
    phase2[-1, :n] = c
    for i in range(m):
        if basis[i] < n:
            phase2[-1] -= phase2[-1, basis[i]] * phase2[i]
    iterations += _solve_phase(phase2, basis, n, max_iterations)

    x = np.zeros(n)
    for i in range(m):
        if basis[i] < n:
            x[basis[i]] = phase2[i, -1]
    x[np.abs(x) < _EPS] = 0.0
    return SimplexSolution(x=x, objective=float(c @ x), iterations=iterations)
