"""Dynamic adaptation: Figure 13 and Table 1 (Section 6.6).

fluidanimate runs an input with two phases; both phases share the same
per-frame deadline but the second phase "requires 2/3 the resources of
the first".  Every approach meets the performance goal (the controller's
per-quantum feedback is the paper's gradient ascent); the difference is
power: LEO re-estimates after its phase detector fires and lands near
the optimal power for the light phase, while the baselines' poorer
models overspend.

Table 1 reports per-phase energy relative to the per-phase optimum
(paper values: LEO 1.045/1.005/1.028, Offline 1.169/1.275/1.216,
Online 1.325/1.248/1.291).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.estimators.registry import create_estimator
from repro.experiments import harness
from repro.experiments.harness import APPROACHES, ExperimentContext
from repro.optimize.lp import EnergyMinimizer
from repro.runtime.controller import RunReport, RuntimeController
from repro.runtime.sampling import RandomSampler
from repro.workloads.phases import PhasedWorkload, fluidanimate_two_phase
from repro.workloads.profile import ApplicationProfile


@dataclasses.dataclass
class DynamicResult:
    """Figure 13 / Table 1 data.

    Attributes:
        workload: The phased workload executed.
        reports: ``{approach: [RunReport per phase]}``.
        optimal_energy: Analytic per-phase optimal energy (J).
        relative: ``{approach: [phase1, phase2, overall]}`` energy
            relative to optimal — Table 1's rows.
    """

    workload: PhasedWorkload
    reports: Dict[str, List[RunReport]]
    optimal_energy: List[float]
    relative: Dict[str, List[float]]

    def reestimations(self, approach: str) -> int:
        """Total phase-change re-calibrations across phases."""
        return sum(r.reestimations for r in self.reports[approach])


def _phase_truth(ctx: ExperimentContext, profile: ApplicationProfile):
    machine = ctx.machine()
    rates = np.array([machine.true_rate(profile, c) for c in ctx.space])
    powers = np.array([machine.true_power(profile, c) for c in ctx.space])
    return rates, powers


def dynamic_experiment(ctx: Optional[ExperimentContext] = None,
                       benchmark: str = "fluidanimate",
                       utilization: float = 0.6,
                       phase_seconds: float = 30.0,
                       work_ratio: float = 2.0 / 3.0) -> DynamicResult:
    """Run the Section 6.6 phased experiment for every approach.

    Args:
        utilization: Per-frame demand as a fraction of the heavy phase's
            peak rate (the constraint both phases must meet).
        phase_seconds: Approximate wall-clock length of each phase.
        work_ratio: Phase-2 per-frame work relative to phase 1.
    """
    if ctx is None:
        ctx = harness.default_context()
    if not 0 < utilization < 1:
        raise ValueError(f"utilization must be in (0, 1), got {utilization}")
    if phase_seconds <= 0:
        raise ValueError(f"phase_seconds must be positive, got {phase_seconds}")

    profile = ctx.profile(benchmark)
    view = ctx.dataset.leave_one_out(benchmark)
    idle = ctx.idle_power()

    heavy_rates, _ = _phase_truth(ctx, profile)
    target_rate = utilization * float(heavy_rates.max())
    frame_deadline = 1.0 / target_rate
    frames = max(int(round(phase_seconds * target_rate)), 10)
    workload = fluidanimate_two_phase(profile, frames_per_phase=frames,
                                      frame_deadline=frame_deadline,
                                      work_ratio=work_ratio)

    # Analytic per-phase optimum on each phase's true curves.
    optimal_energy = []
    for phase in workload:
        rates, powers = _phase_truth(ctx, phase.profile)
        minimizer = EnergyMinimizer(rates, powers, idle)
        optimal_energy.append(
            minimizer.min_energy(float(phase.frames), phase.duration))

    reports: Dict[str, List[RunReport]] = {}
    relative: Dict[str, List[float]] = {}
    for a, approach in enumerate(APPROACHES):
        machine = ctx.machine(seed_offset=600 + a)
        controller = RuntimeController(
            machine=machine, space=ctx.space,
            estimator=create_estimator(approach),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            sampler=RandomSampler(ctx.seed + a))
        phase_reports = controller.run_phased(workload, adapt=True)
        reports[approach] = phase_reports
        energies = [r.energy for r in phase_reports]
        rel = [e / o for e, o in zip(energies, optimal_energy)]
        rel.append(sum(energies) / sum(optimal_energy))
        relative[approach] = rel

    return DynamicResult(workload=workload, reports=reports,
                         optimal_energy=optimal_energy, relative=relative)


def table1_rows(result: DynamicResult) -> List[List[object]]:
    """Rows of Table 1: algorithm, phase 1, phase 2, overall."""
    label = {"leo": "LEO", "offline": "Offline", "online": "Online"}
    rows = []
    for approach in APPROACHES:
        rel = result.relative[approach]
        rows.append([label.get(approach, approach), rel[0], rel[1], rel[2]])
    return rows
