"""Pareto-frontier comparison: Figure 9.

The paper plots, for the representative applications, the power/
performance convex hulls estimated by each approach against the true
hull from exhaustive search: "When the estimated curves are below
optimal plots, it represents worse performance i.e. missed deadlines,
whereas the estimations above the optimal waste energy."

Performance is reported as speedup — rate relative to the application's
rate in the base configuration (index 0), matching Figure 9's x-axis.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments import harness
from repro.experiments.harness import (
    APPROACHES,
    ExperimentContext,
    estimate_curves,
    random_indices,
    sample_target,
)
from repro.experiments.estimation import REPRESENTATIVES
from repro.optimize.pareto import TradeoffFrontier


@dataclasses.dataclass
class FrontierComparison:
    """True and estimated tradeoff frontiers for one application.

    ``hulls`` maps approach name (plus ``"true"``) to arrays of hull
    vertices ``(speedup, watts)`` sorted by increasing speedup.
    """

    benchmark: str
    hulls: Dict[str, np.ndarray]

    def hull_area_error(self, approach: str,
                        grid_points: int = 64) -> float:
        """Mean |estimated - true| hull power over a shared speedup grid.

        A scalar summary of how far an estimated frontier sits from the
        true one (Watts of average vertical gap).
        """
        true_hull = self.hulls["true"]
        est_hull = self.hulls[approach]
        lo = max(true_hull[0, 0], est_hull[0, 0])
        hi = min(true_hull[-1, 0], est_hull[-1, 0])
        if hi <= lo:
            raise ValueError(
                f"frontiers of {approach!r} and truth do not overlap"
            )
        grid = np.linspace(lo, hi, grid_points)
        true_power = np.interp(grid, true_hull[:, 0], true_hull[:, 1])
        est_power = np.interp(grid, est_hull[:, 0], est_hull[:, 1])
        return float(np.mean(np.abs(est_power - true_power)))


def _hull_points(rates: np.ndarray, powers: np.ndarray, base_rate: float,
                 idle_power: float) -> np.ndarray:
    frontier = TradeoffFrontier(rates / base_rate, powers,
                                idle_power=idle_power)
    return np.array([[v.rate, v.power] for v in frontier.vertices])


def frontier_experiment(ctx: Optional[ExperimentContext] = None,
                        benchmarks: Sequence[str] = REPRESENTATIVES,
                        sample_count: int = 20
                        ) -> List[FrontierComparison]:
    """Build Figure 9's frontier comparisons."""
    if ctx is None:
        ctx = harness.default_context()
    idle = ctx.idle_power()
    results = []
    for b, name in enumerate(benchmarks):
        view = ctx.dataset.leave_one_out(name)
        truth_view = ctx.truth.leave_one_out(name)
        base_rate = float(truth_view.true_rates[0])

        seed = ctx.seed + 9000 + b
        indices = random_indices(len(ctx.space), sample_count, seed)
        rate_obs, power_obs = sample_target(ctx, ctx.profile(name), indices,
                                            seed_offset=seed)

        hulls: Dict[str, np.ndarray] = {
            "true": _hull_points(truth_view.true_rates,
                                 truth_view.true_powers, base_rate, idle),
        }
        for approach in APPROACHES:
            estimate = estimate_curves(ctx, view, indices, rate_obs,
                                       power_obs, approach)
            if estimate.feasible:
                hulls[approach] = _hull_points(
                    estimate.rates, estimate.powers, base_rate, idle)
        results.append(FrontierComparison(benchmark=name, hulls=hulls))
    return results


def frontier_summary(comparisons: Sequence[FrontierComparison]
                     ) -> Dict[str, Dict[str, float]]:
    """Per-benchmark mean hull gap (W) for each approach."""
    out: Dict[str, Dict[str, float]] = {}
    for comparison in comparisons:
        out[comparison.benchmark] = {
            approach: comparison.hull_area_error(approach)
            for approach in comparison.hulls if approach != "true"
        }
    return out
