"""Parallel execution backend for the experiment harness.

The paper's evaluation sweeps 25 benchmarks x several estimators x 1024
configurations; run serially, a full reproduction is wall-clock bound by
Python orchestration rather than math.  :class:`ParallelRunner` fans
independent experiment cells — (benchmark, estimator, trial) units whose
seeds are fixed up front — across a ``concurrent.futures``
``ProcessPoolExecutor``:

* **Determinism** — a cell's result depends only on its payload (which
  carries an explicit seed), never on scheduling.  Seeds are derived with
  :func:`cell_seed`, which is stable across processes and platforms
  (``PYTHONHASHSEED`` plays no part).  ``workers=k`` therefore returns
  results byte-identical to the serial path for every ``k``; the
  property suite asserts this.
* **Chunked scheduling** — cells are submitted in contiguous chunks
  (default: ~4 chunks per worker) to amortize pickling, and results are
  reassembled in input order regardless of completion order.
* **Progress** — the parent process reports through the ambient
  :mod:`repro.obs` metrics registry (``harness_cells_total`` gauge,
  ``harness_cells_completed_total`` counter, ``harness_chunk_seconds``
  histogram) under a ``harness.parallel_map`` span.
* **Distributed observability** — when the parent's bundle is
  recording, the initializer ships a small spec (trace id, parent span
  id, which pillars are on) to each worker; every chunk then runs under
  a private recording bundle whose span ids come from a
  :func:`~repro.obs.shard_span_base` block keyed by the chunk's first
  cell index — content-derived, so ids are identical no matter which
  worker runs the chunk — and returns its span dicts and lossless
  metrics dump alongside the results.  The parent adopts the spans
  (each ``harness.cell`` parents under ``harness.parallel_map`` via the
  remote-parent link) and merges the dumps, so the ambient registry
  holds fleet-wide truth.  With observability off the spec is ``None``
  and workers do exactly what they did before.
* **Fallback** — ``workers=1``, an unavailable ``fork`` *and* ``spawn``
  start method, or a failure to stand the pool up all degrade to the
  in-process serial loop, which runs the exact same task callables.

Shared read-mostly state (the :class:`ExperimentContext`) is shipped to
each worker once via the pool initializer, not once per cell.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import logging
import multiprocessing
import os
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import (
    MetricsRegistry,
    Observability,
    Span,
    Tracer,
    get_observability,
    shard_span_base,
    start_timer,
    stop_timer,
    use,
)

__all__ = ["ParallelRunner", "cell_seed", "default_workers"]

logger = logging.getLogger(__name__)

#: Environment variable consulted by :func:`default_workers`.
WORKERS_ENV = "REPRO_WORKERS"

#: A task takes (shared_state, cell_payload) and returns a picklable
#: result.  It must be a module-level callable so it pickles by name.
Task = Callable[[Any, Any], Any]


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (default 1: the serial path)."""
    raw = os.environ.get(WORKERS_ENV, "1")
    try:
        workers = int(raw)
    except ValueError as exc:
        raise ValueError(f"{WORKERS_ENV} must be an integer, got {raw!r}"
                         ) from exc
    if workers < 1:
        raise ValueError(f"{WORKERS_ENV} must be >= 1, got {workers}")
    return workers


def cell_seed(base_seed: int, *components: object) -> int:
    """A per-cell seed derived stably from ``base_seed`` and labels.

    Uses SHA-256 over the reprs, so the same (benchmark, estimator,
    trial) cell gets the same seed in every process on every platform —
    unlike ``hash()``, which is salted per interpreter.  The result fits
    in 63 bits, valid for ``np.random.default_rng``.
    """
    digest = hashlib.sha256(repr((base_seed,) + components).encode())
    return int.from_bytes(digest.digest()[:8], "little") >> 1


# ----------------------------------------------------------------------
# Worker-process state
# ----------------------------------------------------------------------
# The initializer stows the task and the shared state in module globals;
# chunk payloads then carry only small per-cell tuples.
_worker_task: Optional[Task] = None
_worker_shared: Any = None
_worker_obs: Optional[Dict[str, Any]] = None


def _init_worker(task: Task, shared: Any,
                 obs_spec: Optional[Dict[str, Any]] = None) -> None:
    global _worker_task, _worker_shared, _worker_obs
    _worker_task = task
    _worker_shared = shared
    _worker_obs = obs_spec


def _obs_spec(ob: Observability) -> Optional[Dict[str, Any]]:
    """What a worker needs to reconstruct the parent's recording state.

    ``None`` (the common case: observability off) keeps workers on the
    exact pre-instrumentation code path.
    """
    if not (ob.tracer.is_recording or ob.metrics.is_recording):
        return None
    return {
        "trace_id": (ob.tracer.trace_id
                     if ob.tracer.is_recording else None),
        "parent_span_id": (ob.tracer.current_span_id
                           if ob.tracer.is_recording else None),
        "metrics": bool(ob.metrics.is_recording),
    }


def _chunk_observability(chunk: Sequence[Tuple[int, Any]]
                         ) -> Optional[Observability]:
    """A recording bundle for one chunk, or ``None`` when obs is off.

    The span-id block is keyed by the chunk's *first cell index* — a
    property of the chunk's content, not of which worker picked it up —
    so a traced ``workers=k`` run produces identical span ids for every
    ``k`` and every scheduling order.
    """
    spec = _worker_obs
    if not spec:
        return None
    tracer = None
    if spec.get("trace_id"):
        tracer = Tracer(
            trace_id=spec["trace_id"],
            remote_parent=spec.get("parent_span_id"),
            span_id_base=shard_span_base(spec["trace_id"],
                                         f"chunk-{chunk[0][0]}"))
    metrics = MetricsRegistry() if spec.get("metrics") else None
    if tracer is None and metrics is None:
        return None
    return Observability(tracer=tracer, metrics=metrics)


def _run_chunk(chunk: Sequence[Tuple[int, Any]]
               ) -> Tuple[List[Tuple[int, Any]], List[Dict[str, Any]],
                          Optional[Dict[str, Any]]]:
    """Run one chunk; returns ``(results, span_dicts, metrics_dump)``.

    The observability exports ride back through the pool's pickle
    channel: spans as dicts (rebuilt with :meth:`Span.from_dict` and
    adopted by the parent tracer), metrics as a lossless registry dump
    (merged into the parent registry).  Both are empty when off.
    """
    if _worker_task is None:
        raise RuntimeError("worker initialized without a task")
    local = _chunk_observability(chunk)
    if local is None:
        return ([(index, _worker_task(_worker_shared, cell))
                 for index, cell in chunk], [], None)
    results: List[Tuple[int, Any]] = []
    with use(local):
        for index, cell in chunk:
            with local.tracer.span("harness.cell", index=index):
                results.append((index, _worker_task(_worker_shared, cell)))
            local.metrics.inc("harness_worker_cells_total")
    dump = local.metrics.dump() if local.metrics.is_recording else None
    return (results, [span.to_dict() for span in local.tracer.spans], dump)


class ParallelRunner:
    """Maps a task over experiment cells, serially or across processes.

    Args:
        workers: Process count; ``None`` reads ``REPRO_WORKERS``.  ``1``
            selects the in-process serial path.
        chunk_size: Cells per submitted chunk; ``None`` picks
            ``ceil(len(cells) / (4 * workers))`` so each worker sees ~4
            chunks (coarse enough to amortize pickling, fine enough to
            balance load).
        mp_context: A ``multiprocessing`` context name (``"fork"``,
            ``"spawn"``); ``None`` prefers fork and falls back to spawn.
    """

    def __init__(self, workers: Optional[int] = None,
                 chunk_size: Optional[int] = None,
                 mp_context: Optional[str] = None) -> None:
        self.workers = default_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        #: "serial" or "process" — how the most recent map() executed.
        self.last_backend: Optional[str] = None

    # ------------------------------------------------------------------
    def map(self, task: Task, cells: Sequence[Any],
            shared: Any = None) -> List[Any]:
        """Run ``task(shared, cell)`` for every cell, in input order.

        The parallel and serial paths execute identical callables on
        identical payloads; only scheduling differs, and results are
        re-ordered to the input sequence, so the output is independent
        of the worker count.
        """
        cells = list(cells)
        ob = get_observability()
        ob.metrics.set_gauge("harness_cells_total", len(cells))
        with ob.tracer.span("harness.parallel_map", workers=self.workers,
                            cells=len(cells)) as span:
            context = self._process_context() if self.workers > 1 else None
            if not cells:
                results: List[Any] = []
            elif context is None:
                span.set_attribute("backend", "serial")
                self.last_backend = "serial"
                results = self._map_serial(task, cells, shared)
            else:
                span.set_attribute("backend", "process")
                self.last_backend = "process"
                try:
                    results = self._map_processes(task, cells, shared,
                                                  context)
                except (OSError, concurrent.futures.process
                        .BrokenProcessPool) as exc:
                    # A pool that cannot start (locked-down /dev/shm,
                    # fork bombs disallowed, ...) degrades to serial
                    # rather than failing the sweep.
                    logger.warning(
                        "process pool unavailable (%s); falling back to "
                        "the serial path", exc)
                    span.set_attribute("backend", "serial-fallback")
                    self.last_backend = "serial"
                    results = self._map_serial(task, cells, shared)
        return results

    # ------------------------------------------------------------------
    def _process_context(self):
        """The multiprocessing context to use, or None for serial."""
        names = ([self.mp_context] if self.mp_context is not None
                 else ["fork", "spawn"])
        for name in names:
            try:
                return multiprocessing.get_context(name)
            except ValueError:
                continue
        logger.warning(
            "no usable multiprocessing start method among %s; "
            "falling back to the serial path", names)
        return None

    def _map_serial(self, task: Task, cells: Sequence[Any],
                    shared: Any) -> List[Any]:
        ob = get_observability()
        results = []
        for index, cell in enumerate(cells):
            # Same per-cell instrumentation as the worker path, so the
            # trace tree has one shape whichever backend ran.
            with ob.tracer.span("harness.cell", index=index):
                results.append(task(shared, cell))
            ob.metrics.inc("harness_worker_cells_total")
            ob.metrics.inc("harness_cells_completed_total")
        return results

    def _map_processes(self, task: Task, cells: Sequence[Any], shared: Any,
                       context) -> List[Any]:
        ob = get_observability()
        chunk_size = self.chunk_size
        if chunk_size is None:
            chunk_size = -(-len(cells) // (4 * self.workers)) or 1
        indexed = list(enumerate(cells))
        chunks = [indexed[i:i + chunk_size]
                  for i in range(0, len(indexed), chunk_size)]

        results: List[Any] = [None] * len(cells)
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.workers, len(chunks)),
                mp_context=context,
                initializer=_init_worker,
                initargs=(task, shared, _obs_spec(ob))) as pool:
            started = {pool.submit(_run_chunk, chunk): start_timer()
                       for chunk in chunks}
            for future in concurrent.futures.as_completed(started):
                chunk_results, span_dicts, dump = future.result()
                stop_timer("harness_chunk_seconds", started[future])
                for index, value in chunk_results:
                    results[index] = value
                if span_dicts:
                    ob.tracer.adopt(Span.from_dict(d) for d in span_dicts)
                if dump is not None:
                    ob.metrics.merge(dump)
                ob.metrics.inc("harness_cells_completed_total",
                               len(chunk_results))
                logger.debug("chunk completed",
                             extra={"fields": {
                                 "cells": len(chunk_results)}})
        return results
