"""Input-drift study: estimation accuracy across input variants.

Section 4 motivates online estimation with input dependence: "for many
applications, these values also vary with varying inputs", so a model
trained on one input's behaviour cannot simply be replayed on another.
This experiment quantifies that: the offline library is profiled on
*reference* inputs, targets are seeded input variants
(:func:`repro.workloads.inputs.input_sweep`) of suite applications, and
each approach estimates the variant's curves from 20 fresh samples.

Expected shape: the offline mean suffers most (it can only predict the
reference behaviour), while LEO stays accurate — the variant is just
another application whose shape the hierarchy matches to the library.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.accuracy import accuracy
from repro.estimators.base import (
    EstimationProblem,
    InsufficientSamplesError,
    normalize_problem,
)
from repro.estimators.registry import create_estimator
from repro.experiments import harness
from repro.experiments.harness import APPROACHES, ExperimentContext
from repro.workloads.inputs import input_sweep


@dataclasses.dataclass
class InputDriftResult:
    """Accuracy on input variants, per base application and approach.

    ``perf[name][approach]`` is the mean accuracy across that
    application's input variants.
    """

    perf: Dict[str, Dict[str, float]]
    variants_per_app: int

    def mean_perf(self) -> Dict[str, float]:
        """Per-approach mean accuracy across base applications."""
        return harness.summarize_means(self.perf, APPROACHES)


def input_drift_experiment(ctx: Optional[ExperimentContext] = None,
                           benchmarks: Sequence[str] = ("kmeans", "swish",
                                                        "x264", "jacobi"),
                           variants_per_app: int = 3,
                           sample_count: int = 20) -> InputDriftResult:
    """Estimate input variants against reference-input priors."""
    if ctx is None:
        ctx = harness.default_context()
    if variants_per_app < 1:
        raise ValueError(
            f"variants_per_app must be >= 1, got {variants_per_app}"
        )

    perf: Dict[str, Dict[str, float]] = {}
    for b, name in enumerate(benchmarks):
        base = ctx.profile(name)
        view = ctx.dataset.leave_one_out(name)
        variants = input_sweep(base, variants_per_app,
                               seed=ctx.seed + 90 + b)
        scores: Dict[str, List[float]] = {a: [] for a in APPROACHES}
        for v, variant in enumerate(variants):
            machine = ctx.machine(seed_offset=700 + 10 * b + v)
            truth = np.array([machine.true_rate(variant, c)
                              for c in ctx.space])
            indices = harness.random_indices(
                len(ctx.space), sample_count, ctx.seed + 91 + 10 * b + v)
            machine.load(variant)
            observed = []
            for i in indices:
                machine.apply(ctx.space[int(i)])
                observed.append(machine.run_for(1.0).rate)
            problem = EstimationProblem(
                features=ctx.features, prior=view.prior_rates,
                observed_indices=indices,
                observed_values=np.array(observed))
            normalized, scale = normalize_problem(problem)
            for approach in APPROACHES:
                try:
                    estimate = create_estimator(approach).estimate(
                        normalized) * scale
                    scores[approach].append(accuracy(estimate, truth))
                except InsufficientSamplesError:
                    scores[approach].append(0.0)
        perf[name] = {a: float(np.mean(v)) for a, v in scores.items()}
    return InputDriftResult(perf=perf, variants_per_app=variants_per_app)
