"""Shared infrastructure for the paper-reproduction experiments.

Every figure/table module builds on the same pieces:

* an :class:`ExperimentContext` — one simulated platform, one workload
  suite, the noisy offline dataset (what estimators see as priors) and
  the noise-free exhaustive-search dataset (the ground truth accuracy is
  scored against);
* :func:`sample_target` — measure the target application at a sampled
  subset of configurations, as the runtime's calibration phase does;
* :func:`estimate_curves` — run one named approach on those samples and
  return absolute rate/power curves.

Performance curves are pooled across applications in normalized space
(see :func:`repro.estimators.base.normalize_problem`): the paper reports
performance "measured as speedup", and raw heartbeat rates span four
orders of magnitude across the suite.  Every approach receives the same
samples and has its absolute scale anchored by the same observed mean,
so accuracy differences reflect *shape* estimation — which is what the
paper's Figures 5-8 compare.

Experiment scale (trials, utilization grid density) honours the
``REPRO_BENCH_SCALE`` environment variable: 1.0 is the default scale,
smaller is faster/coarser, larger is slower/tighter.
"""

from __future__ import annotations

import contextlib
import dataclasses
import functools
import logging
import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.accuracy import accuracy
from repro.obs import Span, get_observability
from repro.experiments.parallel import (  # noqa: F401  (re-exported)
    ParallelRunner,
    cell_seed,
    default_workers,
)
from repro.estimators.base import (
    EstimationProblem,
    InsufficientSamplesError,
    normalize_problem,
)
from repro.estimators.registry import create_estimator
from repro.platform.config_space import ConfigurationSpace
from repro.platform.machine import Machine
from repro.workloads.profile import ApplicationProfile
from repro.workloads.suite import paper_suite
from repro.workloads.traces import LeaveOneOut, OfflineDataset

#: The approaches compared throughout Section 6 (race-to-idle and the
#: exhaustive oracle are handled specially — they estimate nothing).
APPROACHES: Tuple[str, ...] = ("leo", "online", "offline")

#: Deadline used by the energy experiments (seconds).  The paper fixes
#: the deadline and varies the workload (Section 6.4).
DEADLINE_SECONDS = 100.0

logger = logging.getLogger(__name__)


@contextlib.contextmanager
def experiment_span(name: str, **attributes: object) -> Iterator[Span]:
    """An ``experiment.run`` span for one figure/table reproduction.

    Wraps the ambient tracer so every benchmark module marks its work the
    same way (``experiment.run`` with an ``experiment`` attribute naming
    the figure); a no-op span when tracing is disabled.  Also logs the
    start at debug level so long sweeps are followable.
    """
    logger.debug("experiment started",
                 extra={"fields": {"experiment": name, **attributes}})
    with get_observability().tracer.span("experiment.run", experiment=name,
                                         **attributes) as span:
        yield span


def bench_scale() -> float:
    """Scale factor for experiment sizes, from ``REPRO_BENCH_SCALE``."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_BENCH_SCALE must be a float, got {raw!r}") from exc
    if scale <= 0:
        raise ValueError(f"REPRO_BENCH_SCALE must be positive, got {scale}")
    return scale


def scaled(count: int, minimum: int = 1) -> int:
    """``count`` adjusted by the bench scale, floored at ``minimum``."""
    return max(int(round(count * bench_scale())), minimum)


@dataclasses.dataclass(frozen=True)
class ExperimentContext:
    """One platform + suite + datasets, shared by the experiments.

    Attributes:
        space: The configuration space under study.
        suite: The application profiles (paper's 25 benchmarks).
        dataset: Noisy offline profiling tables — the estimators' priors.
        truth: Noise-free exhaustive-search tables — the ground truth.
        seed: Base seed; derived seeds offset from it.
    """

    space: ConfigurationSpace
    suite: Tuple[ApplicationProfile, ...]
    dataset: OfflineDataset
    truth: OfflineDataset
    seed: int

    @property
    def features(self) -> np.ndarray:
        return self.space.feature_matrix()

    @property
    def benchmark_names(self) -> List[str]:
        return [p.name for p in self.suite]

    def profile(self, name: str) -> ApplicationProfile:
        """Look up one suite profile by benchmark name."""
        for p in self.suite:
            if p.name == name:
                return p
        raise KeyError(f"unknown benchmark {name!r}")

    def machine(self, seed_offset: int = 0) -> Machine:
        """A fresh machine with a seed derived from the context's."""
        return Machine(self.space.topology, seed=self.seed + seed_offset)

    def idle_power(self) -> float:
        """System idle power of the context's platform (W)."""
        return self.machine().idle_power()


@functools.lru_cache(maxsize=4)
def default_context(space_kind: str = "paper", seed: int = 0
                    ) -> ExperimentContext:
    """The cached standard context (paper space, paper suite).

    Building the datasets sweeps 25 applications over the full space
    twice (noisy priors + clean truth); caching keeps that cost to once
    per process.
    """
    if space_kind == "paper":
        space = ConfigurationSpace.paper_space()
    elif space_kind == "cores":
        space = ConfigurationSpace.cores_only()
    else:
        raise ValueError(f"space_kind must be 'paper' or 'cores', got {space_kind!r}")
    suite = tuple(paper_suite())
    collector = Machine(space.topology, seed=seed + 1)
    dataset = OfflineDataset.collect(collector, suite, space, noisy=True)
    oracle = Machine(space.topology, seed=seed + 2)
    truth = OfflineDataset.collect(oracle, suite, space, noisy=False)
    return ExperimentContext(space=space, suite=suite, dataset=dataset,
                             truth=truth, seed=seed)


# ----------------------------------------------------------------------
# Target sampling and estimation
# ----------------------------------------------------------------------
def sample_target(ctx: ExperimentContext, profile: ApplicationProfile,
                  indices: np.ndarray, window: float = 1.0,
                  seed_offset: int = 100) -> Tuple[np.ndarray, np.ndarray]:
    """Measure ``profile`` at the given configuration indices.

    Returns ``(rates, powers)`` observations with machine noise, the
    runtime's calibration measurements.
    """
    machine = ctx.machine(seed_offset)
    machine.load(profile)
    rates = np.empty(indices.size)
    powers = np.empty(indices.size)
    for j, i in enumerate(indices):
        machine.apply(ctx.space[int(i)])
        m = machine.run_for(window)
        rates[j], powers[j] = m.rate, m.system_power
    return rates, powers


@dataclasses.dataclass(frozen=True)
class CurveEstimate:
    """One approach's absolute rate and power curve estimates."""

    approach: str
    rates: Optional[np.ndarray]
    powers: Optional[np.ndarray]

    @property
    def feasible(self) -> bool:
        """False when the approach could not produce an estimate."""
        return self.rates is not None and self.powers is not None


def estimate_curves(ctx: ExperimentContext, view: LeaveOneOut,
                    indices: np.ndarray, rate_obs: np.ndarray,
                    power_obs: np.ndarray, approach: str,
                    **estimator_kwargs) -> CurveEstimate:
    """Run one approach on the samples; None curves when ill-posed."""
    estimator = create_estimator(approach, **estimator_kwargs)
    features = ctx.features
    try:
        rate_problem = EstimationProblem(
            features=features, prior=view.prior_rates,
            observed_indices=indices, observed_values=rate_obs)
        normalized, scale = normalize_problem(rate_problem)
        rates = estimator.estimate(normalized) * scale

        power_problem = EstimationProblem(
            features=features, prior=view.prior_powers,
            observed_indices=indices, observed_values=power_obs)
        powers = estimator.estimate(power_problem)
    except InsufficientSamplesError:
        return CurveEstimate(approach=approach, rates=None, powers=None)

    floor_r = 1e-3 * float(rate_obs.min())
    floor_p = 1e-3 * float(power_obs.min())
    return CurveEstimate(
        approach=approach,
        rates=np.maximum(rates, max(floor_r, 1e-12)),
        powers=np.maximum(powers, max(floor_p, 1e-12)),
    )


def accuracy_scores(estimate: CurveEstimate, view: LeaveOneOut
                    ) -> Tuple[float, float]:
    """Eq. (5) accuracy of (performance, power) against the truth.

    An infeasible estimate scores 0 on both, matching the paper's
    treatment of the rank-deficient online regression ("effectively 0
    accuracy", Figure 12).
    """
    if not estimate.feasible:
        return 0.0, 0.0
    return (accuracy(estimate.rates, view.true_rates),
            accuracy(estimate.powers, view.true_powers))


def random_indices(num_configs: int, count: int, seed: int) -> np.ndarray:
    """Sorted distinct random configuration indices."""
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(num_configs, size=count, replace=False))


# ----------------------------------------------------------------------
# Small text-table rendering shared by the benchmark printouts
# ----------------------------------------------------------------------
def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned monospace table (the benches print these)."""
    cells = [[str(h) for h in headers]]
    cells += [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def summarize_means(per_benchmark: Dict[str, Dict[str, float]],
                    approaches: Sequence[str]) -> Dict[str, float]:
    """Mean of each approach's score across benchmarks."""
    return {
        approach: float(np.mean([
            scores[approach] for scores in per_benchmark.values()
        ]))
        for approach in approaches
    }
