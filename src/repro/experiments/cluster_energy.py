"""Co-scheduling experiment: coordinated vs static caps vs race-to-idle.

Three applications share one node under a global power cap.  The
coordinated policy (``"joint"``) divides the cap across the tenants'
learned tradeoff curves; the baselines split it evenly — either running
each tenant's LEO controller inside its static share (``"static"``,
the per-app-static-cap baseline) or racing to idle within it
(``"race"``).  The sweep crosses a grid of caps with the three
policies and reports, per run, total node energy, completed work,
deadline misses, and the conservative per-epoch peak (which the tests
assert never exceeds the cap).

The story mirrors the paper's single-app energy results (Section 6.4)
at node scale: with a loose cap every policy meets its deadlines and
the joint allocator wins on energy outright (it can grant a tenant the
efficient configurations an equal split prices out); as the cap
tightens, the equal split pinches the heavy tenant into missing its
deadline while the joint allocator re-balances and still meets all
three.

Cells — one per ``(cap, policy)`` — fan out across processes with
:class:`~repro.experiments.parallel.ParallelRunner`; every cell seeds
its coordinator from the cell payload alone, so results are bit-equal
for any worker count.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster import POLICIES, ClusterCoordinator, Tenant
from repro.cluster.partition import PartitionedMachine
from repro.experiments import harness
from repro.experiments.harness import ExperimentContext
from repro.experiments.parallel import ParallelRunner, cell_seed

#: Default co-resident benchmarks: one heavy scaler, one throughput
#: monster, one intermediate — heterogeneous enough that an equal split
#: is the wrong answer.
DEFAULT_BENCHMARKS = ("fluidanimate", "kmeans", "blackscholes")

#: Demanded utilization of each tenant's partition capacity.
DEFAULT_UTILIZATIONS = (0.75, 0.25, 0.35)

#: Power caps (W) swept by default: loose, pinching, tight.
DEFAULT_CAPS = (260.0, 245.0, 230.0)

DEFAULT_DEADLINE = 40.0


@dataclasses.dataclass
class ClusterRun:
    """Outcome of one ``(cap, policy)`` cell.

    Attributes:
        cap_watts: The global power cap in force.
        policy: Allocation policy (``"joint"``/``"static"``/``"race"``).
        total_energy: Node energy over the run (J), calibration included.
        work_done: Heartbeats completed across all tenants.
        work_target: Heartbeats demanded across all tenants.
        max_peak_watts: Highest per-epoch conservative node peak.
        cap_respected: Whether every execution epoch stayed under cap.
        reallocations: Allocator invocations over the run.
        missed: Names of tenants that missed their deadline.
        tenant_energy: Per-tenant energy shares (J).
    """

    cap_watts: float
    policy: str
    total_energy: float
    work_done: float
    work_target: float
    max_peak_watts: float
    cap_respected: bool
    reallocations: int
    missed: List[str]
    tenant_energy: Dict[str, float]

    @property
    def energy_per_work(self) -> float:
        """Joules per completed heartbeat — the cross-policy score.

        Missing a deadline forfeits credit for the skipped work, same
        as the Figure 11 normalization.
        """
        return self.total_energy / max(self.work_done, 1e-9)


def tenant_workloads(ctx: ExperimentContext,
                     benchmarks: Sequence[str],
                     utilizations: Sequence[float],
                     deadline: float) -> List[Tuple[str, float]]:
    """Size each tenant's work demand from its partition's capacity.

    Mirrors the paper's utilization protocol (Section 6.4) at partition
    scale: tenant *i* demands ``u_i`` of the maximum work achievable in
    its equal-split partition within the deadline, on the *true*
    contention-derated curves.  Returns ``(name, work)`` pairs.
    """
    if len(benchmarks) != len(utilizations):
        raise ValueError(
            f"{len(benchmarks)} benchmarks but {len(utilizations)} "
            f"utilizations")
    topology = ctx.space.topology
    share, spare = divmod(topology.total_cores, len(benchmarks))
    requests = []
    for i, name in enumerate(benchmarks):
        cores = share + (1 if i < spare else 0)
        requests.append((name, cores, topology.threads_per_core * cores))
    node = PartitionedMachine(ctx.space, requests, seed=ctx.seed)
    for name in benchmarks:
        node.set_profile(name, ctx.profile(name))
    workloads = []
    for name, utilization in zip(benchmarks, utilizations):
        view = node.view(name)
        tspace = node.space_for(name)
        profile = ctx.profile(name)
        max_rate = max(view.true_rate(profile, config)
                       for config in tspace.space)
        workloads.append((name, utilization * max_rate * deadline))
    return workloads


def _cluster_cell(shared, cell) -> ClusterRun:
    """One ``(cap, policy)`` run (a :class:`ParallelRunner` task:
    module-level, seeded entirely by the cell payload)."""
    ctx, workloads, deadline = shared
    cap, policy = cell
    coordinator = ClusterCoordinator(
        ctx.space, cap_watts=cap, policy=policy,
        seed=cell_seed(ctx.seed, "cluster", cap, policy))
    for name, work in workloads:
        view = ctx.dataset.leave_one_out(name)
        coordinator.admit(Tenant(
            name=name, workload=ctx.profile(name), work=work,
            deadline=deadline,
            prior_rates=view.prior_rates, prior_powers=view.prior_powers))
    report = coordinator.run()
    tenants = report.tenants
    return ClusterRun(
        cap_watts=float(cap), policy=policy,
        total_energy=report.node_energy,
        work_done=sum(t.work_done for t in tenants.values()),
        work_target=sum(t.work_target for t in tenants.values()),
        max_peak_watts=(max(report.epoch_peak_watts)
                        if report.epoch_peak_watts else 0.0),
        cap_respected=report.cap_respected,
        reallocations=report.reallocations,
        missed=[name for name, t in tenants.items() if not t.met_deadline],
        tenant_energy={name: t.energy for name, t in tenants.items()})


def cluster_energy_experiment(ctx: Optional[ExperimentContext] = None,
                              benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
                              utilizations: Sequence[float]
                              = DEFAULT_UTILIZATIONS,
                              caps: Sequence[float] = DEFAULT_CAPS,
                              deadline: float = DEFAULT_DEADLINE,
                              policies: Sequence[str] = POLICIES,
                              workers: Optional[int] = None
                              ) -> List[ClusterRun]:
    """Run the cap × policy sweep; one :class:`ClusterRun` per cell.

    ``workers`` fans the cells across processes; results are identical
    for any worker count.
    """
    if ctx is None:
        ctx = harness.default_context(space_kind="cores")
    workloads = tenant_workloads(ctx, benchmarks, utilizations, deadline)
    cells = [(float(cap), policy) for cap in caps for policy in policies]
    runner = ParallelRunner(workers=workers)
    return runner.map(_cluster_cell, cells,
                      shared=(ctx, workloads, deadline))


def summarize_runs(runs: Sequence[ClusterRun]) -> List[List[object]]:
    """Table rows for :func:`repro.experiments.harness.format_table`."""
    return [[run.cap_watts, run.policy, run.total_energy,
             1000.0 * run.energy_per_work, run.max_peak_watts,
             run.cap_respected, ",".join(run.missed) or "-"]
            for run in runs]


def joint_vs_static(runs: Sequence[ClusterRun]
                    ) -> Dict[float, Dict[str, float]]:
    """Per-cap energy of each policy, for the headline comparison."""
    table: Dict[float, Dict[str, float]] = {}
    for run in runs:
        table.setdefault(run.cap_watts, {})[run.policy] = run.total_energy
    return table
