"""Throughput characterization of the estimation service.

The service exists so that many tenants can share one estimation
backend; this experiment measures what that sharing costs.  It stands up
an in-process :class:`~repro.service.server.ServerThread`, drives it
with ``clients`` concurrent workloads of identical ``estimate`` requests
(cheap ``offline`` fits by default, so the numbers characterize the
broker rather than the EM engine), and reports latency percentiles plus
the broker's own admission counters — how many requests coalesced into
shared fits and how many were shed.

The client fan-out reuses the experiment harness's
:class:`~repro.experiments.parallel.ParallelRunner`: each cell is one
client's whole request loop, so ``workers=1`` exercises the serial
path and ``workers=k`` genuinely overlaps client traffic.  Unlike the
figure sweeps, the *measurements* here are wall-clock and therefore not
bit-stable across runs; the structural outputs (request counts, shed
and coalesce totals for a given mix) are deterministic.

:func:`sharded_throughput_experiment` is the fleet-scale variant: the
same client loops, but ~100x the request volume against a
:class:`~repro.shard.ShardFleet`, routed per tenant key over the binary
wire, with the p99 latency reported through an
:class:`~repro.obs.slo.SloTracker` objective — the acceptance number
for the sharding PR.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.estimators.base import EstimationProblem
from repro.experiments.parallel import ParallelRunner, cell_seed
from repro.obs.metrics import Histogram
from repro.obs.slo import SloObjective, SloTracker
from repro.service import (
    EstimationService,
    ServerThread,
    ServiceClient,
    ServiceOverloaded,
    ShardUnavailable,
)

__all__ = [
    "ThroughputResult",
    "ShardedThroughputResult",
    "throughput_experiment",
    "sharded_throughput_experiment",
]


@dataclasses.dataclass
class ThroughputResult:
    """What one load run observed, client-side and broker-side."""

    clients: int
    requests_per_client: int
    completed: int
    shed: int
    wall_seconds: float
    latency: Dict[str, float]  # count/mean/p50/p90/p99 in seconds
    server_counters: Dict[str, float]

    @property
    def requests_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["requests_per_second"] = self.requests_per_second
        return payload


def _make_problem(seed: int, num_configs: int) -> EstimationProblem:
    rng = np.random.default_rng(seed)
    indices = np.arange(0, num_configs, max(1, num_configs // 6))
    return EstimationProblem(
        features=rng.random((num_configs, 3)),
        prior=rng.random((4, num_configs)) + 0.5,
        observed_indices=indices,
        observed_values=rng.random(len(indices)) + 0.5)


def _client_cell(shared: Tuple[str, int, int, int],
                 cell: Tuple[int, int]) -> Dict[str, Any]:
    """One client's request loop; module-level so it pickles by name.

    ``shared`` is (address text, requests per client, num_configs,
    distinct problem count); ``cell`` is (client index, base seed).
    Clients draw problems from a small shared pool so concurrent
    identical requests exist for the broker to coalesce.
    """
    from repro.service import ServiceAddress  # cheap; keeps pickling light

    address_text, requests, num_configs, distinct = shared
    client_index, base_seed = cell
    latencies: List[float] = []
    shed = 0
    rng = np.random.default_rng(cell_seed(base_seed, "order", client_index))
    with ServiceClient(ServiceAddress.parse(address_text),
                       timeout=120.0) as client:
        for i in range(requests):
            problem = _make_problem(
                cell_seed(base_seed, "problem",
                          int(rng.integers(distinct))),
                num_configs)
            started = time.perf_counter()
            try:
                client.estimate(problem, estimator="offline",
                                deadline_s=60.0)
            except ServiceOverloaded:
                shed += 1
                continue
            latencies.append(time.perf_counter() - started)
    return {"client": client_index, "latencies": latencies, "shed": shed}


def throughput_experiment(clients: int = 4,
                          requests_per_client: int = 8,
                          num_configs: int = 32,
                          distinct_problems: int = 3,
                          max_pending: int = 8,
                          max_workers: int = 2,
                          seed: int = 0,
                          workers: Optional[int] = None
                          ) -> ThroughputResult:
    """Drive a local service with concurrent clients and measure it.

    Args:
        clients: Concurrent client loops.
        requests_per_client: ``estimate`` calls each client issues.
        num_configs: Configuration-space size of the synthetic problems.
        distinct_problems: Size of the shared problem pool; smaller
            values create more coalescing opportunities.
        max_pending: The server's admission bound.
        max_workers: The server's handler thread count.
        seed: Base seed for problems and per-client request order.
        workers: Client-side parallelism (``None`` reads
            ``REPRO_WORKERS``); the server always runs in this process.
    """
    service = EstimationService()
    with ServerThread(service, max_pending=max_pending,
                      max_workers=max_workers) as thread:
        shared = (str(thread.bound_address), requests_per_client,
                  num_configs, max(1, distinct_problems))
        cells = [(i, seed) for i in range(clients)]
        runner = ParallelRunner(workers=workers)
        started = time.perf_counter()
        outcomes = runner.map(_client_cell, cells, shared=shared)
        wall = time.perf_counter() - started
        with ServiceClient(thread.bound_address) as probe:
            counters = probe.metrics()["metrics"]["counters"]

    histogram = Histogram("service_client_latency_seconds")
    shed = 0
    for outcome in outcomes:
        shed += outcome["shed"]
        for value in outcome["latencies"]:
            histogram.observe(value)
    snapshot = histogram.summary()
    return ThroughputResult(
        clients=clients,
        requests_per_client=requests_per_client,
        completed=int(snapshot["count"]),
        shed=shed,
        wall_seconds=wall,
        latency={key: snapshot[key]
                 for key in ("count", "mean", "p50", "p90", "p99")},
        server_counters={name: value for name, value in counters.items()
                        if name.startswith("service_")})


# ----------------------------------------------------------------------
# The sharded fleet at scale
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ShardedThroughputResult:
    """What one fleet-scale load run observed.

    ``slo`` is the :class:`~repro.obs.slo.SloTracker` report whose
    ``latency-p99`` objective carries the acceptance number: the p99
    request latency over every completed request in the run.
    """

    shards: int
    clients: int
    requests_per_client: int
    completed: int
    shed: int
    unavailable: int
    wall_seconds: float
    wire_mode: str
    latency: Dict[str, float]
    per_shard_requests: Dict[str, int]
    slo: Dict[str, Any]

    @property
    def total_requests(self) -> int:
        return self.clients * self.requests_per_client

    @property
    def requests_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["total_requests"] = self.total_requests
        payload["requests_per_second"] = self.requests_per_second
        return payload


def _sharded_client_cell(shared: Tuple[Dict[str, str], int, int, int, int,
                                       str],
                         cell: Tuple[int, int]) -> Dict[str, Any]:
    """One client's request loop against the fleet (pickles by name).

    ``shared`` is (address map as text, requests per client,
    num_configs, distinct problem count, tenant count, wire mode);
    ``cell`` is (client index, base seed).  Each request routes as one
    of ``tenants`` tenant keys, so traffic spreads over every shard the
    way a real multi-tenant population would.
    """
    from repro.service import ServiceAddress
    from repro.shard import ShardedServiceClient

    addresses_text, requests, num_configs, distinct, tenants, wire = shared
    client_index, base_seed = cell
    addresses = {shard: ServiceAddress.parse(text)
                 for shard, text in addresses_text.items()}
    latencies: List[float] = []
    shed = unavailable = 0
    rng = np.random.default_rng(cell_seed(base_seed, "order", client_index))
    with ShardedServiceClient(addresses, wire=wire,
                              timeout=120.0) as client:
        for _ in range(requests):
            problem = _make_problem(
                cell_seed(base_seed, "problem",
                          int(rng.integers(distinct))),
                num_configs)
            tenant = f"tenant-{int(rng.integers(tenants))}"
            started = time.perf_counter()
            try:
                client.estimate(problem, estimator="offline",
                                deadline_s=60.0, tenant_key=tenant)
            except ServiceOverloaded:
                shed += 1
                continue
            except ShardUnavailable:
                unavailable += 1
                continue
            latencies.append(time.perf_counter() - started)
    return {"client": client_index, "latencies": latencies,
            "shed": shed, "unavailable": unavailable}


def sharded_throughput_experiment(shards: int = 4,
                                  clients: int = 8,
                                  requests_per_client: int = 400,
                                  num_configs: int = 32,
                                  distinct_problems: int = 3,
                                  tenants: int = 24,
                                  max_pending: int = 32,
                                  max_workers: int = 2,
                                  replicas_per_shard: int = 1,
                                  seed: int = 0,
                                  wire: str = "auto",
                                  latency_target_s: float = 2.0,
                                  workers: Optional[int] = None
                                  ) -> ShardedThroughputResult:
    """Drive a shard fleet at ~100x the single-broker experiment.

    The defaults issue ``8 x 400 = 3200`` requests — 100x the
    single-broker run's ``4 x 8 = 32`` — across a 4-shard fleet, with
    every completed latency fed to an :class:`SloTracker` whose p99
    objective (``latency_target_s``) is the acceptance bound the bench
    gate checks.

    Args:
        shards: Fleet width.
        clients: Concurrent client loops.
        requests_per_client: ``estimate`` calls each client issues.
        num_configs: Configuration-space size of the synthetic problems.
        distinct_problems: Shared problem pool size (coalescing fodder).
        tenants: Distinct tenant keys the traffic routes as.
        max_pending: Per-shard admission bound.
        max_workers: Per-shard handler threads.
        replicas_per_shard: Registry read replicas per shard.
        seed: Base seed for problems, tenants, and request order.
        wire: Wire mode for the clients (``"auto"`` negotiates binary).
        latency_target_s: The p99 objective bound in the SLO report.
        workers: Client-side parallelism (``None`` reads
            ``REPRO_WORKERS``).
    """
    from repro.shard import ShardFleet

    with ShardFleet(num_shards=shards, max_pending=max_pending,
                    max_workers=max_workers,
                    replicas_per_shard=replicas_per_shard) as fleet:
        addresses_text = {shard: str(address)
                          for shard, address in fleet.addresses.items()}
        shared = (addresses_text, requests_per_client, num_configs,
                  max(1, distinct_problems), max(1, tenants), wire)
        cells = [(i, seed) for i in range(clients)]
        runner = ParallelRunner(workers=workers)
        started = time.perf_counter()
        outcomes = runner.map(_sharded_client_cell, cells, shared=shared)
        wall = time.perf_counter() - started
        per_shard: Dict[str, int] = {}
        wire_mode = "unknown"
        for shard, address in fleet.addresses.items():
            with ServiceClient(address, wire=wire) as probe:
                counters = probe.metrics()["metrics"]["counters"]
                if probe.wire_mode is not None:
                    wire_mode = probe.wire_mode
            per_shard[shard] = int(
                counters.get("service_requests_total", 0))

    histogram = Histogram("sharded_client_latency_seconds")
    slo = SloTracker(objectives=(
        SloObjective(name="latency-p99", kind="latency",
                     target=latency_target_s, percentile=99.0),),
        capacity=clients * requests_per_client)
    shed = unavailable = 0
    tick = 0
    for outcome in outcomes:
        shed += outcome["shed"]
        unavailable += outcome["unavailable"]
        for value in outcome["latencies"]:
            histogram.observe(value)
            slo.record_latency(value, now=tick)
            tick += 1
    snapshot = histogram.summary()
    return ShardedThroughputResult(
        shards=shards,
        clients=clients,
        requests_per_client=requests_per_client,
        completed=int(snapshot["count"]),
        shed=shed,
        unavailable=unavailable,
        wall_seconds=wall,
        wire_mode=wire_mode,
        latency={key: snapshot[key]
                 for key in ("count", "mean", "p50", "p90", "p99")},
        per_shard_requests=per_shard,
        slo=slo.report())
