"""The motivational example: Figure 1 (Section 2).

Kmeans on the 32-configuration core-allocation space, observing only six
uniformly spaced allocations (5, 10, ..., 30 logical CPUs).  Figure 1a is
the performance estimate vs cores, 1b the power estimate, and 1c the
energy consumed across utilization levels.  The headline behaviours:

* kmeans truly peaks at 8 cores and degrades sharply beyond;
* the offline mean predicts the suite-wide trend (peak near full
  allocation);
* the online polynomial learns that performance degrades but misplaces
  the peak;
* LEO recognizes the early-peak pattern from a previously seen
  application and places the peak correctly.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.estimators.registry import create_estimator
from repro.experiments import harness
from repro.experiments.harness import (
    APPROACHES,
    DEADLINE_SECONDS,
    ExperimentContext,
    estimate_curves,
    sample_target,
)
from repro.optimize.lp import EnergyMinimizer
from repro.runtime.controller import RuntimeController, TradeoffEstimate
from repro.runtime.race_to_idle import RaceToIdleController
from repro.runtime.sampling import RandomSampler

#: The six observed logical-CPU counts of Section 2 (as 0-based indices).
OBSERVED_CORES = (5, 10, 15, 20, 25, 30)


@dataclasses.dataclass
class MotivationResult:
    """Figure 1's data.

    Attributes:
        cores: 1..32, the x-axis of Figures 1a/1b.
        true_rates / true_powers: Exhaustive-search truth.
        est_rates / est_powers: Per-approach estimated curves.
        utilizations: X-axis of Figure 1c.
        energy: Per-approach (plus "optimal" and "race-to-idle")
            measured energy per utilization.
    """

    cores: np.ndarray
    true_rates: np.ndarray
    true_powers: np.ndarray
    est_rates: Dict[str, np.ndarray]
    est_powers: Dict[str, np.ndarray]
    utilizations: np.ndarray
    energy: Dict[str, List[float]]

    def estimated_peak(self, approach: str) -> int:
        """Estimated best core count (1-based)."""
        return int(np.argmax(self.est_rates[approach])) + 1

    def true_peak(self) -> int:
        """Ground-truth best core count (1-based)."""
        return int(np.argmax(self.true_rates)) + 1


def motivation_experiment(ctx: Optional[ExperimentContext] = None,
                          benchmark: str = "kmeans",
                          num_utilizations: int = 12
                          ) -> MotivationResult:
    """Reproduce Figure 1 on the cores-only space."""
    if ctx is None:
        ctx = harness.default_context(space_kind="cores")
    view = ctx.dataset.leave_one_out(benchmark)
    truth_view = ctx.truth.leave_one_out(benchmark)
    profile = ctx.profile(benchmark)
    idle = ctx.idle_power()

    indices = np.array([c - 1 for c in OBSERVED_CORES])
    rate_obs, power_obs = sample_target(ctx, profile, indices,
                                        seed_offset=ctx.seed + 5)

    est_rates: Dict[str, np.ndarray] = {}
    est_powers: Dict[str, np.ndarray] = {}
    estimates: Dict[str, TradeoffEstimate] = {}
    for approach in APPROACHES:
        est = estimate_curves(ctx, view, indices, rate_obs, power_obs,
                              approach)
        if not est.feasible:
            continue
        est_rates[approach] = est.rates
        est_powers[approach] = est.powers
        estimates[approach] = TradeoffEstimate(
            rates=est.rates, powers=est.powers, estimator_name=approach)

    # Figure 1c: measured energy across utilization demands.
    utilizations = np.linspace(0.1, 1.0, num_utilizations)
    true_max = float(truth_view.true_rates.max())
    optimal = EnergyMinimizer(truth_view.true_rates, truth_view.true_powers,
                              idle)
    machine = ctx.machine(seed_offset=17)
    energy: Dict[str, List[float]] = {a: [] for a in estimates}
    energy["optimal"] = []
    energy["race-to-idle"] = []
    for utilization in utilizations:
        work = utilization * true_max * DEADLINE_SECONDS
        energy["optimal"].append(optimal.min_energy(work, DEADLINE_SECONDS))
        for approach, estimate in estimates.items():
            controller = RuntimeController(
                machine=machine, space=ctx.space,
                estimator=create_estimator(approach),
                prior_rates=view.prior_rates, prior_powers=view.prior_powers,
                sampler=RandomSampler(seed=ctx.seed + 17))
            report = controller.run(profile, work, DEADLINE_SECONDS, estimate)
            energy[approach].append(report.energy)
        racer = RaceToIdleController(machine, ctx.space)
        energy["race-to-idle"].append(
            racer.run(profile, work, DEADLINE_SECONDS).energy)

    return MotivationResult(
        cores=np.arange(1, len(ctx.space) + 1),
        true_rates=truth_view.true_rates,
        true_powers=truth_view.true_powers,
        est_rates=est_rates, est_powers=est_powers,
        utilizations=utilizations, energy=energy,
    )
