"""Noise-robustness study: accuracy vs measurement noise (extension).

The paper's samples come from 1 s windows on a real machine; ours carry
a configurable relative noise.  This experiment sweeps that noise level
and measures each approach's estimation accuracy, quantifying a
robustness property the paper asserts qualitatively: the hierarchy's
shrinkage ("penalizes large variations ... reducing the risk of the
model", Section 5.2) should make LEO degrade gracefully, while the
online polynomial — which has no prior to lean on — chases the noise.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.accuracy import accuracy
from repro.estimators.base import (
    EstimationProblem,
    InsufficientSamplesError,
    normalize_problem,
)
from repro.estimators.registry import create_estimator
from repro.experiments import harness
from repro.experiments.harness import APPROACHES, ExperimentContext


@dataclasses.dataclass
class NoiseResult:
    """Mean performance accuracy per noise level and approach."""

    noise_levels: tuple
    perf: Dict[str, List[float]]
    benchmarks: tuple


def noise_experiment(ctx: Optional[ExperimentContext] = None,
                     noise_levels: Sequence[float] = (0.0, 0.01, 0.05,
                                                      0.10, 0.20),
                     benchmarks: Sequence[str] = ("kmeans", "swish",
                                                  "x264", "bfs"),
                     sample_count: int = 20,
                     trials: int = 2) -> NoiseResult:
    """Sweep sample noise; priors stay at their collected noise level.

    Noise is injected directly on the sampled values (multiplicative
    Gaussian), emulating shorter/messier measurement windows without
    rebuilding the offline dataset.
    """
    if ctx is None:
        ctx = harness.default_context()
    if any(level < 0 for level in noise_levels):
        raise ValueError("noise levels must be non-negative")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")

    perf: Dict[str, List[float]] = {a: [] for a in APPROACHES}
    for level in noise_levels:
        scores: Dict[str, List[float]] = {a: [] for a in APPROACHES}
        for b, name in enumerate(benchmarks):
            view = ctx.dataset.leave_one_out(name)
            truth = ctx.truth.leave_one_out(name).true_rates
            for trial in range(trials):
                seed = ctx.seed + 5000 + 97 * b + trial
                rng = np.random.default_rng(seed)
                indices = harness.random_indices(
                    len(ctx.space), sample_count, seed)
                clean = truth[indices]
                noisy = clean * np.clip(
                    rng.normal(1.0, level, clean.size), 0.05, None)
                problem = EstimationProblem(
                    features=ctx.features, prior=view.prior_rates,
                    observed_indices=indices, observed_values=noisy)
                normalized, scale = normalize_problem(problem)
                for approach in APPROACHES:
                    try:
                        estimate = create_estimator(approach).estimate(
                            normalized) * scale
                        scores[approach].append(accuracy(estimate, truth))
                    except InsufficientSamplesError:
                        scores[approach].append(0.0)
        for approach in APPROACHES:
            perf[approach].append(float(np.mean(scores[approach])))

    return NoiseResult(noise_levels=tuple(noise_levels), perf=perf,
                       benchmarks=tuple(benchmarks))
