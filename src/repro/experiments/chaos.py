"""Chaos runs: one benchmark workload under a named fault plan.

The acceptance experiment for the resilience layer (docs/RESILIENCE.md):
drive a :class:`~repro.runtime.controller.RuntimeController` through
several back-to-back deadline windows — recalibrating at every window
boundary, the long-running-application shape — twice with identical
seeds.  The first pass is fault-free; the second runs under a shipped
:mod:`~repro.faults.plans` plan.  The report answers the questions the
issue poses:

* **survival** — did the controller finish every window without an
  unhandled exception (degrading instead of crashing)?
* **violations** — how many windows missed their work target under
  faults, against the fault-free count?
* **energy overhead** — what did the faults cost, as a ratio of the
  fault-free baseline energy?
* **recovery** — once the plan's faults cleared (the default plan's
  horizon is the first minute of simulated time), did the degradation
  ladder promote back to the configured estimator?

Everything is deterministic given ``(benchmark, plan, seed)``: both
passes replay bit-identically, which is what lets the CI chaos-smoke
job assert exact survival and recovery on a fixed seed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.errors import InsufficientSamplesError
from repro.experiments.harness import ExperimentContext, default_context
from repro.faults import FaultInjector, use
from repro.faults.plans import get_plan

__all__ = ["ChaosReport", "chaos_run"]


@dataclasses.dataclass
class ChaosReport:
    """Outcome of one chaos run against its fault-free baseline.

    Attributes:
        benchmark: The suite application driven.
        plan: The fault plan name.
        seed: Seed shared by the plan, sampler, and machine.
        windows: Deadline windows requested per pass.
        survived: Whether the faulted pass finished every window without
            an unhandled exception.
        error: ``"{type}: {message}"`` of the escaping exception when
            ``survived`` is false, else ``""``.
        windows_run: Windows the faulted pass completed (== ``windows``
            when it survived).
        baseline_energy: Joules over all windows, fault-free.
        fault_energy: Joules over the completed faulted windows.
        energy_overhead: ``fault_energy / baseline_energy - 1`` (only
            meaningful when the faulted pass survived all windows).
        baseline_violations: Fault-free windows that missed the target.
        violations: Faulted windows that missed the target.
        calibration_failures: Window boundaries where calibration raised
            :class:`~repro.errors.InsufficientSamplesError` and the
            previous estimate was reused.
        demotions: Ladder demotions recorded during the faulted pass.
        promotions: Ladder promotions recorded during the faulted pass.
        final_tier: Estimator tier trusted when the pass ended.
        recovered: Whether the pass ended back at the configured
            estimator (tier 0) — never having degraded also counts.
        fault_counts: Fault kind → times the injector fired it.
    """

    benchmark: str
    plan: str
    seed: int
    windows: int
    survived: bool
    error: str
    windows_run: int
    baseline_energy: float
    fault_energy: float
    energy_overhead: float
    baseline_violations: int
    violations: int
    calibration_failures: int
    demotions: int
    promotions: int
    final_tier: str
    recovered: bool
    fault_counts: Dict[str, int]


def _build_controller(ctx: ExperimentContext, benchmark: str, seed: int,
                      estimator: str, promotion_cooldown: int):
    from repro.estimators.registry import create_estimator
    from repro.runtime.controller import RuntimeController
    from repro.runtime.sampling import RandomSampler

    view = ctx.dataset.leave_one_out(benchmark)
    return RuntimeController(
        machine=ctx.machine(seed_offset=seed + 1),
        space=ctx.space,
        estimator=create_estimator(estimator),
        prior_rates=view.prior_rates,
        prior_powers=view.prior_powers,
        sampler=RandomSampler(seed=seed),
        promotion_cooldown=promotion_cooldown,
    )


def _drive(controller, profile, work: float, deadline: float,
           windows: int):
    """Calibrate-and-run ``windows`` back-to-back deadline windows.

    Returns ``(energy, violations, calibration_failures, windows_run)``.
    A calibration that loses every sample to sensor dropout reuses the
    previous window's estimate (the keep-previous policy the rest of
    the runtime uses); only a first-window total loss propagates.
    """
    energy = 0.0
    violations = 0
    calibration_failures = 0
    estimate = None
    for index in range(windows):
        try:
            estimate = controller.calibrate(profile)
        except InsufficientSamplesError:
            calibration_failures += 1
            if estimate is None:
                raise
        report = controller.run(profile, work, deadline, estimate,
                                adapt=True)
        energy += report.energy
        if not report.met_target:
            violations += 1
    return energy, violations, calibration_failures, windows


def chaos_run(ctx: Optional[ExperimentContext] = None,
              benchmark: str = "kmeans", plan: str = "default",
              seed: int = 0, windows: int = 4, utilization: float = 0.5,
              deadline: float = 25.0, estimator: str = "leo",
              promotion_cooldown: int = 4) -> ChaosReport:
    """Run ``benchmark`` under ``plan`` and report survival and cost.

    Args:
        ctx: Experiment context; default is the cached ``cores`` space
            context (32 configurations keeps both passes fast).
        benchmark: Suite application to drive.
        plan: Shipped fault plan name (see
            :func:`repro.faults.plans.plan_names`).
        seed: Shared seed for the plan, sampler, and machine.
        windows: Back-to-back deadline windows per pass.  With the
            defaults the simulated clock passes the default plan's
            fault horizon early in the run, so the tail windows
            exercise recovery and promotion.
        utilization: Demanded fraction of the application's peak rate.
        deadline: Seconds per window.
        estimator: Configured (tier-0) estimator name.
        promotion_cooldown: Healthy quanta before a promotion probe.
    """
    if not 0 < utilization <= 1:
        raise ValueError(
            f"utilization must be in (0, 1], got {utilization}")
    if windows < 1:
        raise ValueError(f"windows must be >= 1, got {windows}")
    if ctx is None:
        ctx = default_context(space_kind="cores", seed=seed)
    profile = ctx.profile(benchmark)
    truth = ctx.truth.leave_one_out(benchmark)
    work = utilization * float(truth.true_rates.max()) * deadline

    # Fault-free baseline: identical controller, identical seeds.
    baseline = _build_controller(ctx, benchmark, seed, estimator,
                                 promotion_cooldown)
    baseline_energy, baseline_violations, _, _ = _drive(
        baseline, profile, work, deadline, windows)

    # The faulted pass.  Any escaping exception is the headline result
    # (survived=False), not a crash of the experiment itself.
    controller = _build_controller(ctx, benchmark, seed, estimator,
                                   promotion_cooldown)
    injector = FaultInjector(get_plan(plan, seed=seed))
    survived = True
    error = ""
    fault_energy = 0.0
    violations = 0
    calibration_failures = 0
    windows_run = 0
    with use(injector):
        try:
            (fault_energy, violations, calibration_failures,
             windows_run) = _drive(controller, profile, work, deadline,
                                   windows)
        except Exception as exc:  # noqa: BLE001 — survival is the result
            survived = False
            error = f"{type(exc).__name__}: {exc}"

    ladder = controller._ladder
    overhead = (fault_energy / baseline_energy - 1.0
                if baseline_energy > 0 else 0.0)
    return ChaosReport(
        benchmark=benchmark, plan=plan, seed=seed, windows=windows,
        survived=survived, error=error, windows_run=windows_run,
        baseline_energy=baseline_energy, fault_energy=fault_energy,
        energy_overhead=overhead,
        baseline_violations=baseline_violations, violations=violations,
        calibration_failures=calibration_failures,
        demotions=ladder.demotions if ladder is not None else 0,
        promotions=ladder.promotions if ladder is not None else 0,
        final_tier=(ladder.current.name if ladder is not None
                    else controller.estimator.name),
        recovered=ladder is None or ladder.tier_index == 0,
        fault_counts=dict(injector.fired_counts),
    )
