"""Sample-size sensitivity: Figure 12.

The paper varies the number of sampled configurations and plots the
average estimation accuracy across all benchmarks.  Two structural
features must reproduce:

* the online baseline's design matrix is rank deficient below its 15
  coefficients, so it scores "effectively 0 accuracy" there;
* "with 0 samples, LEO behaves as the offline method and its accuracy
  increases with the sample size until it quickly reaches near optimal
  accuracy."

Zero-sample LEO is therefore reported as the offline estimator's score
(the model reduces to the prior mean when the target contributes no
observations).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments import harness
from repro.experiments.harness import (
    ExperimentContext,
    accuracy_scores,
    estimate_curves,
    random_indices,
    sample_target,
)
from repro.experiments.parallel import ParallelRunner

#: Default sample-size grid; 15 is the online baseline's cliff.
DEFAULT_SIZES: Tuple[int, ...] = (0, 2, 5, 10, 14, 15, 20, 30, 40)

#: Approaches swept by the sensitivity study.
SWEEP_APPROACHES: Tuple[str, ...] = ("leo", "online")


@dataclasses.dataclass
class SensitivityResult:
    """Mean accuracy (over benchmarks) per sample size and approach.

    ``perf[approach]`` and ``power[approach]`` align with ``sizes``.
    """

    sizes: Tuple[int, ...]
    perf: Dict[str, List[float]]
    power: Dict[str, List[float]]
    offline_perf: float
    offline_power: float


def _sensitivity_cell(shared, cell):
    """One (size, benchmark) unit of the Figure 12 sweep, all trials.

    Module-level so :class:`ParallelRunner` can ship it across
    processes; seeds depend only on the payload.
    """
    ctx, trials = shared
    size, b, name = cell
    view = ctx.dataset.leave_one_out(name)
    truth_view = ctx.truth.leave_one_out(name)
    per_trial = []
    for trial in range(trials):
        seed = ctx.seed + 100_000 + 997 * b + 31 * trial + size
        indices = random_indices(len(ctx.space), size, seed)
        rate_obs, power_obs = sample_target(
            ctx, ctx.profile(name), indices, seed_offset=seed % 4099)
        scores = {}
        for approach in SWEEP_APPROACHES:
            est = estimate_curves(ctx, view, indices,
                                  rate_obs, power_obs, approach)
            scores[approach] = accuracy_scores(est, truth_view)
        per_trial.append(scores)
    return per_trial


def sensitivity_experiment(ctx: Optional[ExperimentContext] = None,
                           sizes: Sequence[int] = DEFAULT_SIZES,
                           benchmarks: Optional[Sequence[str]] = None,
                           trials: int = 1,
                           workers: Optional[int] = None
                           ) -> SensitivityResult:
    """Run the Figure 12 sweep.

    ``workers`` fans the (size, benchmark) cells across processes via
    :class:`ParallelRunner`; results are identical for any count.
    """
    if ctx is None:
        ctx = harness.default_context()
    if any(size < 0 for size in sizes):
        raise ValueError("sample sizes must be non-negative")
    names = list(benchmarks) if benchmarks is not None else ctx.benchmark_names

    perf: Dict[str, List[float]] = {a: [] for a in SWEEP_APPROACHES}
    power: Dict[str, List[float]] = {a: [] for a in SWEEP_APPROACHES}
    offline_perf_scores: List[float] = []
    offline_power_scores: List[float] = []

    # Offline reference (sample-size independent) and per-size sweeps.
    views = {name: ctx.dataset.leave_one_out(name) for name in names}
    truth_views = {name: ctx.truth.leave_one_out(name) for name in names}
    anchor_indices = {
        name: random_indices(len(ctx.space), 20, ctx.seed + 40 + i)
        for i, name in enumerate(names)
    }
    for name in names:
        idx = anchor_indices[name]
        rate_obs, power_obs = sample_target(ctx, ctx.profile(name), idx,
                                            seed_offset=ctx.seed + 41)
        est = estimate_curves(ctx, views[name], idx, rate_obs, power_obs,
                              "offline")
        pa, wa = accuracy_scores(est, truth_views[name])
        offline_perf_scores.append(pa)
        offline_power_scores.append(wa)
    offline_perf = float(np.mean(offline_perf_scores))
    offline_power = float(np.mean(offline_power_scores))

    # Fan the nonzero (size, benchmark) cells out; size 0 is analytic
    # (LEO degenerates to offline; online cannot run) and stays local.
    cells = [(size, b, name) for size in sizes if size > 0
             for b, name in enumerate(names)]
    runner = ParallelRunner(workers=workers)
    cell_results = dict(zip(
        [(size, b) for size, b, _ in cells],
        runner.map(_sensitivity_cell, cells, shared=(ctx, trials))))

    for size in sizes:
        per_perf = {a: [] for a in SWEEP_APPROACHES}
        per_power = {a: [] for a in SWEEP_APPROACHES}
        for b, name in enumerate(names):
            if size == 0:
                for _ in range(trials):
                    per_perf["leo"].append(offline_perf_scores[b])
                    per_power["leo"].append(offline_power_scores[b])
                    per_perf["online"].append(0.0)
                    per_power["online"].append(0.0)
                continue
            for scores in cell_results[(size, b)]:
                for approach in SWEEP_APPROACHES:
                    pa, wa = scores[approach]
                    per_perf[approach].append(pa)
                    per_power[approach].append(wa)
        for approach in SWEEP_APPROACHES:
            perf[approach].append(float(np.mean(per_perf[approach])))
            power[approach].append(float(np.mean(per_power[approach])))

    return SensitivityResult(sizes=tuple(sizes), perf=perf, power=power,
                             offline_perf=offline_perf,
                             offline_power=offline_power)
