"""Thermal-throttling adaptation study (extension).

With the optional package thermal model enabled
(:class:`repro.platform.thermal.ThermalModel`), sustained high-power
operation derates frequency — the per-configuration curves silently
change mid-run, exactly like a workload phase change.  This experiment
runs a hot, scalable workload under a demanding constraint and compares
the adaptive runtime (phase detector + re-calibration) against the
static one (initial estimates only) on the same thermal machine.

Expected shape: throttling occurs; the adaptive runtime notices (at
least one re-estimation) and both runtimes keep meeting the demand via
closed-loop feedback, with the adaptive runtime's model matching the
derated machine afterwards.
"""

from __future__ import annotations

import dataclasses
from typing import Optional


from repro.estimators.registry import create_estimator
from repro.experiments import harness
from repro.experiments.harness import ExperimentContext
from repro.platform.machine import Machine
from repro.platform.thermal import ThermalModel
from repro.runtime.controller import RunReport, RuntimeController
from repro.runtime.sampling import RandomSampler


@dataclasses.dataclass
class ThermalStudyResult:
    """Outcome of the adaptive-vs-static comparison on a hot machine.

    Attributes:
        adaptive: Report of the run with phase detection enabled.
        static: Report of the run without adaptation.
        throttled: Whether the machine's thermal model ever throttled.
        unthrottled_max_rate: The demand reference (cool-machine peak).
    """

    adaptive: RunReport
    static: RunReport
    throttled: bool
    unthrottled_max_rate: float


def _hot_machine(ctx: ExperimentContext, seed_offset: int,
                 throttle_factor: float) -> Machine:
    # High junction-to-ambient resistance and a low resume point: a
    # poorly cooled box where even mid-power configurations keep the
    # package hot, so throttling persists through the controlled run.
    thermal = ThermalModel(throttle_celsius=75.0, resume_celsius=55.0,
                           resistance=0.55, time_constant=15.0,
                           throttle_factor=throttle_factor)
    return Machine(ctx.space.topology, seed=ctx.seed + seed_offset,
                   thermal=thermal)


def thermal_experiment(ctx: Optional[ExperimentContext] = None,
                       benchmark: str = "swaptions",
                       utilization: float = 0.45,
                       deadline: float = 120.0,
                       throttle_factor: float = 0.6) -> ThermalStudyResult:
    """Run the hot-machine comparison.

    ``utilization`` is relative to the *unthrottled* peak; it must stay
    feasible under the throttle factor for the comparison to be about
    energy rather than feasibility.
    """
    if ctx is None:
        ctx = harness.default_context()
    if not 0 < utilization < throttle_factor:
        raise ValueError(
            "utilization must stay below throttle_factor so the demand "
            f"remains feasible when throttled; got {utilization} vs "
            f"{throttle_factor}"
        )
    profile = ctx.profile(benchmark)
    view = ctx.dataset.leave_one_out(benchmark)
    cool = ctx.machine()
    unthrottled_max = max(cool.true_rate(profile, c) for c in ctx.space)
    work = utilization * unthrottled_max * deadline

    reports = {}
    throttled = False
    for label, adapt in (("adaptive", True), ("static", False)):
        machine = _hot_machine(ctx, seed_offset=40 if adapt else 41,
                               throttle_factor=throttle_factor)
        controller = RuntimeController(
            machine=machine, space=ctx.space,
            estimator=create_estimator("leo"),
            prior_rates=view.prior_rates, prior_powers=view.prior_powers,
            sampler=RandomSampler(ctx.seed + 7))
        # Calibrate cool (the model the machine will drift away from):
        # the thermal state is suspended during calibration so the
        # fitted curves describe the unthrottled machine, then a burst
        # at full allocation heats the package past its throttle point.
        thermal = machine.thermal
        machine.thermal = None
        estimate = controller.calibrate(profile)
        machine.thermal = thermal
        machine.load(profile)
        machine.apply(ctx.space[len(ctx.space) - 1])
        for _ in range(12):
            machine.run_for(5.0)
        throttled = throttled or machine.thermal.throttled
        reports[label] = controller.run(profile, work, deadline, estimate,
                                        adapt=adapt)

    return ThermalStudyResult(
        adaptive=reports["adaptive"], static=reports["static"],
        throttled=throttled,
        unthrottled_max_rate=float(unthrottled_max),
    )
