"""Hetero-aware energy minimization vs. a homogeneous-ignorant baseline.

The headline heterogeneous experiment: the 25-workload suite runs on a
big.LITTLE-style node with an offload device
(:data:`~repro.platform.hetero.BIG_LITTLE`), with prior applications
observed on the paper's *homogeneous* Xeon platform.  Two estimate→
Pareto→LP pipelines compete at a fixed deadline and utilization:

* ``"hetero"`` — sees the full heterogeneous configuration space
  (per-cluster core counts, per-cluster DVFS, offload) and uses the
  cross-platform :class:`~repro.core.transfer.TransferPrior`: Xeon
  curves aligned onto the hetero space, shrunk by platform similarity,
  with per-platform covariance blocks feeding
  :class:`~repro.estimators.transfer.TransferAwareLEO`.
* ``"homogeneous"`` — the ignorant baseline: treats the node as a small
  homogeneous machine (big cluster only, no LITTLE cores, no offload)
  and pools the Xeon priors naively.

Both modes estimate from the same number of noisy samples, solve the
same Eq. 1 LP for the same work target (sized inside the shared big-only
subspace so both can meet it), and are priced on the *true* hetero
curves.  The headline figure is per-benchmark energy savings of the
hetero-aware pipeline; since the baseline's subspace is a strict subset
of the hetero space, the savings are structural, not a tuning artifact.

A second, cluster-layer sweep (:func:`hetero_cap_allocation`) partitions
the node per cluster and lets :class:`~repro.cluster.PowerCapAllocator`
water-fill a global cap across tenants whose Pareto frontiers come from
*different* core types — the heterogeneous-node co-scheduling story.

Cells — one per ``(benchmark, mode)`` — fan out under
:class:`~repro.experiments.parallel.ParallelRunner`; every cell seeds
its machine and sample draw from the cell payload alone, so results are
bit-equal for any ``--workers`` count.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.allocator import (
    PowerCapAllocator,
    StaticAllocator,
    TenantDemand,
)
from repro.cluster.partition import partition_space
from repro.core.transfer import TransferPrior, map_indices
from repro.errors import InfeasibleConstraintError
from repro.estimators import (
    EstimationProblem,
    LEOEstimator,
    TransferAwareLEO,
    normalize_problem,
)
from repro.experiments import harness
from repro.experiments.harness import random_indices
from repro.experiments.parallel import ParallelRunner, cell_seed
from repro.optimize import EnergyMinimizer
from repro.platform.config_space import ConfigurationSpace
from repro.platform.hetero import (
    BIG_LITTLE,
    HeteroMachine,
    HeteroTopology,
    cluster_indices,
    hetero_space,
)
from repro.platform.topology import PAPER_TOPOLOGY
from repro.workloads.suite import paper_suite
from repro.workloads.traces import OfflineDataset

MODES = ("hetero", "homogeneous")

DEFAULT_DEADLINE = 30.0
DEFAULT_UTILIZATION = 0.7
#: Calibration budget per cell.  48 fully observes the baseline's
#: big-only subspace (40 configurations) — the homogeneous pipeline is
#: effectively an oracle for its own space, so any hetero win is
#: structural, not a sampling artifact.
DEFAULT_SAMPLES = 48
DEFAULT_PSI_BLEND = 0.35

#: Ladder decimation of the default experiment space: five of the big
#: cluster's eight speed settings, three of the LITTLE's four.  Keeps
#: the estimate path tractable while the space stays past the paper's
#: 1024 (the undecimated ``hetero_space(BIG_LITTLE)`` has 2240).
DEFAULT_SPEED_INDICES = ((0, 2, 4, 6, 7), (0, 2, 3))


@dataclasses.dataclass
class HeteroRun:
    """Outcome of one ``(benchmark, mode)`` cell.

    Attributes:
        benchmark: Workload name.
        mode: ``"hetero"`` or ``"homogeneous"``.
        energy: True energy (J) of the estimated-optimal schedule over
            the deadline window, idle time included.
        work_target: Heartbeats demanded.
        work_done: Heartbeats the schedule truly completes.
        met_deadline: Whether the schedule covers the work target.
        space_size: Configurations visible to this mode's estimator.
    """

    benchmark: str
    mode: str
    energy: float
    work_target: float
    work_done: float
    met_deadline: bool
    space_size: int

    @property
    def work_fraction(self) -> float:
        """Completed fraction of the demand, capped at 1 (no credit
        for overshoot) — the Figure 11 charging convention."""
        return min(max(self.work_done / self.work_target, 1e-6), 1.0)

    @property
    def effective_energy(self) -> float:
        """Energy charged per unit of completed work: ``E / fraction``.

        Matches :mod:`repro.experiments.energy` — an approach that
        misses its demand is charged as if it had to make the work up.
        """
        return self.energy / self.work_fraction


@dataclasses.dataclass
class HeteroSetup:
    """Cell-independent precomputation shipped to the workers.

    Carries the *paper platform's* offline dataset — the source of the
    transfer priors — alongside the hetero spaces and per-benchmark
    work targets."""

    topology: HeteroTopology
    space: ConfigurationSpace
    big_space: ConfigurationSpace
    paper_space: ConfigurationSpace
    dataset: OfflineDataset
    work_targets: Dict[str, float]
    deadline: float
    samples: int
    psi_blend: float
    seed: int


def build_setup(topology: HeteroTopology = BIG_LITTLE,
                speed_indices: Optional[Sequence[Optional[Sequence[int]]]]
                = DEFAULT_SPEED_INDICES,
                deadline: float = DEFAULT_DEADLINE,
                utilization: float = DEFAULT_UTILIZATION,
                samples: int = DEFAULT_SAMPLES,
                psi_blend: float = DEFAULT_PSI_BLEND,
                seed: int = 0,
                benchmarks: Optional[Sequence[str]] = None) -> HeteroSetup:
    """Precompute the spaces and per-benchmark work targets.

    Work is sized inside the big-only subspace — achievable by both
    modes — as ``utilization * true_max_rate * deadline``, mirroring
    the paper's utilization protocol (Section 6.4).
    """
    space = hetero_space(topology, speed_indices)
    primary = topology.clusters[0].name
    big_space = space.subspace(cluster_indices(space, topology, primary))
    ctx = harness.default_context(space_kind="paper", seed=seed)
    machine = HeteroMachine(topology, seed=seed)
    suite = {p.name: p for p in paper_suite()}
    names = list(benchmarks) if benchmarks is not None else list(suite)
    targets: Dict[str, float] = {}
    for name in names:
        profile = suite[name]
        max_rate = max(machine.true_rate(profile, config)
                       for config in big_space)
        targets[name] = utilization * max_rate * deadline
    return HeteroSetup(topology=topology, space=space, big_space=big_space,
                       paper_space=ctx.space, dataset=ctx.dataset,
                       work_targets=targets, deadline=deadline,
                       samples=samples, psi_blend=psi_blend, seed=seed)


def _estimate_curve(space: ConfigurationSpace, prior: np.ndarray,
                    indices: np.ndarray, observed: np.ndarray,
                    estimator) -> np.ndarray:
    """One absolute curve through the normalize → estimate path."""
    problem = EstimationProblem(
        features=space.feature_matrix(), prior=prior,
        observed_indices=indices, observed_values=observed)
    normalized, scale = normalize_problem(problem)
    curve = estimator.estimate(normalized) * scale
    floor = 1e-3 * float(np.min(observed))
    return np.maximum(curve, max(floor, 1e-12))


def _hetero_cell(shared: HeteroSetup, cell: Tuple[str, str]) -> HeteroRun:
    """One ``(benchmark, mode)`` run (module-level for ParallelRunner;
    seeded entirely by the cell payload)."""
    setup = shared
    benchmark, mode = cell
    profile = {p.name: p for p in paper_suite()}[benchmark]
    view = setup.dataset.leave_one_out(benchmark)
    paper_space = setup.paper_space

    mode_space = setup.space if mode == "hetero" else setup.big_space
    if mode == "hetero":
        transfer = TransferPrior()
        transfer.add_platform(PAPER_TOPOLOGY, paper_space,
                              view.prior_rates, view.prior_powers,
                              names=view.prior_names)
        transferred = transfer.build(setup.topology, mode_space)
        prior_rates, prior_powers = transferred.rates, transferred.powers
        def make_estimator():
            return TransferAwareLEO(blocks=transferred.blocks,
                                    psi_blend=setup.psi_blend)
    else:
        # Homogeneous-ignorant: pool the foreign curves as if native.
        idx = map_indices(paper_space, mode_space)
        prior_rates = view.prior_rates[:, idx]
        prior_powers = view.prior_powers[:, idx]
        def make_estimator():
            return LEOEstimator()

    machine = HeteroMachine(
        setup.topology,
        seed=cell_seed(setup.seed, "hetero-machine", benchmark, mode))
    machine.load(profile)
    indices = random_indices(
        len(mode_space), min(setup.samples, len(mode_space)),
        cell_seed(setup.seed, "hetero-samples", benchmark, mode))
    rate_obs = np.empty(indices.size)
    power_obs = np.empty(indices.size)
    for j, i in enumerate(indices):
        machine.apply(mode_space[int(i)])
        m = machine.run_for(1.0)
        rate_obs[j], power_obs[j] = m.rate, m.system_power

    idle = machine.idle_power()
    work = setup.work_targets[benchmark]

    def fit_and_solve():
        est_rates = _estimate_curve(mode_space, prior_rates, indices,
                                    rate_obs, make_estimator())
        est_powers = _estimate_curve(mode_space, prior_powers, indices,
                                     power_obs, make_estimator())
        minimizer = EnergyMinimizer(est_rates, est_powers, idle)
        try:
            return minimizer.solve(work, setup.deadline)
        except InfeasibleConstraintError as err:
            # The estimate undersells the platform: run flat out at
            # the estimated max rate and accept the shortfall.
            return minimizer.solve(err.max_rate * setup.deadline
                                   * (1.0 - 1e-12), setup.deadline)

    # Calibrate, solve, then refine: measure the configurations the
    # plan actually uses (an online controller's first control epochs)
    # and re-fit, until the committed plan runs only on validated
    # configurations.  Each round measures at least one new
    # configuration, so this terminates; the cap is a safety net.
    schedule = fit_and_solve()
    for _ in range(12):
        chosen = [s.config_index for s in schedule
                  if s.config_index is not None]
        fresh = [i for i in chosen
                 if i not in set(int(k) for k in indices)]
        if not fresh:
            break
        extra_r = np.empty(len(fresh))
        extra_p = np.empty(len(fresh))
        for j, i in enumerate(fresh):
            machine.apply(mode_space[int(i)])
            m = machine.run_for(1.0)
            extra_r[j], extra_p[j] = m.rate, m.system_power
        indices = np.concatenate([indices, np.asarray(fresh, dtype=int)])
        rate_obs = np.concatenate([rate_obs, extra_r])
        power_obs = np.concatenate([power_obs, extra_p])
        schedule = fit_and_solve()

    # Price the schedule on the true hetero curves.
    true_rates, true_powers = machine.sweep(profile, mode_space,
                                            noisy=False)
    energy = 0.0
    done = 0.0
    busy = 0.0
    for slot in schedule:
        if slot.config_index is None or slot.duration <= 0:
            continue
        energy += true_powers[slot.config_index] * slot.duration
        done += true_rates[slot.config_index] * slot.duration
        busy += slot.duration
    energy += idle * max(setup.deadline - busy, 0.0)

    return HeteroRun(
        benchmark=benchmark, mode=mode, energy=float(energy),
        work_target=float(work), work_done=float(done),
        met_deadline=bool(done >= work * (1.0 - 1e-6)),
        space_size=len(mode_space))


def hetero_energy_experiment(benchmarks: Optional[Sequence[str]] = None,
                             topology: HeteroTopology = BIG_LITTLE,
                             deadline: float = DEFAULT_DEADLINE,
                             utilization: float = DEFAULT_UTILIZATION,
                             samples: int = DEFAULT_SAMPLES,
                             psi_blend: float = DEFAULT_PSI_BLEND,
                             seed: int = 0,
                             workers: Optional[int] = None,
                             setup: Optional[HeteroSetup] = None
                             ) -> List[HeteroRun]:
    """Run the benchmark × mode sweep; one :class:`HeteroRun` per cell.

    ``workers`` fans the cells across processes; results are identical
    for any worker count.
    """
    if setup is None:
        setup = build_setup(topology=topology, deadline=deadline,
                            utilization=utilization, samples=samples,
                            psi_blend=psi_blend, seed=seed,
                            benchmarks=benchmarks)
    names = (list(benchmarks) if benchmarks is not None
             else list(setup.work_targets))
    cells = [(name, mode) for name in names for mode in MODES]
    runner = ParallelRunner(workers=workers)
    return runner.map(_hetero_cell, cells, shared=setup)


def savings_summary(runs: Sequence[HeteroRun]) -> Dict[str, float]:
    """Per-benchmark energy savings of hetero over the baseline.

    ``savings = 1 - E_hetero / E_homogeneous`` on *effective* energy
    (charged per unit of completed work); positive means the
    hetero-aware pipeline spent less energy for the same work demand.
    """
    by_benchmark: Dict[str, Dict[str, HeteroRun]] = {}
    for run in runs:
        by_benchmark.setdefault(run.benchmark, {})[run.mode] = run
    savings = {}
    for name, pair in sorted(by_benchmark.items()):
        if set(pair) != set(MODES):
            continue
        savings[name] = 1.0 - (pair["hetero"].effective_energy
                               / pair["homogeneous"].effective_energy)
    return savings


def summarize_runs(runs: Sequence[HeteroRun]) -> List[List[object]]:
    """Table rows for :func:`repro.experiments.harness.format_table`."""
    by_benchmark: Dict[str, Dict[str, HeteroRun]] = {}
    for run in runs:
        by_benchmark.setdefault(run.benchmark, {})[run.mode] = run
    savings = savings_summary(runs)
    rows = []
    for name, pair in sorted(by_benchmark.items()):
        het = pair.get("hetero")
        hom = pair.get("homogeneous")
        rows.append([
            name,
            het.effective_energy if het else float("nan"),
            hom.effective_energy if hom else float("nan"),
            100.0 * savings.get(name, float("nan")),
            "yes" if het and het.met_deadline else "no",
            "yes" if hom and hom.met_deadline else "no",
        ])
    return rows


# ----------------------------------------------------------------------
# Cluster layer: water-filling across per-cluster tenants
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CapAllocationRun:
    """Joint vs static allocation across per-cluster tenants at one cap."""

    cap_watts: float
    joint_watts: float
    static_watts: float
    joint_feasible: int
    static_feasible: int
    joint_mode: str
    budgets: Dict[str, float]


def hetero_cap_allocation(topology: HeteroTopology = BIG_LITTLE,
                          caps: Sequence[float] = (170.0, 150.0, 130.0),
                          deadline: float = DEFAULT_DEADLINE,
                          utilization: float = 0.6,
                          seed: int = 0) -> List[CapAllocationRun]:
    """Water-fill a global cap across one tenant per core cluster.

    Each cluster becomes one tenant whose tradeoff curve comes from the
    configurations active *only* on that cluster — Pareto frontiers
    with genuinely different shapes (big: fast and power-hungry;
    LITTLE: slow and frugal).  The joint allocator should meet the same
    demands at no more estimated power than the equal split, and keep
    more tenants feasible at tight caps.
    """
    space = hetero_space(topology, DEFAULT_SPEED_INDICES)
    machine = HeteroMachine(topology, seed=seed)
    suite = paper_suite()
    partitions = topology.split_by_cluster()
    # Tenant wall powers follow the partition convention (see
    # cluster/partition.py): node-wide floor and idle draws are charged
    # at 1/num_partitions each, so the tenants' powers sum to the node.
    floor = machine.power_model.constants.system_floor
    share = 1.0 / len(partitions)
    demands = []
    for i, partition in enumerate(partitions):
        indices = cluster_indices(space, topology, partition.name)
        tspace = partition_space(space, partition, indices=indices)
        profile = suite[i % len(suite)]
        rates = np.array([machine.true_rate(profile, c)
                          for c in tspace.space])
        powers = np.array([machine.true_power(profile, c)
                           for c in tspace.space])
        powers = powers - (1.0 - share) * floor
        demands.append(TenantDemand(
            name=partition.name, rates=rates, powers=powers,
            idle_power=share * machine.idle_power(),
            required_rate=utilization * float(rates.max())))
    runs = []
    for cap in caps:
        joint = PowerCapAllocator(cap).allocate(demands)
        static = StaticAllocator(cap).allocate(demands)
        runs.append(CapAllocationRun(
            cap_watts=float(cap),
            joint_watts=joint.estimated_watts,
            static_watts=static.estimated_watts,
            joint_feasible=sum(t.feasible for t in joint.tenants),
            static_feasible=sum(t.feasible for t in static.tenants),
            joint_mode=joint.mode,
            budgets={t.name: t.budget_watts for t in joint.tenants}))
    return runs
