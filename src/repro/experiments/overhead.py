"""Runtime overhead measurement: Section 6.7.

The paper reports two overheads for LEO: an average execution time of
0.8 s per fitted quantity (performance and power each) and an energy
overhead of 178.5 J for running the runtime, versus exhaustive search's
hours-to-days.  This module measures the same quantities on the
reproduction: wall-clock EM fit time, sampling time/energy, and — for
scale — how long the exhaustive sweep takes per application on the
simulator (here trivial, which is precisely why the substitution is
documented in DESIGN.md).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.estimators.registry import create_estimator
from repro.experiments import harness
from repro.experiments.harness import ExperimentContext
from repro.runtime.controller import RuntimeController
from repro.runtime.sampling import RandomSampler


@dataclasses.dataclass
class OverheadResult:
    """Measured LEO overheads.

    Attributes:
        fit_seconds: Per-benchmark wall-clock seconds for estimating
            both quantities (performance + power).
        sampling_time: Simulated seconds of the sampling phase.
        sampling_energy: Joules consumed by the sampling phase.
        exhaustive_seconds: Wall-clock seconds of one full exhaustive
            sweep on the simulator.
    """

    fit_seconds: Dict[str, float]
    sampling_time: Dict[str, float]
    sampling_energy: Dict[str, float]
    exhaustive_seconds: float

    @property
    def mean_fit_seconds(self) -> float:
        return float(np.mean(list(self.fit_seconds.values())))

    @property
    def mean_sampling_energy(self) -> float:
        return float(np.mean(list(self.sampling_energy.values())))


def overhead_experiment(ctx: Optional[ExperimentContext] = None,
                        benchmarks: Optional[Sequence[str]] = None,
                        sample_count: int = 20) -> OverheadResult:
    """Measure LEO's calibration overhead for a set of benchmarks."""
    if ctx is None:
        ctx = harness.default_context()
    names: List[str] = (list(benchmarks) if benchmarks is not None
                        else ctx.benchmark_names[:5])

    fit_seconds: Dict[str, float] = {}
    sampling_time: Dict[str, float] = {}
    sampling_energy: Dict[str, float] = {}
    with harness.experiment_span("sec67_overhead",
                                 num_benchmarks=len(names),
                                 sample_count=sample_count):
        for i, name in enumerate(names):
            view = ctx.dataset.leave_one_out(name)
            machine = ctx.machine(seed_offset=800 + i)
            controller = RuntimeController(
                machine=machine, space=ctx.space,
                estimator=create_estimator("leo"),
                prior_rates=view.prior_rates, prior_powers=view.prior_powers,
                sampler=RandomSampler(ctx.seed + i),
                sample_count=sample_count)
            estimate = controller.calibrate(ctx.profile(name))
            fit_seconds[name] = estimate.fit_seconds
            sampling_time[name] = estimate.sampling_time
            sampling_energy[name] = estimate.sampling_energy

        started = time.perf_counter()
        machine = ctx.machine(seed_offset=900)
        machine.sweep(ctx.profile(names[0]), ctx.space, noisy=True)
        exhaustive_seconds = time.perf_counter() - started

    return OverheadResult(fit_seconds=fit_seconds,
                          sampling_time=sampling_time,
                          sampling_energy=sampling_energy,
                          exhaustive_seconds=exhaustive_seconds)
