"""One module per paper figure/table; see DESIGN.md's experiment index."""

from repro.experiments.harness import (
    APPROACHES,
    DEADLINE_SECONDS,
    CurveEstimate,
    ExperimentContext,
    bench_scale,
    default_context,
    estimate_curves,
    format_table,
    random_indices,
    sample_target,
    scaled,
)

__all__ = [
    "APPROACHES",
    "DEADLINE_SECONDS",
    "CurveEstimate",
    "ExperimentContext",
    "bench_scale",
    "default_context",
    "estimate_curves",
    "format_table",
    "random_indices",
    "sample_target",
    "scaled",
]
