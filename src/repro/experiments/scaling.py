"""Prior-library scaling study (beyond the paper's evaluation).

LEO's premise is that "knowing about one application should help in
producing better predictors for other applications" (Section 5.2).  A
natural question the paper leaves open: how much prior knowledge does
the hierarchy need?  This experiment sweeps the number of offline
applications available as priors and measures estimation accuracy for
held-out targets, for LEO and the k-nearest-neighbour baseline (which
shares the "find similar applications" intuition without the model).

The expected shape: accuracy rises steeply over the first several prior
applications — as soon as the library contains *some* application from
the target's behavioural family — and saturates well before 24.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.accuracy import accuracy
from repro.estimators.base import EstimationProblem, normalize_problem
from repro.estimators.registry import create_estimator
from repro.experiments import harness
from repro.experiments.harness import (
    ExperimentContext,
    random_indices,
    sample_target,
)

#: Estimators that consume the prior library.
LIBRARY_APPROACHES: Tuple[str, ...] = ("leo", "knn")


@dataclasses.dataclass
class ScalingResult:
    """Mean accuracy per prior-library size.

    Attributes:
        library_sizes: Number of prior applications made available.
        perf: ``{approach: [mean accuracy per size]}``.
        targets: The held-out applications evaluated.
    """

    library_sizes: Tuple[int, ...]
    perf: Dict[str, List[float]]
    targets: Tuple[str, ...]


def prior_scaling_experiment(ctx: Optional[ExperimentContext] = None,
                             library_sizes: Sequence[int] = (1, 2, 4, 8,
                                                             16, 24),
                             targets: Sequence[str] = ("kmeans", "swish",
                                                       "x264", "bfs"),
                             sample_count: int = 20,
                             subsets_per_size: int = 3) -> ScalingResult:
    """Sweep the prior-library size with random application subsets.

    For each size, ``subsets_per_size`` random subsets of the other 24
    applications serve as the library, and accuracies are averaged over
    subsets and targets.
    """
    if ctx is None:
        ctx = harness.default_context()
    if any(size < 1 for size in library_sizes):
        raise ValueError("library sizes must be >= 1")
    if subsets_per_size < 1:
        raise ValueError(
            f"subsets_per_size must be >= 1, got {subsets_per_size}"
        )

    perf: Dict[str, List[float]] = {a: [] for a in LIBRARY_APPROACHES}
    rng = np.random.default_rng(ctx.seed + 777)

    # One sampling pass per target, shared across sizes and subsets.
    samples = {}
    for t, name in enumerate(targets):
        indices = random_indices(len(ctx.space), sample_count,
                                 ctx.seed + 600 + t)
        rate_obs, _ = sample_target(ctx, ctx.profile(name), indices,
                                    seed_offset=ctx.seed + 601 + t)
        samples[name] = (indices, rate_obs)

    for size in library_sizes:
        scores = {a: [] for a in LIBRARY_APPROACHES}
        for name in targets:
            view = ctx.dataset.leave_one_out(name)
            truth = ctx.truth.leave_one_out(name).true_rates
            indices, rate_obs = samples[name]
            max_size = view.prior_rates.shape[0]
            usable = min(size, max_size)
            for _ in range(subsets_per_size):
                subset = rng.choice(max_size, size=usable, replace=False)
                problem = EstimationProblem(
                    features=ctx.features,
                    prior=view.prior_rates[subset],
                    observed_indices=indices, observed_values=rate_obs)
                normalized, scale = normalize_problem(problem)
                for approach in LIBRARY_APPROACHES:
                    estimator = create_estimator(approach)
                    estimate = estimator.estimate(normalized) * scale
                    scores[approach].append(accuracy(estimate, truth))
        for approach in LIBRARY_APPROACHES:
            perf[approach].append(float(np.mean(scores[approach])))

    return ScalingResult(library_sizes=tuple(library_sizes), perf=perf,
                         targets=tuple(targets))
