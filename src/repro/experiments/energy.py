"""Energy-minimization experiments: Figures 10 and 11.

Section 6.4's protocol: fix the deadline, sweep the workload W across
100 utilization levels (1-100 % of each application's maximum achievable
work), and measure the energy each approach's runtime actually consumes.
Figure 10 shows the energy-vs-utilization curves for the representative
applications; Figure 11 averages each application's energy across all
utilization levels, normalized to the true optimal.

Each approach calibrates once per application (the paper's "one-time
estimation ... sufficient for the full range of utilizations", Section
6.7) and then runs closed-loop: the controller re-solves the Eq. (1) LP
every quantum from measured progress, which is how every approach meets
its performance goal even from imperfect estimates.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.estimators.registry import create_estimator
from repro.experiments import harness
from repro.experiments.harness import (
    APPROACHES,
    DEADLINE_SECONDS,
    ExperimentContext,
    estimate_curves,
    random_indices,
    sample_target,
)
from repro.experiments.parallel import ParallelRunner
from repro.optimize.lp import EnergyMinimizer
from repro.runtime.controller import RuntimeController, TradeoffEstimate
from repro.runtime.race_to_idle import RaceToIdleController
from repro.runtime.sampling import RandomSampler

#: Approaches whose energy is reported (beyond the analytic optimum).
ENERGY_APPROACHES = APPROACHES + ("race-to-idle",)


@dataclasses.dataclass
class EnergyCurve:
    """Energy vs utilization for one application.

    Attributes:
        benchmark: Application name.
        utilizations: The demanded utilization grid, in (0, 1].
        energy: ``{approach: [J per utilization]}`` including
            ``"optimal"`` (the analytic Eq.-(1) optimum on true curves).
        met: ``{approach: [bool per utilization]}`` whether the work
            demand was met.
    """

    benchmark: str
    utilizations: np.ndarray
    energy: Dict[str, List[float]]
    met: Dict[str, List[bool]]
    work_fraction: Dict[str, List[float]]

    def normalized_mean(self, approach: str) -> float:
        """Mean over utilizations of normalized energy (Figure 11's bar).

        Energy is charged per unit of work actually completed: an
        approach that misses its demand (the paper's "missed deadlines"
        for estimates below the true frontier) does not get credit for
        the work it skipped.  ``ratio = (E / work_fraction) / E_opt``.
        """
        energy = np.asarray(self.energy[approach])
        fraction = np.clip(np.asarray(self.work_fraction[approach]),
                           1e-6, 1.0)
        ratios = (energy / fraction) / np.asarray(self.energy["optimal"])
        return float(np.mean(ratios))


def _energy_cell(shared, cell) -> EnergyCurve:
    """One benchmark's full utilization sweep (a :class:`ParallelRunner`
    task: module-level, seeded entirely by the cell payload).

    Machine state carries across utilization levels *within* a
    benchmark, exactly as the serial loop ran it, so per-benchmark cells
    reproduce the serial results bit for bit.
    """
    ctx, utilizations, sample_count, deadline = shared
    b, name = cell
    profile = ctx.profile(name)
    view = ctx.dataset.leave_one_out(name)
    truth_view = ctx.truth.leave_one_out(name)
    idle = ctx.idle_power()
    true_max = float(truth_view.true_rates.max())

    # One calibration per approach (samples shared across approaches).
    seed = ctx.seed + 7000 + b
    indices = random_indices(len(ctx.space), sample_count, seed)
    rate_obs, power_obs = sample_target(ctx, profile, indices,
                                        seed_offset=seed)
    estimates: Dict[str, TradeoffEstimate] = {}
    for approach in APPROACHES:
        est = estimate_curves(ctx, view, indices, rate_obs, power_obs,
                              approach)
        if est.feasible:
            estimates[approach] = TradeoffEstimate(
                rates=est.rates, powers=est.powers,
                estimator_name=approach)

    optimal = EnergyMinimizer(truth_view.true_rates,
                              truth_view.true_powers, idle)

    energy: Dict[str, List[float]] = {a: [] for a in ENERGY_APPROACHES}
    energy["optimal"] = []
    met: Dict[str, List[bool]] = {a: [] for a in ENERGY_APPROACHES}
    work_fraction: Dict[str, List[float]] = {
        a: [] for a in ENERGY_APPROACHES
    }

    machine = ctx.machine(seed_offset=300 + b)
    for utilization in utilizations:
        work = utilization * true_max * deadline
        energy["optimal"].append(optimal.min_energy(work, deadline))
        for approach in APPROACHES:
            if approach not in estimates:
                energy[approach].append(float("nan"))
                met[approach].append(False)
                work_fraction[approach].append(0.0)
                continue
            controller = RuntimeController(
                machine=machine, space=ctx.space,
                estimator=create_estimator(approach),
                prior_rates=view.prior_rates,
                prior_powers=view.prior_powers,
                sampler=RandomSampler(seed=seed))
            report = controller.run(profile, work, deadline,
                                    estimates[approach])
            energy[approach].append(report.energy)
            met[approach].append(report.met_target)
            work_fraction[approach].append(
                min(report.work_done / work, 1.0))
        racer = RaceToIdleController(machine, ctx.space)
        report = racer.run(profile, work, deadline)
        energy["race-to-idle"].append(report.energy)
        met["race-to-idle"].append(report.met_target)
        work_fraction["race-to-idle"].append(
            min(report.work_done / work, 1.0))

    return EnergyCurve(benchmark=name, utilizations=utilizations,
                       energy=energy, met=met,
                       work_fraction=work_fraction)


def energy_experiment(ctx: Optional[ExperimentContext] = None,
                      benchmarks: Optional[Sequence[str]] = None,
                      num_utilizations: int = 20,
                      sample_count: int = 20,
                      deadline: float = DEADLINE_SECONDS,
                      workers: Optional[int] = None
                      ) -> List[EnergyCurve]:
    """Run the Section 6.4 sweep; one :class:`EnergyCurve` per benchmark.

    ``workers`` fans the per-benchmark cells across processes via
    :class:`ParallelRunner`; curves are identical for any count.
    """
    if ctx is None:
        ctx = harness.default_context()
    if num_utilizations < 2:
        raise ValueError(
            f"num_utilizations must be >= 2, got {num_utilizations}"
        )
    names = list(benchmarks) if benchmarks is not None else ctx.benchmark_names
    utilizations = np.linspace(0.05, 1.0, num_utilizations)

    runner = ParallelRunner(workers=workers)
    return runner.map(_energy_cell, list(enumerate(names)),
                      shared=(ctx, utilizations, sample_count, deadline))


def summarize_normalized(curves: Sequence[EnergyCurve]
                         ) -> Dict[str, Dict[str, float]]:
    """Figure 11's table: per-benchmark energy normalized to optimal."""
    return {
        curve.benchmark: {
            approach: curve.normalized_mean(approach)
            for approach in ENERGY_APPROACHES
        }
        for curve in curves
    }


def overall_normalized(curves: Sequence[EnergyCurve]) -> Dict[str, float]:
    """Mean normalized energy across benchmarks (the paper's headline:
    LEO 1.06, Online 1.24, Offline 1.29, race-to-idle 1.90)."""
    table = summarize_normalized(curves)
    return harness.summarize_means(table, ENERGY_APPROACHES)
