"""Estimation-accuracy experiments: Figures 5, 6, 7 and 8.

Figure 5 compares performance-estimation accuracy (Eq. 5) across the 25
benchmarks for LEO, the online baseline and the offline baseline, all
against exhaustive-search truth; Figure 6 does the same for power.
The paper's protocol (Section 6.3): 20 randomly sampled configurations
per trial, accuracies averaged over 10 independent trials, priors from
the other 24 applications (leave-one-out).

Figures 7 and 8 are the per-configuration estimate curves for the three
representative applications (kmeans, swish, x264), whose saw-tooth shape
comes from the configuration-index flattening.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments import harness
from repro.experiments.harness import (
    APPROACHES,
    CurveEstimate,
    ExperimentContext,
    accuracy_scores,
    estimate_curves,
    random_indices,
    sample_target,
)
from repro.experiments.parallel import ParallelRunner

#: The representative applications of Figures 7-10.
REPRESENTATIVES: Tuple[str, ...] = ("kmeans", "swish", "x264")


@dataclasses.dataclass
class AccuracyResult:
    """Per-benchmark, per-approach Eq. (5) accuracies.

    Attributes:
        perf: ``{benchmark: {approach: accuracy}}`` for performance.
        power: Same for power.
        sample_count: Configurations sampled per trial.
        trials: Trials averaged per benchmark.
    """

    perf: Dict[str, Dict[str, float]]
    power: Dict[str, Dict[str, float]]
    sample_count: int
    trials: int

    def mean_perf(self) -> Dict[str, float]:
        """Per-approach mean performance accuracy across benchmarks."""
        return harness.summarize_means(self.perf, APPROACHES)

    def mean_power(self) -> Dict[str, float]:
        """Per-approach mean power accuracy across benchmarks."""
        return harness.summarize_means(self.power, APPROACHES)


def _accuracy_cell(shared, cell) -> Dict[str, Tuple[float, float]]:
    """One (benchmark, trial) unit of the Figure 5/6 protocol.

    Module-level so :class:`ParallelRunner` can ship it to worker
    processes; the seed is fully determined by the cell payload, so the
    result is scheduling-independent.
    """
    ctx, sample_count = shared
    b, name, trial = cell
    view = ctx.dataset.leave_one_out(name)
    truth_view = ctx.truth.leave_one_out(name)
    seed = ctx.seed + 1000 * (b + 1) + trial
    indices = random_indices(len(ctx.space), sample_count, seed)
    rate_obs, power_obs = sample_target(
        ctx, ctx.profile(name), indices, seed_offset=seed % 7919)
    scores = {}
    for approach in APPROACHES:
        estimate = estimate_curves(
            ctx, view, indices, rate_obs, power_obs, approach)
        scores[approach] = accuracy_scores(estimate, truth_view)
    return scores


def accuracy_experiment(ctx: Optional[ExperimentContext] = None,
                        sample_count: int = 20,
                        trials: int = 3,
                        benchmarks: Optional[Sequence[str]] = None,
                        workers: Optional[int] = None
                        ) -> AccuracyResult:
    """Run the Figure 5/6 protocol and return the accuracy tables.

    ``workers`` fans the (benchmark, trial) cells across processes via
    :class:`ParallelRunner`; the tables are identical for any count.
    """
    if ctx is None:
        ctx = harness.default_context()
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    names = list(benchmarks) if benchmarks is not None else ctx.benchmark_names

    cells = [(b, name, trial)
             for b, name in enumerate(names) for trial in range(trials)]
    runner = ParallelRunner(workers=workers)
    cell_scores = runner.map(_accuracy_cell, cells,
                             shared=(ctx, sample_count))

    perf: Dict[str, Dict[str, float]] = {}
    power: Dict[str, Dict[str, float]] = {}
    for name in names:
        perf_acc = {a: [] for a in APPROACHES}
        power_acc = {a: [] for a in APPROACHES}
        for (_, cell_name, _), scores in zip(cells, cell_scores):
            if cell_name != name:
                continue
            for approach in APPROACHES:
                pa, wa = scores[approach]
                perf_acc[approach].append(pa)
                power_acc[approach].append(wa)
        perf[name] = {a: float(np.mean(v)) for a, v in perf_acc.items()}
        power[name] = {a: float(np.mean(v)) for a, v in power_acc.items()}
    return AccuracyResult(perf=perf, power=power,
                          sample_count=sample_count, trials=trials)


@dataclasses.dataclass
class ExampleCurves:
    """Figure 7/8 data for one application."""

    benchmark: str
    true_rates: np.ndarray
    true_powers: np.ndarray
    sampled_indices: np.ndarray
    estimates: Dict[str, CurveEstimate]

    def peak_rate_config(self, approach: str) -> int:
        """Configuration index of the estimated performance peak."""
        est = self.estimates[approach]
        if est.rates is None:
            raise ValueError(f"{approach} produced no estimate")
        return int(np.argmax(est.rates))


def example_curves(ctx: Optional[ExperimentContext] = None,
                   benchmarks: Sequence[str] = REPRESENTATIVES,
                   sample_count: int = 20,
                   approaches: Sequence[str] = APPROACHES
                   ) -> List[ExampleCurves]:
    """Full estimate curves for the representative applications."""
    if ctx is None:
        ctx = harness.default_context()
    results = []
    for b, name in enumerate(benchmarks):
        view = ctx.dataset.leave_one_out(name)
        truth_view = ctx.truth.leave_one_out(name)
        seed = ctx.seed + 50 + b
        indices = random_indices(len(ctx.space), sample_count, seed)
        rate_obs, power_obs = sample_target(
            ctx, ctx.profile(name), indices, seed_offset=seed)
        estimates = {
            approach: estimate_curves(
                ctx, view, indices, rate_obs, power_obs, approach)
            for approach in approaches
        }
        results.append(ExampleCurves(
            benchmark=name,
            true_rates=truth_view.true_rates,
            true_powers=truth_view.true_powers,
            sampled_indices=indices,
            estimates=estimates,
        ))
    return results
