"""CSV export of curves and tables.

Downstream users typically want the reproduced series in a form their
own plotting stack can ingest; these helpers write plain CSV with
validation, no pandas dependency.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

PathLike = Union[str, pathlib.Path]

#: Header of the flattened metrics-snapshot table.
METRICS_HEADERS = ("kind", "name", "field", "value")


def write_series(path: PathLike, x_label: str, x: Sequence[float],
                 series: Dict[str, Sequence[float]]) -> pathlib.Path:
    """Write aligned series as columns: ``x_label, label1, label2, ...``.

    Raises if any series length disagrees with ``x``.
    """
    path = pathlib.Path(path)
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        raise ValueError("x must be non-empty")
    columns = {}
    for label, values in series.items():
        v = np.asarray(values, dtype=float)
        if v.shape != x.shape:
            raise ValueError(
                f"series {label!r} has shape {v.shape}, x has {x.shape}"
            )
        columns[label] = v
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([x_label] + list(columns))
        for i in range(x.size):
            writer.writerow([repr(float(x[i]))]
                            + [repr(float(v[i])) for v in columns.values()])
    return path


def write_table(path: PathLike, headers: Sequence[str],
                rows: Sequence[Sequence[object]]) -> pathlib.Path:
    """Write a generic table; every row must match the header width."""
    path = pathlib.Path(path)
    headers = list(headers)
    if not headers:
        raise ValueError("headers must be non-empty")
    for i, row in enumerate(rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells; expected {len(headers)}"
            )
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path


def metrics_rows(snapshot: Dict[str, dict]
                 ) -> List[Tuple[str, str, str, float]]:
    """Flatten a :meth:`repro.obs.MetricsRegistry.snapshot` into rows.

    Each row is ``(kind, name, field, value)``; counters and gauges use
    the field ``"value"``, histograms one row per summary statistic.
    Raises on snapshots missing the standard three sections.
    """
    missing = {"counters", "gauges", "histograms"} - set(snapshot)
    if missing:
        raise ValueError(
            f"not a metrics snapshot: missing sections {sorted(missing)}"
        )
    rows: List[Tuple[str, str, str, float]] = []
    for name, value in snapshot["counters"].items():
        rows.append(("counter", name, "value", float(value)))
    for name, value in snapshot["gauges"].items():
        rows.append(("gauge", name, "value", float(value)))
    for name, summary in snapshot["histograms"].items():
        for field, value in summary.items():
            rows.append(("histogram", name, field, float(value)))
    return rows


def write_metrics(path: PathLike, snapshot: Dict[str, dict]) -> pathlib.Path:
    """Write a metrics snapshot as a long-form CSV table."""
    return write_table(path, METRICS_HEADERS, metrics_rows(snapshot))


def read_series(path: PathLike) -> Dict[str, np.ndarray]:
    """Read back a file written by :func:`write_series`.

    Returns a mapping including the x column, keyed by header labels.
    """
    path = pathlib.Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        headers = next(reader)
        data = {h: [] for h in headers}
        for row in reader:
            if len(row) != len(headers):
                raise ValueError(f"malformed row in {path}: {row!r}")
            for header, cell in zip(headers, row):
                data[header].append(float(cell))
    return {h: np.asarray(v) for h, v in data.items()}
