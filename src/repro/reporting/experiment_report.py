"""Render the benchmark suite's saved results into a markdown report.

``pytest benchmarks/ --benchmark-only`` drops one JSON file per figure/
table under ``benchmarks/results/``; :func:`render_markdown` turns that
directory into the paper-vs-measured report that EXPERIMENTS.md is built
from, so the document can be regenerated after every full run:

    python -m repro.reporting.experiment_report benchmarks/results > EXPERIMENTS.md
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Dict, List, Union

PathLike = Union[str, pathlib.Path]

#: Render order and display titles for the known result files.
_SECTIONS = [
    ("fig01_motivation", "Figure 1 — motivational example (kmeans, cores-only space)"),
    ("fig05_perf_accuracy", "Figure 5 — performance-estimation accuracy"),
    ("fig06_power_accuracy", "Figure 6 — power-estimation accuracy"),
    ("fig07_perf_examples", "Figure 7 — performance estimate curves"),
    ("fig08_power_examples", "Figure 8 — power estimate curves"),
    ("fig09_pareto", "Figure 9 — Pareto frontiers"),
    ("fig10_energy_curves", "Figure 10 — energy vs utilization (representatives)"),
    ("fig11_energy_summary", "Figure 11 — energy normalized to optimal"),
    ("fig12_sensitivity", "Figure 12 — sensitivity to sample size"),
    ("fig13_table1_phases", "Figure 13 / Table 1 — dynamic phases"),
    ("sec67_overhead", "Section 6.7 — overhead"),
    ("ablation_init", "Ablation — EM initialization"),
    ("ablation_woodbury", "Ablation — Woodbury vs dense E-step"),
    ("ablation_lp", "Ablation — hull walk vs simplex"),
    ("ablation_sampling", "Ablation — sampling strategies"),
    ("ablation_active", "Ablation — active vs random sampling"),
    ("ablation_priors", "Ablation — prior-library size"),
    ("ablation_governor", "Ablation — heuristics ladder (ondemand governor)"),
    ("ablation_inputs", "Ablation — input drift"),
    ("ablation_noise", "Ablation — measurement-noise robustness"),
    ("ablation_thermal", "Ablation — thermal throttling adaptation"),
    ("ablation_feedback", "Ablation — control strategy on the learned hull"),
    ("obs_metrics", "Observability — runtime metrics"),
]


def load_results(results_dir: PathLike) -> Dict[str, dict]:
    """Load every ``*.json`` under ``results_dir``, keyed by stem."""
    results_dir = pathlib.Path(results_dir)
    if not results_dir.is_dir():
        raise FileNotFoundError(f"no results directory at {results_dir}")
    loaded = {}
    for path in sorted(results_dir.glob("*.json")):
        loaded[path.stem] = json.loads(path.read_text())
    if not loaded:
        raise FileNotFoundError(f"no result JSON files in {results_dir}")
    return loaded


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _mapping_table(mapping: dict, key_header: str = "key",
                   value_header: str = "value") -> List[str]:
    lines = [f"| {key_header} | {value_header} |", "|---|---|"]
    for key, value in mapping.items():
        lines.append(f"| {key} | {_fmt(value)} |")
    return lines


def _render_section(name: str, title: str, payload: dict) -> List[str]:
    lines = [f"## {title}", ""]
    if name in ("fig05_perf_accuracy", "fig06_power_accuracy"):
        mean = payload["mean"]
        paper = payload["paper"]
        lines += ["| approach | measured mean | paper |", "|---|---|---|"]
        for approach in ("leo", "online", "offline"):
            lines.append(f"| {approach} | {mean[approach]:.3f} | "
                         f"{paper[approach]:.2f} |")
    elif name == "fig11_energy_summary":
        overall = payload["overall"]
        paper = payload["paper"]
        lines += ["| approach | measured (E/optimal) | paper |",
                  "|---|---|---|"]
        for approach in ("leo", "online", "offline", "race-to-idle"):
            lines.append(f"| {approach} | {overall[approach]:.3f} | "
                         f"{paper[approach]:.2f} |")
    elif name == "fig12_sensitivity":
        lines += ["| samples | leo perf | online perf |", "|---|---|---|"]
        for i, size in enumerate(payload["sizes"]):
            lines.append(f"| {size} | {payload['perf']['leo'][i]:.3f} | "
                         f"{payload['perf']['online'][i]:.3f} |")
        lines.append("")
        lines.append(f"Offline reference accuracy: "
                     f"{payload['offline_perf']:.3f} (perf), "
                     f"{payload['offline_power']:.3f} (power).")
    elif name == "fig13_table1_phases":
        paper = payload["paper"]
        lines += ["| algorithm | phase 1 | phase 2 | overall | paper |",
                  "|---|---|---|---|---|"]
        for approach in ("leo", "online", "offline"):
            rel = payload["relative"][approach]
            pap = paper[approach]
            lines.append(
                f"| {approach} | {rel[0]:.3f} | {rel[1]:.3f} | "
                f"{rel[2]:.3f} | {pap[0]:.3f}/{pap[1]:.3f}/{pap[2]:.3f} |")
    elif name == "fig01_motivation":
        lines.append(f"True peak: {payload['true_peak']} cores.")
        lines += _mapping_table(payload["estimated_peaks"],
                                "approach", "estimated peak (cores)")
    elif name == "fig07_perf_examples":
        lines += ["| benchmark | LEO accuracy | true peak | LEO peak |",
                  "|---|---|---|---|"]
        for bench, data in payload.items():
            lines.append(f"| {bench} | {data['accuracy']:.3f} | "
                         f"{data['true_peak_config']} | "
                         f"{data['leo_peak_config']} |")
    elif name == "fig08_power_examples":
        lines += ["| benchmark | LEO accuracy | MAPE |", "|---|---|---|"]
        for bench, data in payload.items():
            lines.append(f"| {bench} | {data['accuracy']:.3f} | "
                         f"{data['mape']:.3f} |")
    elif name == "fig09_pareto":
        lines += ["| benchmark | hull vertices (true / leo) |", "|---|---|"]
        for bench, hulls in payload.items():
            true_count = len(hulls.get("true", []))
            leo_count = len(hulls.get("leo", []))
            lines.append(f"| {bench} | {true_count} / {leo_count} |")
        lines.append("")
        lines.append("Full hull coordinates are in "
                     "`benchmarks/results/fig09_pareto.json`.")
    elif name == "fig10_energy_curves":
        lines += ["| benchmark | leo | online | offline | race-to-idle |",
                  "|---|---|---|---|---|"]
        for bench, data in payload.items():
            scores = data["normalized_mean"]
            lines.append(
                f"| {bench} | {scores['leo']:.3f} | "
                f"{scores['online']:.3f} | {scores['offline']:.3f} | "
                f"{scores['race-to-idle']:.3f} |")
        lines.append("")
        lines.append("Mean energy over the utilization sweep, normalized "
                     "to optimal; full curves in the JSON.")
    elif name == "ablation_init":
        lines += ["| benchmark | offline init | online init | random init |",
                  "|---|---|---|---|"]
        for bench, scores in payload.items():
            lines.append(
                f"| {bench} | {scores.get('offline', float('nan')):.3f} | "
                f"{scores.get('online', float('nan')):.3f} | "
                f"{scores.get('random', float('nan')):.3f} |")
    elif name == "ablation_woodbury":
        lines += _mapping_table(payload)
    elif name == "ablation_lp":
        lines += _mapping_table({
            "hull-walk seconds": payload["hull_seconds"],
            "simplex seconds": payload["simplex_seconds"],
            "max relative energy gap": max(
                abs(h - s) / s for h, s in zip(payload["hull_energies"],
                                               payload["simplex_energies"])),
        })
    elif name == "ablation_sampling":
        strategies = list(payload)
        benches = list(next(iter(payload.values())))
        lines += ["| strategy | " + " | ".join(benches) + " |",
                  "|" + "---|" * (len(benches) + 1)]
        for strategy in strategies:
            row = [f"{payload[strategy][b]:.3f}" for b in benches]
            lines.append(f"| {strategy} | " + " | ".join(row) + " |")
    elif name == "ablation_active":
        lines += ["| benchmark | budget | random | active |",
                  "|---|---|---|---|"]
        for bench, by_budget in payload.items():
            for budget, scores in by_budget.items():
                lines.append(f"| {bench} | {budget} | "
                             f"{scores['random']:.3f} | "
                             f"{scores['active']:.3f} |")
    elif name == "ablation_feedback":
        lines += ["| benchmark | LP re-solve | hull feedback |",
                  "|---|---|---|"]
        for bench, scores in payload.items():
            lines.append(f"| {bench} | {scores['lp-resolve']:.3f} | "
                         f"{scores['hull-feedback']:.3f} |")
    elif name == "ablation_governor":
        lines += ["| benchmark | leo | ondemand | race-to-idle |",
                  "|---|---|---|---|"]
        for bench, scores in payload.items():
            lines.append(f"| {bench} | {scores['leo']:.3f} | "
                         f"{scores['ondemand']:.3f} | "
                         f"{scores['race-to-idle']:.3f} |")
    elif name == "ablation_inputs":
        lines += ["| benchmark | leo | online | offline |",
                  "|---|---|---|---|"]
        for bench, scores in payload["per_benchmark"].items():
            lines.append(f"| {bench} | {scores['leo']:.3f} | "
                         f"{scores['online']:.3f} | "
                         f"{scores['offline']:.3f} |")
    elif name == "ablation_priors":
        lines += ["| prior apps | leo | knn |", "|---|---|---|"]
        for i, size in enumerate(payload["library_sizes"]):
            lines.append(f"| {size} | {payload['perf']['leo'][i]:.3f} | "
                         f"{payload['perf']['knn'][i]:.3f} |")
    elif name == "ablation_noise":
        lines += ["| sample noise | leo | online | offline |",
                  "|---|---|---|---|"]
        for i, level in enumerate(payload["noise_levels"]):
            lines.append(
                f"| {level:.0%} | {payload['perf']['leo'][i]:.3f} | "
                f"{payload['perf']['online'][i]:.3f} | "
                f"{payload['perf']['offline'][i]:.3f} |")
    elif name == "ablation_thermal":
        lines += ["| runtime | met demand | re-estimations | work fraction |",
                  "|---|---|---|---|"]
        for runtime in ("adaptive", "static"):
            data = payload[runtime]
            lines.append(
                f"| {runtime} | {_fmt(data['met'])} | "
                f"{data['reestimations']} | {data['work_fraction']:.3f} |")
    elif name == "obs_metrics":
        # A repro.obs metrics snapshot saved next to the figure results.
        counters = payload.get("counters", {})
        gauges = payload.get("gauges", {})
        if counters or gauges:
            lines += _mapping_table({**counters, **gauges},
                                    "metric", "value")
        histograms = payload.get("histograms", {})
        if histograms:
            lines += ["", "| histogram | count | mean | p50 | p90 | p99 |",
                      "|---|---|---|---|---|---|"]
            for metric, summary in histograms.items():
                lines.append(
                    f"| {metric} | {summary['count']:.0f} | "
                    f"{summary['mean']:.4g} | {summary['p50']:.4g} | "
                    f"{summary['p90']:.4g} | {summary['p99']:.4g} |")
    elif name == "sec67_overhead":
        lines += _mapping_table(
            {"mean fit seconds (both quantities)":
                 sum(payload["fit_seconds"].values())
                 / len(payload["fit_seconds"]),
             "paper fit seconds per quantity":
                 payload["paper_fit_seconds_per_quantity"],
             "exhaustive sweep (simulator, s)":
                 payload["exhaustive_sweep_seconds"]})
    else:
        lines.append("```json")
        lines.append(json.dumps(payload, indent=2, default=float)[:2000])
        lines.append("```")
    lines.append("")
    return lines


def render_markdown(results_dir: PathLike) -> str:
    """Render every known result file into one markdown document."""
    results = load_results(results_dir)
    lines = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Generated from `benchmarks/results/` "
        "(regenerate with `pytest benchmarks/ --benchmark-only -s` then "
        "`python -m repro.reporting.experiment_report benchmarks/results`).",
        "",
    ]
    for name, title in _SECTIONS:
        if name in results:
            lines += _render_section(name, title, results[name])
    leftovers = set(results) - {name for name, _ in _SECTIONS}
    for name in sorted(leftovers):
        lines += _render_section(name, name, results[name])
    return "\n".join(lines)


def main(argv: List[str]) -> int:
    """CLI entry point: render a results directory to stdout."""
    if len(argv) != 1:
        print("usage: python -m repro.reporting.experiment_report "
              "<results-dir>", file=sys.stderr)
        return 2
    try:
        sys.stdout.write(render_markdown(argv[0]))
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
