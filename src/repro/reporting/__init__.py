"""Headless reporting: ASCII plots, CSV export, markdown experiment reports."""

from repro.reporting.ascii_plot import heatmap, histogram, line_chart, sparkline
from repro.reporting.csv_export import (
    metrics_rows,
    read_series,
    write_metrics,
    write_series,
    write_table,
)
from repro.reporting.experiment_report import load_results, render_markdown
from repro.reporting.span_tree import (
    critical_path,
    render_span_tree,
    summarize_spans,
)

__all__ = [
    "heatmap",
    "histogram",
    "line_chart",
    "sparkline",
    "metrics_rows",
    "read_series",
    "write_metrics",
    "write_series",
    "write_table",
    "load_results",
    "render_markdown",
    "critical_path",
    "render_span_tree",
    "summarize_spans",
]
