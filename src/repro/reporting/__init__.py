"""Headless reporting: ASCII plots, CSV export, markdown experiment reports."""

from repro.reporting.ascii_plot import heatmap, histogram, line_chart, sparkline
from repro.reporting.csv_export import read_series, write_series, write_table
from repro.reporting.experiment_report import load_results, render_markdown

__all__ = [
    "heatmap",
    "histogram",
    "line_chart",
    "sparkline",
    "read_series",
    "write_series",
    "write_table",
    "load_results",
    "render_markdown",
]
