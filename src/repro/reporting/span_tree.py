"""ASCII rendering and summarization of recorded trace spans.

Turns the flat span list a :class:`repro.obs.Tracer` records (or a JSONL
trace file read back with :func:`repro.obs.read_trace`) into the two
views humans want:

* :func:`render_span_tree` — the nested call tree with durations, the
  ``repro obs summarize`` output;
* :func:`summarize_spans` — per-span-name aggregates (count, total and
  mean duration), which is how the Section 6.7 overhead table is read
  off a trace (sum the ``estimator.fit`` rows).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs import Span

#: Attributes worth showing inline in the tree (kept short so the tree
#: stays readable; everything else remains in the JSONL).
_INLINE_ATTRS = ("estimator", "iteration", "config_index", "idle",
                 "recalibrated", "experiment", "error")


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _format_attrs(span: Span) -> str:
    shown = [f"{key}={span.attributes[key]}" for key in _INLINE_ATTRS
             if key in span.attributes]
    return f" [{', '.join(shown)}]" if shown else ""


def render_span_tree(spans: Sequence[Span], max_children: int = 40) -> str:
    """Render spans as an indented tree with durations.

    Children are ordered by start time under their parent; siblings
    beyond ``max_children`` are elided with a count (a controller run
    records one span per quantum, which would otherwise drown the tree).
    """
    spans = sorted(spans, key=lambda s: (s.start, s.span_id))
    children: Dict[Optional[str], List[Span]] = {}
    span_ids = {span.span_id for span in spans}
    for span in spans:
        # A parent outside the rendered set (e.g. a filtered trace)
        # promotes the span to a root rather than dropping it.
        parent = span.parent_id if span.parent_id in span_ids else None
        children.setdefault(parent, []).append(span)

    lines: List[str] = []

    def visit(span: Span, depth: int) -> None:
        indent = "  " * depth
        lines.append(f"{indent}{span.name}  "
                     f"{_format_duration(span.duration)}"
                     f"{_format_attrs(span)}")
        kids = children.get(span.span_id, [])
        for child in kids[:max_children]:
            visit(child, depth + 1)
        if len(kids) > max_children:
            lines.append(f"{indent}  ... {len(kids) - max_children} more "
                         f"{kids[max_children].name} siblings elided")

    for root in children.get(None, []):
        visit(root, 0)
    return "\n".join(lines)


def summarize_spans(spans: Sequence[Span]) -> Dict[str, Dict[str, float]]:
    """Aggregate spans by name: ``{name: {count, total_s, mean_s}}``.

    Names are sorted for stable output; durations are wall-clock
    seconds.  Summing the ``estimator.fit`` row reproduces the paper's
    Section 6.7 fit-time overhead for the traced run.
    """
    grouped: Dict[str, List[float]] = {}
    for span in spans:
        grouped.setdefault(span.name, []).append(span.duration)
    return {
        name: {
            "count": float(len(durations)),
            "total_s": sum(durations),
            "mean_s": sum(durations) / len(durations),
        }
        for name, durations in sorted(grouped.items())
    }
