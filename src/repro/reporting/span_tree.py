"""ASCII rendering and summarization of recorded trace spans.

Turns the flat span list a :class:`repro.obs.Tracer` records (or a JSONL
trace file read back with :func:`repro.obs.read_trace`) into the two
views humans want:

* :func:`render_span_tree` — the nested call tree with durations, the
  ``repro obs summarize`` output;
* :func:`summarize_spans` — per-span-name aggregates (count, total and
  mean duration), which is how the Section 6.7 overhead table is read
  off a trace (sum the ``estimator.fit`` rows);
* :func:`critical_path` — the heaviest root-to-leaf chain, the
  ``repro obs critical-path`` output.

Distributed traces arrive here as merged shards (see
:mod:`repro.obs.collector`), so the renderer must tolerate recorder and
exporter bugs rather than crash on them: a span whose parent is missing
is promoted to a root, a span naming *itself* as parent likewise, and
duplicate span ids render once each without recursing forever.  Repair
stays the collector's job; rendering only refuses to lie or loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs import Span

#: Attributes worth showing inline in the tree (kept short so the tree
#: stays readable; everything else remains in the JSONL).
_INLINE_ATTRS = ("estimator", "iteration", "config_index", "idle",
                 "recalibrated", "experiment", "error")


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _format_attrs(span: Span) -> str:
    shown = [f"{key}={span.attributes[key]}" for key in _INLINE_ATTRS
             if key in span.attributes]
    return f" [{', '.join(shown)}]" if shown else ""


def render_span_tree(spans: Sequence[Span], max_children: int = 40) -> str:
    """Render spans as an indented tree with durations.

    Children are ordered by start time under their parent; siblings
    beyond ``max_children`` are elided with a count (a controller run
    records one span per quantum, which would otherwise drown the tree).
    """
    spans = sorted(spans, key=lambda s: (s.start, s.span_id))
    children = _child_index(spans)
    lines: List[str] = []
    visited: set = set()

    def visit(span: Span, depth: int) -> None:
        # Duplicate span ids share one children list; each span object
        # still renders at most once, and a parent/child cycle (however
        # it got recorded) terminates instead of recursing forever.
        if id(span) in visited:
            return
        visited.add(id(span))
        indent = "  " * depth
        lines.append(f"{indent}{span.name}  "
                     f"{_format_duration(span.duration)}"
                     f"{_format_attrs(span)}")
        kids = children.get(span.span_id, [])
        for child in kids[:max_children]:
            visit(child, depth + 1)
        if len(kids) > max_children:
            lines.append(f"{indent}  ... {len(kids) - max_children} more "
                         f"{kids[max_children].name} siblings elided")

    for root in children.get(None, []):
        visit(root, 0)
    # Spans only reachable through a cycle never got visited; surface
    # them as roots so nothing silently disappears from the rendering.
    for span in spans:
        if id(span) not in visited:
            visit(span, 0)
    return "\n".join(lines)


def _child_index(spans: Sequence[Span]) -> Dict[Optional[int], List[Span]]:
    """Group spans by parent, promoting unparentable spans to roots.

    A parent outside the set (e.g. a filtered trace, a shard that never
    arrived) and a span naming itself as its own parent both become
    roots rather than being dropped.
    """
    children: Dict[Optional[int], List[Span]] = {}
    span_ids = {span.span_id for span in spans}
    for span in spans:
        parent = span.parent_id
        if parent == span.span_id or parent not in span_ids:
            parent = None
        children.setdefault(parent, []).append(span)
    return children


def critical_path(spans: Sequence[Span]) -> List[Span]:
    """The heaviest root-to-leaf chain through the span tree.

    Starts at the longest root and repeatedly descends into the child
    with the largest duration — the chain a latency optimization should
    attack first.  In a merged distributed trace this walks straight
    across process boundaries (harness → worker cell → service handler),
    which is the point of stitching the shards together.  Returns the
    spans along the path, root first; empty for an empty trace.
    """
    spans = sorted(spans, key=lambda s: (s.start, s.span_id))
    if not spans:
        return []
    children = _child_index(spans)
    # A rootless trace (every span inside a parent cycle) still yields
    # a path: start from the longest span, like the renderer's
    # nothing-disappears rule.
    roots = children.get(None, []) or spans
    path: List[Span] = []
    seen: set = set()
    node: Optional[Span] = max(roots, key=lambda s: s.duration)
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        path.append(node)
        kids = [child for child in children.get(node.span_id, [])
                if id(child) not in seen]
        node = max(kids, key=lambda s: s.duration) if kids else None
    return path


def summarize_spans(spans: Sequence[Span]) -> Dict[str, Dict[str, float]]:
    """Aggregate spans by name: ``{name: {count, total_s, mean_s}}``.

    Names are sorted for stable output; durations are wall-clock
    seconds.  Summing the ``estimator.fit`` row reproduces the paper's
    Section 6.7 fit-time overhead for the traced run.
    """
    grouped: Dict[str, List[float]] = {}
    for span in spans:
        grouped.setdefault(span.name, []).append(span.duration)
    return {
        name: {
            "count": float(len(durations)),
            "total_s": sum(durations),
            "mean_s": sum(durations) / len(durations),
        }
        for name, durations in sorted(grouped.items())
    }
