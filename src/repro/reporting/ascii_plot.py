"""Terminal plotting: sparklines and multi-series line charts.

The reproduction is headless (no matplotlib dependency), but the paper's
figures are curves; these helpers render them legibly in a terminal so
examples and benchmark printouts can *show* shape, not just numbers.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

_SPARK_BLOCKS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """One-line density rendering of a curve, min-max normalized."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("cannot sparkline an empty sequence")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    idx = np.linspace(0, v.size - 1, min(width, v.size)).astype(int)
    sampled = v[idx]
    span = float(np.ptp(sampled))
    if span == 0:
        return _SPARK_BLOCKS[0] * len(sampled)
    scaled = (sampled - sampled.min()) / span
    return "".join(
        _SPARK_BLOCKS[int(s * (len(_SPARK_BLOCKS) - 1))] for s in scaled)


def line_chart(series: Dict[str, Sequence[float]],
               x: Optional[Sequence[float]] = None,
               width: int = 64, height: int = 16,
               title: str = "") -> str:
    """Multi-series ASCII line chart.

    Args:
        series: Label -> y-values.  All series must share a length.
        x: Optional shared x-values (used only for the axis labels).
        width: Plot width in characters.
        height: Plot height in rows.
        title: Optional heading.

    Each series is drawn with its own marker (the first letter of its
    label); collisions show the later series' marker.
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    (length,) = lengths
    if length < 2:
        raise ValueError("series need at least two points")
    if width < 8 or height < 4:
        raise ValueError("width must be >= 8 and height >= 4")

    all_values = np.concatenate([np.asarray(v, dtype=float)
                                 for v in series.values()])
    if not np.all(np.isfinite(all_values)):
        raise ValueError("series must be finite")
    lo, hi = float(all_values.min()), float(all_values.max())
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for label, values in series.items():
        marker = label[0]
        v = np.asarray(values, dtype=float)
        cols = np.linspace(0, width - 1, v.size).astype(int)
        rows = ((v - lo) / (hi - lo) * (height - 1)).round().astype(int)
        for col, row in zip(cols, rows):
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:10.3g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{lo:10.3g} +" + "-" * width + "+")
    if x is not None:
        x = np.asarray(x, dtype=float)
        lines.append(" " * 12 + f"{x.min():<10.3g}"
                     + " " * max(width - 20, 1) + f"{x.max():>10.3g}")
    legend = "  ".join(f"{label[0]}={label}" for label in series)
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def heatmap(matrix, width: int = 48, height: int = 24,
            title: str = "", symmetric: bool = False) -> str:
    """Render a matrix as a character-density heatmap.

    Args:
        matrix: 2-D array.  Downsampled (by striding) to fit
            ``height`` x ``width`` cells.
        symmetric: Scale around zero (for correlation matrices):
            ``-1 -> ' '``, ``0 -> mid``, ``+1 -> '@'``.  Otherwise
            min-max scaled.
    """
    m = np.asarray(matrix, dtype=float)
    if m.ndim != 2 or m.size == 0:
        raise ValueError(f"matrix must be non-empty 2-D, got shape {m.shape}")
    if not np.all(np.isfinite(m)):
        raise ValueError("matrix must be finite")
    rows = np.linspace(0, m.shape[0] - 1, min(height, m.shape[0])).astype(int)
    cols = np.linspace(0, m.shape[1] - 1, min(width, m.shape[1])).astype(int)
    sampled = m[np.ix_(rows, cols)]
    if symmetric:
        scale = max(float(np.abs(sampled).max()), 1e-12)
        normalized = (sampled / scale + 1.0) / 2.0
    else:
        lo, hi = float(sampled.min()), float(sampled.max())
        span = max(hi - lo, 1e-12)
        normalized = (sampled - lo) / span
    lines = [title] if title else []
    for row in normalized:
        lines.append("".join(
            _SPARK_BLOCKS[int(v * (len(_SPARK_BLOCKS) - 1))] for v in row))
    return "\n".join(lines)


def histogram(values: Sequence[float], bins: int = 10,
              width: int = 40, title: str = "") -> str:
    """Horizontal ASCII histogram."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ValueError("cannot histogram an empty sequence")
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    counts, edges = np.histogram(v, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"[{lo:9.3g}, {hi:9.3g}) {bar} {count}")
    return "\n".join(lines)
