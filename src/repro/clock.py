"""The runtime clock protocol: wall time and deterministic virtual time.

Every loop in the system that waits — the service client's retry
backoff, the SLO tracker's burn-rate windows, the soak harness's
multi-day schedules — reads time through a :class:`Clock` instead of
calling ``time.*`` directly.  Two implementations exist:

* :class:`WallClock` delegates to :func:`time.monotonic`,
  :func:`time.time`, and :func:`time.sleep` — byte-for-byte the
  behaviour the system had before clocks were threadable.
* :class:`VirtualClock` is a deterministic discrete-event clock:
  ``sleep()`` advances virtual time instantly (fast-forwarding idle
  time through an event heap), timers fire in ``(deadline, seq)``
  order, and two runs with the same schedule produce identical
  timelines.  Days of simulated time cost microseconds of wall time.

Like the observability bundle (:mod:`repro.obs.context`) and the fault
injector (:mod:`repro.faults.context`), the active clock is ambient: it
lives in a :mod:`contextvars` variable installed with :func:`use` and
read with :func:`get_clock`.  The default is :data:`WALL_CLOCK`, so
code that never installs a virtual clock behaves exactly as before::

    from repro.clock import VirtualClock, use

    with use(VirtualClock()) as clock:
        client.call("ping", {})        # retries consume no wall time
        clock.advance(3600.0)          # one simulated hour, instantly
"""

from __future__ import annotations

import contextlib
import contextvars
import heapq
import time
from typing import Any, Callable, Iterator, List, Optional, Tuple

__all__ = [
    "Clock",
    "WallClock",
    "VirtualClock",
    "Timer",
    "WALL_CLOCK",
    "get_clock",
    "resolve",
    "use",
]


class Clock:
    """The protocol every clock implements.

    ``now()`` is monotonic seconds (comparable only against the same
    clock), ``time()`` is epoch seconds (for human-facing timestamps),
    and ``sleep()`` blocks — really, for :class:`WallClock`; virtually,
    for :class:`VirtualClock`.
    """

    #: True for clocks whose ``sleep`` consumes no wall time.  Loops
    #: that tune themselves to real hardware (profilers, perf gates)
    #: check this to keep measuring with ``time.perf_counter``.
    is_virtual: bool = False

    def now(self) -> float:
        raise NotImplementedError

    def time(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class WallClock(Clock):
    """The real clock — thin delegation to the :mod:`time` module."""

    is_virtual = False

    def now(self) -> float:
        return time.monotonic()

    def time(self) -> float:
        return time.time()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def __repr__(self) -> str:
        return "WallClock()"


class Timer:
    """A cancellable callback scheduled on a :class:`VirtualClock`.

    Ordered by ``(deadline, seq)`` so two timers due at the same
    instant fire in scheduling order — the property that makes virtual
    timelines reproducible.
    """

    __slots__ = ("deadline", "seq", "callback", "cancelled")

    def __init__(self, deadline: float, seq: int,
                 callback: Optional[Callable[[], Any]]) -> None:
        self.deadline = deadline
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        self.cancelled = True

    def __lt__(self, other: "Timer") -> bool:
        return (self.deadline, self.seq) < (other.deadline, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "armed"
        return f"Timer(deadline={self.deadline!r}, {state})"


class VirtualClock(Clock):
    """A deterministic discrete-event clock.

    ``sleep(s)`` advances virtual time by ``s`` instantly, firing any
    timers whose deadlines fall inside the jump — the fast-forward that
    turns days of idle simulated time into free CI time.  Time never
    goes backwards: ``advance_to`` clamps to the current instant.

    Args:
        start: Initial monotonic reading (``now()``).
        epoch: Initial epoch reading (``time()``); advances in lockstep
            with ``now()``.
    """

    is_virtual = True

    def __init__(self, start: float = 0.0, epoch: float = 0.0) -> None:
        self._now = float(start)
        self._epoch_offset = float(epoch) - float(start)
        self._heap: List[Timer] = []
        self._seq = 0
        self._sleeps = 0

    # ------------------------------------------------------------------
    # Clock protocol
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self._now

    def time(self) -> float:
        return self._now + self._epoch_offset

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            seconds = 0.0
        self._sleeps += 1
        self.advance(seconds)

    # ------------------------------------------------------------------
    # Virtual-time control
    # ------------------------------------------------------------------
    @property
    def sleep_count(self) -> int:
        """How many ``sleep`` calls this clock has absorbed."""
        return self._sleeps

    @property
    def pending_timers(self) -> int:
        """Armed (uncancelled, unfired) timers still on the heap."""
        return sum(1 for t in self._heap if not t.cancelled)

    def schedule(self, delay: float,
                 callback: Optional[Callable[[], Any]] = None) -> Timer:
        """Arm ``callback`` to fire ``delay`` seconds from now.

        Returns the :class:`Timer` handle; ``callback`` may be ``None``
        for a pure deadline marker (useful with :meth:`next_deadline`).
        """
        timer = Timer(self._now + max(0.0, float(delay)), self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, timer)
        return timer

    def next_deadline(self) -> Optional[float]:
        """The earliest armed timer's deadline, or ``None``."""
        self._prune()
        return self._heap[0].deadline if self._heap else None

    def advance(self, seconds: float) -> None:
        """Jump forward ``seconds``, firing due timers in order."""
        self.advance_to(self._now + max(0.0, float(seconds)))

    def advance_to(self, instant: float) -> None:
        """Jump to ``instant`` (clamped to never move backwards).

        Timers due on the way fire in ``(deadline, seq)`` order, each
        observing ``now()`` equal to its own deadline — exactly the
        semantics of an event-driven scheduler draining its heap.
        """
        target = max(float(instant), self._now)
        while True:
            self._prune()
            if not self._heap or self._heap[0].deadline > target:
                break
            timer = heapq.heappop(self._heap)
            self._now = max(self._now, timer.deadline)
            if timer.callback is not None and not timer.cancelled:
                timer.callback()
        self._now = target

    def run_until_idle(self, limit: float = float("inf")) -> None:
        """Fast-forward through every armed timer up to ``limit``."""
        while True:
            deadline = self.next_deadline()
            if deadline is None or deadline > limit:
                break
            self.advance_to(deadline)

    def _prune(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def __repr__(self) -> str:
        return (f"VirtualClock(now={self._now!r}, "
                f"pending={self.pending_timers})")


#: The process-wide default clock.
WALL_CLOCK = WallClock()

_STATE: contextvars.ContextVar[Clock] = contextvars.ContextVar(
    "repro_clock", default=WALL_CLOCK)


def get_clock() -> Clock:
    """The ambient clock (:data:`WALL_CLOCK` unless one is installed)."""
    return _STATE.get()


@contextlib.contextmanager
def use(clock: Optional[Clock]) -> Iterator[Clock]:
    """Install ``clock`` as the ambient clock for the block.

    ``None`` leaves the current clock in place, mirroring
    :func:`repro.obs.use` / :func:`repro.faults.use` so optional wiring
    reads the same at every layer.
    """
    if clock is None:
        yield _STATE.get()
        return
    token = _STATE.set(clock)
    try:
        yield clock
    finally:
        _STATE.reset(token)


def resolve(clock: Optional[Clock]) -> Clock:
    """``clock`` if given, else the ambient clock.

    The one-liner every constructor with a ``clock=None`` parameter
    calls, so explicit injection always beats ambience.
    """
    return clock if clock is not None else _STATE.get()
