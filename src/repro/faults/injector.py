"""The deterministic fault injector.

A :class:`FaultInjector` evaluates a :class:`~repro.faults.plan.
FaultPlan` at every instrumented site.  Hooks deep in the stack call
:meth:`fire` (per-event faults — "does a fault strike *this* reading /
call / fit?") or :meth:`active` (windowed states — "is the cap
transient in force *now*?").  Both are pure functions of the plan, its
seed, and the deterministic sequence of site events, so a chaos run
replays bit-identically.

Each spec owns its own seeded random stream (derived from the plan seed
and the spec's position, via the same SHA-256 technique the experiment
harness uses for cell seeds), so adding or removing one spec never
perturbs another spec's firing sequence.

Every firing increments ``fault_injected_total`` and a per-kind
``fault_<kind>_total`` counter, and — when a tracer is recording —
emits a zero-length ``fault.inject`` span, through the ambient
:mod:`repro.obs` context.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import get_observability

__all__ = ["FaultInjector", "stable_seed"]


def stable_seed(*components) -> int:
    """A 63-bit seed derived stably from arbitrary components.

    Same technique as the experiment harness's cell seeds: SHA-256 over
    the components' reprs, independent of process, platform, and hash
    randomization.
    """
    digest = hashlib.sha256(repr(components).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class FaultInjector:
    """Evaluates one fault plan deterministically at injection sites.

    Args:
        plan: The fault plan to execute.
        clock: An optional :class:`~repro.clock.Clock`.  When set,
            clock-less :meth:`fire` calls and clock-less :meth:`active`
            queries position themselves at ``clock.now()`` — one global
            timeline for every site, which is what a multi-day soak
            needs to phase faults across days.  ``None`` keeps the
            original semantics (site-local event indices) exactly.

    Attributes:
        plan: The plan in force.
        fired_counts: Mapping of fault kind → times it has fired.
    """

    #: Null-object discriminator: real injectors may inject.
    enabled = True

    def __init__(self, plan: FaultPlan, clock=None) -> None:
        self.plan = plan
        self.clock = clock
        self._rngs = [
            np.random.default_rng(stable_seed(plan.seed, i, spec.kind))
            for i, spec in enumerate(plan.specs)
        ]
        self._events = [0] * len(plan.specs)
        self._fired = [0] * len(plan.specs)

    # ------------------------------------------------------------------
    @property
    def fired_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for spec, n in zip(self.plan.specs, self._fired):
            if n:
                counts[spec.kind] = counts.get(spec.kind, 0) + n
        return counts

    @property
    def total_fired(self) -> int:
        return sum(self._fired)

    # ------------------------------------------------------------------
    def fire(self, site: str, clock: Optional[float] = None
             ) -> Tuple[FaultSpec, ...]:
        """Per-event faults striking ``site`` for the current event.

        ``clock`` positions the event inside spec windows when the site
        has a simulated clock; clock-less sites fall back to the
        injector's attached clock (``clock.now()``), then to their
        site-local event index.  Windowed kinds never fire here — query
        them with :meth:`active`.
        """
        if clock is None and self.clock is not None:
            clock = self.clock.now()
        fired: List[FaultSpec] = []
        for i, spec in enumerate(self.plan.specs):
            if spec.site != site or spec.windowed:
                continue
            position = clock if clock is not None else float(self._events[i])
            self._events[i] += 1
            if not (spec.start <= position < spec.end):
                continue
            if (spec.max_events is not None
                    and self._fired[i] >= spec.max_events):
                continue
            if (spec.probability < 1.0
                    and self._rngs[i].random() >= spec.probability):
                continue
            self._fired[i] += 1
            fired.append(spec)
            self._record(spec, site, position)
        return tuple(fired)

    def active(self, site: str,
               clock: Optional[float] = None) -> Tuple[FaultSpec, ...]:
        """Windowed fault states in force at ``site`` at ``clock``.

        Pure query: no random draws, no event counters, no metrics —
        callers poll it freely (e.g. once per quantum or epoch).
        ``clock`` may be omitted when the injector carries an attached
        clock (soak mode); without either, nothing is active.
        """
        if clock is None:
            if self.clock is None:
                return ()
            clock = self.clock.now()
        return tuple(
            spec for spec in self.plan.specs
            if spec.site == site and spec.windowed
            and spec.start <= clock < spec.end
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _record(spec: FaultSpec, site: str, position: float) -> None:
        ob = get_observability()
        ob.metrics.inc("fault_injected_total")
        ob.metrics.inc(f"fault_{spec.kind.replace('-', '_')}_total")
        ob.slo.record_event(f"fault-{spec.kind}")
        if ob.tracer.is_recording:
            with ob.tracer.span("fault.inject", kind=spec.kind, site=site,
                                position=position, magnitude=spec.magnitude):
                pass


class NullInjector:
    """The no-fault default: every query answers "nothing here".

    One contextvar lookup plus one empty-tuple return per hook — the
    fault-free path allocates nothing and draws no random numbers, so
    instrumented code is bit-identical to uninstrumented code.
    """

    enabled = False
    plan = None
    clock = None

    @staticmethod
    def fire(site: str, clock: Optional[float] = None) -> Tuple[()]:
        return ()

    @staticmethod
    def active(site: str, clock: Optional[float] = None) -> Tuple[()]:
        return ()

    @property
    def fired_counts(self) -> Dict[str, int]:
        return {}

    total_fired = 0


#: The shared disabled injector installed by default.
NULL_INJECTOR = NullInjector()
