"""Named, shipped fault plans.

The ``default`` plan is the acceptance plan: it exercises every fault
class in the taxonomy against a single chaos run (faults are active
early — roughly the first minute of simulated time, or the first few
events at clock-less sites — and then clear, so the run also exercises
recovery and promotion back to the configured estimator).

Plans are plain data; load custom ones from JSON with
:meth:`~repro.faults.plan.FaultPlan.from_json` or name these on the
``repro chaos`` command line.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import FaultPlanError
from repro.faults.plan import FaultPlan, FaultSpec

__all__ = ["default_plan", "get_plan", "plan_names"]

#: Simulated-clock horizon inside which the default plan's
#: machine-facing faults are active; after it, the system is healthy
#: and should promote back up the ladder.
DEFAULT_FAULT_HORIZON = 60.0


def _fault_free(seed: int = 0) -> FaultPlan:
    return FaultPlan(name="none", seed=seed, specs=())


def _sensors(seed: int = 0) -> FaultPlan:
    h = DEFAULT_FAULT_HORIZON
    return FaultPlan(name="sensors", seed=seed, specs=(
        FaultSpec("sensor-dropout", end=h, probability=0.05),
        FaultSpec("sensor-outlier", end=h, probability=0.03, magnitude=4.0),
        FaultSpec("sensor-bias", end=h, probability=0.10, magnitude=0.15),
        FaultSpec("meter-dropout", end=h, probability=0.05),
        FaultSpec("meter-outlier", end=h, probability=0.03, magnitude=4.0),
        FaultSpec("meter-bias", end=h, probability=0.10, magnitude=3.0),
        FaultSpec("heartbeat-stall", start=10.0, end=16.0),
    ))


def _estimation(seed: int = 0) -> FaultPlan:
    return FaultPlan(name="estimation", seed=seed, specs=(
        FaultSpec("em-nonconvergence", probability=0.5, max_events=2),
        FaultSpec("singular-covariance", probability=0.5, max_events=2,
                  magnitude=0.0),
        FaultSpec("estimator-crash", probability=0.5, max_events=2),
    ))


def _service(seed: int = 0) -> FaultPlan:
    return FaultPlan(name="service", seed=seed, specs=(
        FaultSpec("connection-drop", probability=0.4, max_events=3),
        FaultSpec("service-timeout", probability=0.3, max_events=2),
        FaultSpec("corrupt-response", probability=0.3, max_events=2),
    ))


def _cluster(seed: int = 0) -> FaultPlan:
    return FaultPlan(name="cluster", seed=seed, specs=(
        FaultSpec("tenant-crash", start=5.0, max_events=1),
        FaultSpec("cap-transient", start=5.0, end=15.0, magnitude=0.7),
    ))


def _shard_loss(seed: int = 0) -> FaultPlan:
    """Partial fleet failure: a crashed broker, a slow shard, and a
    replica cut off from the leader.  The chaos gate asserts the
    crashed shard's tenants shed with :class:`ShardUnavailable` while
    every other shard keeps answering."""
    return FaultPlan(name="shard-loss", seed=seed, specs=(
        FaultSpec("broker-crash", probability=1.0, max_events=4),
        FaultSpec("slow-shard", probability=0.5, max_events=3,
                  magnitude=0.05),
        FaultSpec("partitioned-replica", probability=1.0, max_events=3),
    ))


def default_plan(seed: int = 0) -> FaultPlan:
    """The shipped acceptance plan: every fault class, then recovery.

    Machine-facing faults clear after :data:`DEFAULT_FAULT_HORIZON`
    simulated seconds; event-indexed faults (EM, estimator, service,
    persistence) are capped with ``max_events`` so they exhaust early in
    the run.  A surviving controller must degrade while they are
    active and promote back to its configured estimator afterwards.
    """
    h = DEFAULT_FAULT_HORIZON
    return FaultPlan(name="default", seed=seed, specs=(
        # Sensing
        FaultSpec("sensor-dropout", end=h, probability=0.05),
        FaultSpec("sensor-outlier", end=h, probability=0.03, magnitude=4.0),
        FaultSpec("sensor-bias", end=h, probability=0.10, magnitude=0.15),
        FaultSpec("meter-dropout", end=h, probability=0.05),
        FaultSpec("meter-outlier", end=h, probability=0.03, magnitude=4.0),
        FaultSpec("meter-bias", end=h, probability=0.10, magnitude=3.0),
        FaultSpec("heartbeat-stall", start=10.0, end=16.0),
        # Estimation
        FaultSpec("em-nonconvergence", probability=0.5, max_events=2),
        FaultSpec("singular-covariance", probability=0.5, max_events=2,
                  magnitude=0.0),
        FaultSpec("estimator-crash", probability=0.5, max_events=2),
        # Service
        FaultSpec("connection-drop", probability=0.4, max_events=3),
        FaultSpec("service-timeout", probability=0.3, max_events=2),
        FaultSpec("corrupt-response", probability=0.3, max_events=2),
        # Persistence
        FaultSpec("partial-write", probability=0.5, max_events=2,
                  magnitude=0.5),
        # Cluster
        FaultSpec("tenant-crash", start=5.0, max_events=1),
        FaultSpec("cap-transient", start=5.0, end=15.0, magnitude=0.7),
        # Sharded fleet (appended — spec order seeds per-spec streams,
        # so earlier entries must keep their positions)
        FaultSpec("broker-crash", probability=0.5, max_events=2),
        FaultSpec("slow-shard", probability=0.3, max_events=2,
                  magnitude=0.05),
        FaultSpec("partitioned-replica", probability=0.5, max_events=2),
    ))


_FACTORIES = {
    "none": _fault_free,
    "default": default_plan,
    "sensors": _sensors,
    "estimation": _estimation,
    "service": _service,
    "cluster": _cluster,
    "shard-loss": _shard_loss,
}


def plan_names() -> List[str]:
    """The shipped plan names, sorted."""
    return sorted(_FACTORIES)


def get_plan(name: str, seed: int = 0) -> FaultPlan:
    """Build a shipped plan by name (seeded)."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise FaultPlanError(
            f"unknown fault plan {name!r}; shipped plans: {plan_names()}"
        ) from None
    return factory(seed)


def _check_default_covers_taxonomy() -> None:
    # The acceptance criteria hinge on the default plan exercising the
    # full taxonomy; guard it at import time so a taxonomy extension
    # cannot silently leave the default plan behind.
    from repro.faults.plan import KINDS

    missing = set(KINDS) - set(default_plan().kinds)
    if missing:
        raise FaultPlanError(
            f"default plan is missing fault kinds {sorted(missing)}")


_check_default_covers_taxonomy()
