"""Typed fault specifications and named fault plans.

A :class:`FaultSpec` describes one class of failure — what kind, where
it strikes (derived from the kind), when it is active, how often it
fires, and how hard.  A :class:`FaultPlan` is a named, seeded sequence
of specs; given the same plan and the same workload, the injector fires
the same faults at the same moments, so every chaos run is exactly
reproducible (the same discipline the experiment harness applies to
measurement noise).

Plans round-trip through JSON so they can be shipped, versioned, and
named on the ``repro chaos`` command line.

Fault taxonomy (see docs/RESILIENCE.md for the semantics of each):

========================  =====================  =============================
kind                      site                   effect when fired
========================  =====================  =============================
``sensor-dropout``        ``machine.measure``    window's reading lost
                                                 (:class:`SensorReadError`)
``sensor-outlier``        ``machine.measure``    rate/power reading scaled by
                                                 ``magnitude``
``sensor-bias``           ``machine.measure``    power reading scaled by
                                                 ``1 + magnitude``
``meter-dropout``         ``telemetry.meter``    meter sample lost
``meter-outlier``         ``telemetry.meter``    meter sample × ``magnitude``
``meter-bias``            ``telemetry.meter``    meter sample + ``magnitude`` W
``heartbeat-stall``       ``telemetry.heartbeat``  beats silently dropped while
                                                 the window is active
``em-nonconvergence``     ``em.fit``             fit raises
                                                 :class:`ConvergenceError`
``singular-covariance``   ``em.fit``             initial Sigma degraded to
                                                 singular (``magnitude`` ≥ 0:
                                                 repairable by jitter
                                                 escalation; < 0: non-finite,
                                                 :class:`CovarianceError`)
``estimator-crash``       ``estimator.fit``      fit raises
                                                 :class:`EstimationError`
``connection-drop``       ``service.call``       client sees ``ConnectionError``
``service-timeout``       ``service.call``       client sees ``socket.timeout``
``corrupt-response``      ``service.call``       client sees
                                                 :class:`ProtocolError`
``partial-write``         ``persistence.write``  record truncated to a
                                                 ``magnitude`` fraction after
                                                 the atomic replace
``tenant-crash``          ``cluster.tenant``     ``target`` tenant departs at
                                                 the epoch boundary
``cap-transient``         ``cluster.cap``        cap scaled by ``magnitude``
                                                 while the window is active
``broker-crash``          ``shard.route``        routed shard's broker is
                                                 gone: transport failure →
                                                 health accounting →
                                                 :class:`ShardUnavailable`
``slow-shard``            ``shard.call``         ``magnitude`` seconds of
                                                 added latency on the call
``partitioned-replica``   ``registry.sync``      replica cannot reach the
                                                 leader; reads serve stale
                                                 within the staleness bound
========================  =====================  =============================
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.errors import FaultPlanError

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "KIND_SITES",
    "KINDS",
    "SITES",
    "WINDOWED_KINDS",
]

#: Every fault kind, mapped to the injection site it strikes.
KIND_SITES: Dict[str, str] = {
    "sensor-dropout": "machine.measure",
    "sensor-outlier": "machine.measure",
    "sensor-bias": "machine.measure",
    "meter-dropout": "telemetry.meter",
    "meter-outlier": "telemetry.meter",
    "meter-bias": "telemetry.meter",
    "heartbeat-stall": "telemetry.heartbeat",
    "em-nonconvergence": "em.fit",
    "singular-covariance": "em.fit",
    "estimator-crash": "estimator.fit",
    "connection-drop": "service.call",
    "service-timeout": "service.call",
    "corrupt-response": "service.call",
    "partial-write": "persistence.write",
    "tenant-crash": "cluster.tenant",
    "cap-transient": "cluster.cap",
    "broker-crash": "shard.route",
    "slow-shard": "shard.call",
    "partitioned-replica": "registry.sync",
}

KINDS: Tuple[str, ...] = tuple(sorted(KIND_SITES))
SITES: Tuple[str, ...] = tuple(sorted(set(KIND_SITES.values())))

#: Kinds that describe a *state* over a window (queried with
#: :meth:`FaultInjector.active`) rather than a per-event firing.
WINDOWED_KINDS: Tuple[str, ...] = ("heartbeat-stall", "cap-transient")


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One class of failure in a plan.

    Attributes:
        kind: The fault kind (one of :data:`KINDS`); fixes the site.
        start: Window start.  For sites that carry a clock (the
            simulated machine, the cluster's node clock) the window is
            in simulated seconds; for clock-less sites (EM fits, service
            calls, persistence writes) it is the site-local event index.
        end: Window end (exclusive); ``inf`` means "until the run ends".
        probability: Per-event firing probability inside the window,
            drawn from the spec's own seeded stream.
        magnitude: Kind-specific severity (see the module table).
        target: Restrict the fault to one victim (a tenant name);
            empty string means any/all.
        max_events: Cap on total firings; ``None`` is unlimited.
            Ignored for windowed kinds, which describe a state.
    """

    kind: str
    start: float = 0.0
    end: float = math.inf
    probability: float = 1.0
    magnitude: float = 1.0
    target: str = ""
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KIND_SITES:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {KINDS}")
        if not (0.0 <= self.probability <= 1.0):
            raise FaultPlanError(
                f"{self.kind}: probability must be in [0, 1], "
                f"got {self.probability}")
        if self.start < 0 or self.end < self.start:
            raise FaultPlanError(
                f"{self.kind}: window [{self.start}, {self.end}) is invalid")
        if self.max_events is not None and self.max_events < 1:
            raise FaultPlanError(
                f"{self.kind}: max_events must be >= 1 or None, "
                f"got {self.max_events}")

    @property
    def site(self) -> str:
        """The injection site this fault strikes (fixed by the kind)."""
        return KIND_SITES[self.kind]

    @property
    def windowed(self) -> bool:
        """Whether this fault is a window state, not a per-event firing."""
        return self.kind in WINDOWED_KINDS

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        if self.start:
            out["start"] = self.start
        if math.isfinite(self.end):
            out["end"] = self.end
        if self.probability != 1.0:
            out["probability"] = self.probability
        if self.magnitude != 1.0:
            out["magnitude"] = self.magnitude
        if self.target:
            out["target"] = self.target
        if self.max_events is not None:
            out["max_events"] = self.max_events
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault spec must be an object, got {data!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(
                f"fault spec has unknown fields {sorted(unknown)}")
        if "kind" not in data:
            raise FaultPlanError("fault spec is missing 'kind'")
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A named, seeded collection of fault specs.

    Attributes:
        name: Plan identifier (shows up in reports and metrics).
        seed: Base seed; every spec's firing stream derives from it
            stably, so a plan replays identically.
        specs: The fault specs, in a stable order (the order seeds the
            per-spec streams, so it is part of the plan's identity).
    """

    name: str
    seed: int = 0
    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise FaultPlanError(
                f"plan name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise FaultPlanError(
                    f"plan specs must be FaultSpec instances, got {spec!r}")

    @property
    def kinds(self) -> Tuple[str, ...]:
        """The distinct fault kinds this plan exercises, sorted."""
        return tuple(sorted({spec.kind for spec in self.specs}))

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps({
            "name": self.name,
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in self.specs],
        }, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultPlanError(f"unparseable fault plan: {exc}") from exc
        if not isinstance(data, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        specs = data.get("specs", [])
        if not isinstance(specs, Sequence) or isinstance(specs, str):
            raise FaultPlanError("fault plan 'specs' must be a list")
        return cls(
            name=data.get("name", ""),
            seed=int(data.get("seed", 0)),
            specs=tuple(FaultSpec.from_dict(s) for s in specs),
        )
