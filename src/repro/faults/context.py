"""The ambient fault-injection context.

Injection hooks live deep in the stack (the machine's measurement path,
the EM engine, the service client) where no constructor can thread an
injector through without distorting the paper-facing APIs.  The same
pattern :mod:`repro.obs` uses for observability applies: one injector
is installed into a :mod:`contextvars` variable and hooks read it
through :func:`get_injector`::

    from repro.faults import FaultInjector, get_plan, use

    with use(FaultInjector(get_plan("default"))) as injector:
        controller.run(...)
    print(injector.fired_counts)

The default is :data:`~repro.faults.injector.NULL_INJECTOR`: hooks cost
one contextvar lookup plus an empty-tuple return, draw no random
numbers, and perturb nothing — the fault-free path stays bit-identical.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Iterator, Optional

from repro.faults.injector import NULL_INJECTOR, FaultInjector

__all__ = ["get_injector", "use", "NULL_INJECTOR"]

_STATE: contextvars.ContextVar = contextvars.ContextVar(
    "repro_fault_injector", default=NULL_INJECTOR)


def get_injector():
    """The ambient fault injector (the null injector when disabled)."""
    return _STATE.get()


@contextlib.contextmanager
def use(injector: Optional[FaultInjector]) -> Iterator:
    """Install ``injector`` as the ambient injector for the block.

    ``None`` leaves the current injector in place (handy for optional
    wiring, mirroring :func:`repro.obs.use`).
    """
    if injector is None:
        yield _STATE.get()
        return
    token = _STATE.set(injector)
    try:
        yield injector
    finally:
        _STATE.reset(token)
