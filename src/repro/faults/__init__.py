"""repro.faults: deterministic, seedable fault injection.

The framework has three pieces:

* :mod:`repro.faults.plan` — typed :class:`FaultSpec` / named, seeded
  :class:`FaultPlan` (JSON round-trippable).
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which
  evaluates a plan deterministically at the injection sites threaded
  through the stack (machine measurement, telemetry, EM, estimators,
  the service client, persistence writes, the cluster coordinator).
* :mod:`repro.faults.context` — the ambient contextvar install
  (:func:`use` / :func:`get_injector`), mirroring :mod:`repro.obs`;
  the default :data:`NULL_INJECTOR` keeps the fault-free path
  bit-identical and allocation-free.

Shipped plans live in :mod:`repro.faults.plans`; the ``default`` plan
covers the entire fault taxonomy and is what ``repro chaos`` and the
acceptance tests run.
"""

from repro.faults.context import NULL_INJECTOR, get_injector, use
from repro.faults.injector import FaultInjector, stable_seed
from repro.faults.plan import KIND_SITES, KINDS, SITES, FaultPlan, FaultSpec
from repro.faults.plans import default_plan, get_plan, plan_names

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "KINDS",
    "KIND_SITES",
    "SITES",
    "NULL_INJECTOR",
    "default_plan",
    "get_injector",
    "get_plan",
    "plan_names",
    "stable_seed",
    "use",
]
