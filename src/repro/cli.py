"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-benchmarks`` — the 25-benchmark suite with suite membership.
* ``show-benchmark NAME`` — one profile's behavioural parameters.
* ``estimate`` — sample a benchmark and print each approach's accuracy.
* ``optimize`` — run a benchmark at a utilization demand and report
  energy against race-to-idle and the true optimum.
* ``reproduce`` — regenerate a paper figure/table and print its rows
  (``fig1 fig5 fig6 fig11 fig12 table1``).
* ``cluster`` — co-schedule several benchmarks on one node under a
  global power cap and compare the joint allocator against the
  per-app-static-cap and race-to-idle baselines (docs/CLUSTER.md).
* ``hetero`` — run the suite on an asymmetric big.LITTLE node with an
  offload device and compare the hetero-aware pipeline (transfer
  priors, full per-cluster space) against a homogeneous-ignorant
  baseline; ``--allocation`` water-fills a power cap across
  per-cluster tenants instead (docs/PLATFORMS.md).
* ``serve`` — run the multi-tenant estimation service (see
  docs/SERVICE.md); prints ``SERVING <address>`` once listening.
* ``request`` — send one operation to a running service and print the
  JSON response.
* ``shard`` — spin up an N-shard fleet (docs/SHARDING.md), route demo
  requests by tenant key over the negotiated wire, and dump per-shard
  routing and metrics as JSON.
* ``obs summarize PATH [PATH ...]`` — render one or more JSONL trace
  shards (written with ``--trace``, by workers, or by a server) as one
  merged span tree with per-name aggregates; warns about orphans.
* ``obs critical-path PATH [PATH ...]`` — the heaviest root-to-leaf
  chain through the merged trace.
* ``obs slo PATH [PATH ...]`` — evaluate the default SLOs over one or
  more metrics JSON files (written with ``--metrics``).

Every command accepts ``--seed`` for reproducibility and ``--space``
(``paper`` = 1024 configurations, ``cores`` = the Section 2 32-config
space).  ``estimate``, ``optimize``, ``reproduce``, ``cluster``,
``chaos`` and ``serve`` also accept ``--trace PATH`` (record spans to
a JSONL file), ``--metrics PATH`` (write the metrics snapshot as JSON)
and ``--slo PATH`` (write the SLO report as JSON).  The sweep-shaped
``reproduce`` targets accept ``--workers N`` to fan cells across
processes (see docs/PARALLELISM.md); results are identical for any
worker count, traced or not.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np

from repro.core.accuracy import accuracy
from repro.experiments import harness
from repro.experiments.harness import default_context, format_table
from repro.obs import Observability, read_trace, use, write_trace
from repro.optimize.lp import EnergyMinimizer
from repro.workloads.suite import SUITE_MEMBERSHIP, get_benchmark, paper_suite


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record spans to a JSONL trace file")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="write the metrics snapshot as JSON")
    parser.add_argument("--slo", metavar="PATH", default=None,
                        help="write the SLO report as JSON")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LEO (ASPLOS 2015) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-benchmarks",
                   help="list the 25-benchmark suite")

    show = sub.add_parser("show-benchmark",
                          help="show one benchmark's profile")
    show.add_argument("name")

    estimate = sub.add_parser(
        "estimate", help="estimate a benchmark's tradeoff curves")
    estimate.add_argument("--benchmark", default="kmeans")
    estimate.add_argument("--samples", type=int, default=20)
    estimate.add_argument("--space", choices=("paper", "cores"),
                          default="paper")
    estimate.add_argument("--seed", type=int, default=0)
    _add_obs_arguments(estimate)

    optimize = sub.add_parser(
        "optimize", help="minimize energy for a utilization demand")
    optimize.add_argument("--benchmark", default="kmeans")
    optimize.add_argument("--utilization", type=float, default=0.5)
    optimize.add_argument("--deadline", type=float, default=100.0)
    optimize.add_argument("--estimator", default="leo")
    optimize.add_argument("--samples", type=int, default=20)
    optimize.add_argument("--space", choices=("paper", "cores"),
                          default="paper")
    optimize.add_argument("--seed", type=int, default=0)
    _add_obs_arguments(optimize)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate a paper figure or table")
    reproduce.add_argument("target",
                           choices=("fig1", "fig5", "fig6", "fig11",
                                    "fig12", "table1"))
    reproduce.add_argument("--seed", type=int, default=0)
    reproduce.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="processes for the sweep targets (fig5/fig6/fig11/fig12); "
             "default: the REPRO_WORKERS environment variable, else 1 "
             "(serial); results are identical for any worker count")
    _add_obs_arguments(reproduce)

    cluster = sub.add_parser(
        "cluster",
        help="co-schedule benchmarks under a power cap (docs/CLUSTER.md)")
    cluster.add_argument(
        "--benchmarks", default=None, metavar="A,B,C",
        help="comma-separated co-resident benchmarks "
             "(default: fluidanimate,kmeans,blackscholes)")
    cluster.add_argument(
        "--utilizations", default=None, metavar="U1,U2,U3",
        help="per-tenant demanded fraction of partition capacity "
             "(default: 0.9,0.25,0.35)")
    cluster.add_argument(
        "--caps", default=None, metavar="W1,W2",
        help="comma-separated power caps in watts "
             "(default: 260,240,225)")
    cluster.add_argument("--deadline", type=float, default=40.0,
                         help="shared tenant deadline in seconds")
    cluster.add_argument("--space", choices=("paper", "cores"),
                         default="cores")
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="processes for the cap x policy cells; results are "
             "identical for any worker count")
    _add_obs_arguments(cluster)

    hetero = sub.add_parser(
        "hetero",
        help="hetero-aware vs homogeneous-ignorant energy on an "
             "asymmetric node (docs/PLATFORMS.md)")
    hetero.add_argument(
        "--benchmarks", default=None, metavar="A,B,C",
        help="comma-separated benchmarks (default: the full suite)")
    hetero.add_argument("--deadline", type=float, default=None,
                        help="deadline window in seconds (default: 30)")
    hetero.add_argument("--utilization", type=float, default=None,
                        help="demanded fraction of the baseline "
                             "subspace's capacity (default: 0.7)")
    hetero.add_argument("--samples", type=int, default=None,
                        help="calibration samples per cell (default: 48)")
    hetero.add_argument("--seed", type=int, default=0)
    hetero.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="processes for the benchmark x mode cells; results are "
             "identical for any worker count")
    hetero.add_argument(
        "--allocation", action="store_true",
        help="water-fill a power cap across per-cluster tenants "
             "instead of the energy sweep")
    hetero.add_argument(
        "--caps", default=None, metavar="W1,W2",
        help="comma-separated caps for --allocation "
             "(default: 170,150,130)")
    _add_obs_arguments(hetero)

    chaos = sub.add_parser(
        "chaos",
        help="run a workload under a fault plan (docs/RESILIENCE.md)")
    chaos.add_argument("--benchmark", default="kmeans")
    chaos.add_argument(
        "--plan", default="default",
        help="shipped fault plan name (none, default, sensors, "
             "estimation, service, cluster, shard-loss)")
    chaos.add_argument("--windows", type=int, default=4,
                       help="back-to-back deadline windows per pass")
    chaos.add_argument("--utilization", type=float, default=0.5)
    chaos.add_argument("--deadline", type=float, default=25.0,
                       help="seconds per window")
    chaos.add_argument("--estimator", default="leo")
    chaos.add_argument("--space", choices=("paper", "cores"),
                       default="cores")
    chaos.add_argument("--seed", type=int, default=0)
    _add_obs_arguments(chaos)

    soak = sub.add_parser(
        "soak",
        help="long-horizon chaos soak on the virtual clock "
             "(docs/SOAK.md)")
    soak.add_argument(
        "--plan", default="default",
        help="soak profile (none, quiet, default, heavy)")
    soak.add_argument(
        "--horizon", default="2d", metavar="SPAN",
        help="simulated length: seconds, or days with a 'd' suffix "
             "(default 2d)")
    soak.add_argument("--tenants", type=int, default=16,
                      help="cluster tenants per burst")
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument("--cap", type=float, default=None, metavar="W",
                      help="node power cap for the cluster bursts")
    soak.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the full soak report (with fingerprint) as JSON")
    soak.add_argument(
        "--slo", default=None, metavar="PATH",
        help="write the soak's SLO report as JSON")

    serve = sub.add_parser(
        "serve", help="run the estimation service (docs/SERVICE.md)")
    serve.add_argument(
        "--listen", default="127.0.0.1:0", metavar="ADDR",
        help="host:port (port 0 = ephemeral) or unix:/path/to.sock")
    serve.add_argument(
        "--registry", default=None, metavar="DIR",
        help="model-registry directory enabling warm starts; omit for a "
             "stateless server")
    serve.add_argument("--estimator", default="leo",
                       help="default estimator for requests that omit one")
    serve.add_argument("--max-pending", type=int, default=8, metavar="K",
                       help="admission bound: request K+1 is shed")
    serve.add_argument("--deadline", type=float, default=30.0, metavar="S",
                       help="default per-request deadline in seconds")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="handler thread-pool width")
    _add_obs_arguments(serve)

    request = sub.add_parser(
        "request", help="send one operation to a running service")
    request.add_argument("address", metavar="ADDR",
                         help="host:port or unix:/path (from SERVING line)")
    request.add_argument("op", help="operation name, e.g. ping, "
                                    "estimate, calibrate-report")
    request.add_argument("--payload", default=None, metavar="JSON",
                         help="operation payload as a JSON object")
    request.add_argument("--deadline", type=float, default=None,
                         metavar="S", help="per-request deadline (seconds)")
    request.add_argument("--timeout", type=float, default=60.0,
                         metavar="S", help="socket timeout (seconds)")
    request.add_argument("--retries", type=int, default=2)
    request.add_argument("--retry-overloaded", action="store_true",
                         help="retry with backoff when the request is shed")

    shard = sub.add_parser(
        "shard",
        help="run an N-shard fleet demo and dump per-shard metrics "
             "(docs/SHARDING.md)")
    shard.add_argument("--shards", type=int, default=3, metavar="N",
                       help="broker count in the fleet")
    shard.add_argument("--replicas", type=int, default=1, metavar="R",
                       help="registry read replicas per shard")
    shard.add_argument("--tenants", type=int, default=8, metavar="T",
                       help="distinct tenant keys to route")
    shard.add_argument("--requests", type=int, default=4, metavar="K",
                       help="ping requests per tenant")
    shard.add_argument("--wire", choices=("auto", "json", "binary"),
                       default="auto",
                       help="wire protocol: auto negotiates binary "
                            "frames, json forces the v1 protocol")
    shard.add_argument("--max-pending", type=int, default=32, metavar="K",
                       help="per-shard admission bound")
    shard.add_argument("--seed", type=int, default=0)

    obs = sub.add_parser(
        "obs", help="inspect recorded observability artifacts")
    obs.add_argument("action",
                     choices=("summarize", "critical-path", "slo"))
    obs.add_argument("path", nargs="+",
                     help="artifact files: JSONL trace shard(s) for "
                          "summarize/critical-path, metrics JSON "
                          "file(s) for slo")

    return parser


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_list_benchmarks() -> int:
    rows = [[p.name, SUITE_MEMBERSHIP[p.name], p.base_rate,
             p.scaling_peak, p.memory_intensity, p.io_intensity]
            for p in paper_suite()]
    print(format_table(
        ["benchmark", "suite", "base hb/s", "scaling peak",
         "memory", "io"],
        rows, title="The 25-benchmark suite (Section 6.1)"))
    return 0


def _cmd_show_benchmark(name: str) -> int:
    try:
        profile = get_benchmark(name)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 1
    for field in ("name", "base_rate", "serial_fraction", "scaling_peak",
                  "contention_slope", "memory_intensity", "io_intensity",
                  "ht_efficiency", "memory_parallelism", "activity_factor",
                  "noise"):
        print(f"{field:20s} {getattr(profile, field)}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    ctx = default_context(space_kind=args.space, seed=args.seed)
    try:
        view = ctx.dataset.leave_one_out(args.benchmark)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 1
    truth = ctx.truth.leave_one_out(args.benchmark)
    indices = harness.random_indices(len(ctx.space), args.samples,
                                     args.seed)
    rate_obs, power_obs = harness.sample_target(
        ctx, ctx.profile(args.benchmark), indices, seed_offset=args.seed)

    rows = []
    for approach in harness.APPROACHES:
        estimate = harness.estimate_curves(ctx, view, indices, rate_obs,
                                           power_obs, approach)
        if not estimate.feasible:
            rows.append([approach, "infeasible", "infeasible", "-"])
            continue
        rows.append([
            approach,
            accuracy(estimate.rates, truth.true_rates),
            accuracy(estimate.powers, truth.true_powers),
            int(np.argmax(estimate.rates)),
        ])
    rows.append(["(truth)", 1.0, 1.0, int(np.argmax(truth.true_rates))])
    print(format_table(
        ["approach", "perf accuracy", "power accuracy", "peak config"],
        rows,
        title=(f"{args.benchmark} on the {args.space} space, "
               f"{args.samples} samples of {len(ctx.space)}")))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    if not 0 < args.utilization <= 1:
        print("--utilization must be in (0, 1]", file=sys.stderr)
        return 1
    from repro.estimators.registry import create_estimator
    from repro.runtime.controller import RuntimeController, TradeoffEstimate
    from repro.runtime.race_to_idle import RaceToIdleController
    from repro.runtime.sampling import RandomSampler

    ctx = default_context(space_kind=args.space, seed=args.seed)
    try:
        view = ctx.dataset.leave_one_out(args.benchmark)
    except KeyError as exc:
        print(exc, file=sys.stderr)
        return 1
    truth = ctx.truth.leave_one_out(args.benchmark)
    profile = ctx.profile(args.benchmark)
    machine = ctx.machine(seed_offset=args.seed + 1)

    indices = harness.random_indices(len(ctx.space), args.samples,
                                     args.seed)
    rate_obs, power_obs = harness.sample_target(ctx, profile, indices,
                                                seed_offset=args.seed)
    estimate = harness.estimate_curves(ctx, view, indices, rate_obs,
                                       power_obs, args.estimator)
    if not estimate.feasible:
        print(f"estimator {args.estimator!r} cannot fit "
              f"{args.samples} samples", file=sys.stderr)
        return 1

    controller = RuntimeController(
        machine=machine, space=ctx.space,
        estimator=create_estimator(args.estimator),
        prior_rates=view.prior_rates, prior_powers=view.prior_powers,
        sampler=RandomSampler(seed=args.seed))
    work = args.utilization * float(truth.true_rates.max()) * args.deadline
    report = controller.run(
        profile, work, args.deadline,
        TradeoffEstimate(rates=estimate.rates, powers=estimate.powers,
                         estimator_name=args.estimator))

    racer = RaceToIdleController(machine, ctx.space)
    race = racer.run(profile, work, args.deadline)
    optimal = EnergyMinimizer(truth.true_rates, truth.true_powers,
                              ctx.idle_power())
    optimal_energy = optimal.min_energy(work, args.deadline)

    rows = [
        [args.estimator, report.energy, report.energy / optimal_energy,
         report.met_target],
        ["race-to-idle", race.energy, race.energy / optimal_energy,
         race.met_target],
        ["optimal", optimal_energy, 1.0, True],
    ]
    print(format_table(
        ["approach", "energy (J)", "vs optimal", "demand met"],
        rows,
        title=(f"{args.benchmark} at {args.utilization:.0%} utilization, "
               f"{args.deadline:g}s deadline")))
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    if args.target == "fig1":
        from repro.experiments.motivation import motivation_experiment
        ctx = default_context(space_kind="cores", seed=args.seed)
        result = motivation_experiment(ctx)
        rows = [[a, result.estimated_peak(a),
                 float(np.mean(result.energy[a])
                       / np.mean(result.energy["optimal"]))]
                for a in result.est_rates]
        print(format_table(
            ["approach", "estimated peak", "mean energy / optimal"], rows,
            title=f"Figure 1 (true peak = {result.true_peak()} cores)"))
        return 0
    if args.target in ("fig5", "fig6"):
        from repro.experiments.estimation import accuracy_experiment
        ctx = default_context(space_kind="paper", seed=args.seed)
        result = accuracy_experiment(ctx, trials=1, workers=args.workers)
        table = result.perf if args.target == "fig5" else result.power
        means = (result.mean_perf() if args.target == "fig5"
                 else result.mean_power())
        rows = [[name] + [table[name][a] for a in harness.APPROACHES]
                for name in sorted(table)]
        rows.append(["MEAN"] + [means[a] for a in harness.APPROACHES])
        label = "performance" if args.target == "fig5" else "power"
        print(format_table(["benchmark"] + list(harness.APPROACHES), rows,
                           title=f"Figure {args.target[-1]}: {label} "
                                 f"accuracy"))
        return 0
    if args.target == "fig11":
        from repro.experiments.energy import (energy_experiment,
                                              overall_normalized,
                                              summarize_normalized)
        ctx = default_context(space_kind="paper", seed=args.seed)
        curves = energy_experiment(ctx, num_utilizations=8,
                                   workers=args.workers)
        table = summarize_normalized(curves)
        overall = overall_normalized(curves)
        order = ("leo", "online", "offline", "race-to-idle")
        rows = [[name] + [scores[a] for a in order]
                for name, scores in sorted(table.items())]
        rows.append(["MEAN"] + [overall[a] for a in order])
        print(format_table(["benchmark"] + list(order), rows,
                           title="Figure 11: energy normalized to optimal"))
        return 0
    if args.target == "fig12":
        from repro.experiments.sensitivity import sensitivity_experiment
        ctx = default_context(space_kind="paper", seed=args.seed)
        result = sensitivity_experiment(
            ctx, sizes=(0, 5, 10, 15, 20, 30),
            benchmarks=ctx.benchmark_names[:8], workers=args.workers)
        rows = [[s, result.perf["leo"][i], result.perf["online"][i]]
                for i, s in enumerate(result.sizes)]
        print(format_table(["samples", "leo perf acc", "online perf acc"],
                           rows, title="Figure 12: sample-size sweep"))
        return 0
    # table1
    from repro.experiments.dynamic import dynamic_experiment, table1_rows
    ctx = default_context(space_kind="paper", seed=args.seed)
    result = dynamic_experiment(ctx)
    print(format_table(["Algorithm", "Phase#1", "Phase#2", "Overall"],
                       table1_rows(result),
                       title="Table 1: energy relative to optimal"))
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from repro.experiments.cluster_energy import (
        DEFAULT_BENCHMARKS,
        DEFAULT_CAPS,
        DEFAULT_UTILIZATIONS,
        cluster_energy_experiment,
        summarize_runs,
    )

    def _split(raw: Optional[str], default, cast):
        if raw is None:
            return default
        return tuple(cast(part) for part in raw.split(",") if part)

    try:
        benchmarks = _split(args.benchmarks, DEFAULT_BENCHMARKS, str)
        utilizations = _split(args.utilizations, DEFAULT_UTILIZATIONS, float)
        caps = _split(args.caps, DEFAULT_CAPS, float)
        if len(benchmarks) != len(utilizations):
            raise ValueError(
                f"{len(benchmarks)} benchmarks need {len(benchmarks)} "
                f"utilizations, got {len(utilizations)}")
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 1
    ctx = default_context(space_kind=args.space, seed=args.seed)
    try:
        runs = cluster_energy_experiment(
            ctx, benchmarks=benchmarks, utilizations=utilizations,
            caps=caps, deadline=args.deadline, workers=args.workers)
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 1
    print(format_table(
        ["cap (W)", "policy", "energy (J)", "mJ/heartbeat",
         "peak (W)", "cap ok", "missed deadlines"],
        summarize_runs(runs),
        title=(f"{', '.join(benchmarks)} co-scheduled for "
               f"{args.deadline:g}s")))
    return 0


def _cmd_hetero(args: argparse.Namespace) -> int:
    import repro.experiments.hetero_energy as hx

    if args.allocation:
        caps = (tuple(float(p) for p in args.caps.split(",") if p)
                if args.caps else (170.0, 150.0, 130.0))
        try:
            rows = [[r.cap_watts, r.joint_watts, r.joint_feasible,
                     r.joint_mode, r.static_watts, r.static_feasible]
                    for r in hx.hetero_cap_allocation(caps=caps,
                                                      seed=args.seed)]
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 1
        print(format_table(
            ["cap (W)", "joint (W)", "joint ok", "mode",
             "static (W)", "static ok"],
            rows, title="per-cluster tenants under a global cap"))
        return 0

    benchmarks = (tuple(p for p in args.benchmarks.split(",") if p)
                  if args.benchmarks else None)
    kwargs = {}
    if args.deadline is not None:
        kwargs["deadline"] = args.deadline
    if args.utilization is not None:
        kwargs["utilization"] = args.utilization
    if args.samples is not None:
        kwargs["samples"] = args.samples
    try:
        runs = hx.hetero_energy_experiment(
            benchmarks=benchmarks, seed=args.seed,
            workers=args.workers, **kwargs)
    except (KeyError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 1
    savings = hx.savings_summary(runs)
    print(format_table(
        ["benchmark", "hetero (J)", "homogeneous (J)", "savings (%)",
         "hetero met", "baseline met"],
        hx.summarize_runs(runs),
        title="energy per completed demand, hetero vs homogeneous"))
    if savings:
        mean = float(np.mean(list(savings.values())))
        print(f"mean savings: {100.0 * mean:.1f}%")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    if not 0 < args.utilization <= 1:
        print("--utilization must be in (0, 1]", file=sys.stderr)
        return 1
    from repro.errors import FaultPlanError
    from repro.experiments.chaos import chaos_run

    ctx = default_context(space_kind=args.space, seed=args.seed)
    try:
        report = chaos_run(
            ctx, benchmark=args.benchmark, plan=args.plan, seed=args.seed,
            windows=args.windows, utilization=args.utilization,
            deadline=args.deadline, estimator=args.estimator)
    except (KeyError, FaultPlanError) as exc:
        print(exc, file=sys.stderr)
        return 1
    rows = [
        ["survived", report.survived if not report.error
         else f"{report.survived} ({report.error})"],
        ["windows completed", f"{report.windows_run}/{report.windows}"],
        ["energy (J)", f"{report.fault_energy:.1f} "
                       f"(baseline {report.baseline_energy:.1f})"],
        ["energy overhead", f"{report.energy_overhead:+.1%}"],
        ["missed targets", f"{report.violations} "
                           f"(baseline {report.baseline_violations})"],
        ["calibration failures", report.calibration_failures],
        ["demotions / promotions",
         f"{report.demotions} / {report.promotions}"],
        ["final tier", report.final_tier],
        ["recovered to tier 0", report.recovered],
        ["faults injected",
         ", ".join(f"{kind} x{n}"
                   for kind, n in sorted(report.fault_counts.items()))
         or "none"],
    ]
    print(format_table(
        ["", ""], rows,
        title=(f"{args.benchmark} under the {args.plan!r} fault plan "
               f"({args.windows} x {args.deadline:g}s windows, "
               f"seed {args.seed})")))
    return 0 if report.survived else 1


def _parse_horizon(text: str) -> float:
    if text.endswith(("d", "D")):
        return float(text[:-1]) * 86400.0
    return float(text)


def _cmd_soak(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.errors import FaultPlanError
    from repro.soak import SoakConfig, soak_run

    try:
        horizon = _parse_horizon(args.horizon)
    except ValueError:
        print(f"--horizon must be seconds or '<days>d', "
              f"got {args.horizon!r}", file=sys.stderr)
        return 1
    overrides = {"plan": args.plan, "horizon_s": horizon,
                 "tenants": args.tenants, "seed": args.seed}
    if args.cap is not None:
        overrides["cap_watts"] = args.cap
    try:
        report = soak_run(SoakConfig(**overrides))
    except (FaultPlanError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 1
    rows = [
        ["passed", report.passed],
        ["segments", report.segments_run],
        ["simulated", f"{report.simulated_s / 86400.0:.2f} days "
                      f"in {report.wall_s:.1f}s wall "
                      f"({report.sim_per_wall:.0f}x)"],
        ["deadline hit rate", f"{report.deadline_hit_rate:.1%}"],
        ["availability", f"{report.availability:.1%}"],
        ["fleet probes", f"{report.probes_ok} ok / "
                         f"{report.probes_shed} shed / "
                         f"{report.probes_failed} failed"],
        ["resume probes", report.resume_probes],
        ["canary demotions / promotions",
         f"{report.canary_demotions} / {report.canary_promotions}"],
        ["canary final tier", report.canary_final_tier],
        ["energy regret (J)", f"{report.energy_regret_j:.0f}"],
        ["faults injected",
         ", ".join(f"{kind} x{n}"
                   for kind, n in sorted(report.fault_counts.items()))
         or "none"],
        ["fingerprint", report.fingerprint[:16]],
    ]
    print(format_table(
        ["", ""], rows,
        title=(f"{args.plan!r} soak, {args.tenants} tenants, "
               f"seed {args.seed}")))
    if report.incidents:
        print()
        print(format_table(
            ["incident", "segments", "regret (J)", "MTTR (h)",
             "recovered"],
            [[inc.name, inc.segments, f"{inc.energy_regret_j:.0f}",
              (f"{inc.mttr_s / 3600.0:.1f}"
               if inc.mttr_s is not None else "-"),
              "yes" if inc.recovered else "NO"]
             for inc in report.incidents],
            title="incidents"))
    if report.violations:
        print()
        print(format_table(
            ["invariant", "at (s)", "detail"],
            [[v.invariant, f"{v.at_s:.0f}", v.detail]
             for v in report.violations],
            title="INVARIANT VIOLATIONS"))
    if args.json is not None:
        target = pathlib.Path(args.json)
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = report.to_dict()
        payload["fingerprint"] = report.fingerprint
        target.write_text(json.dumps(payload, indent=2,
                                     default=float) + "\n")
        print(f"report -> {args.json}", file=sys.stderr)
    if args.slo is not None:
        target = pathlib.Path(args.slo)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(report.slo, indent=2,
                                     default=float) + "\n")
        print(f"slo -> {args.slo}", file=sys.stderr)
    return 0 if report.passed else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.obs import MetricsRegistry
    from repro.service import (EstimationService, ModelRegistry,
                               ServiceAddress, ServiceServer)
    try:
        address = ServiceAddress.parse(args.listen)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 1
    registry = (ModelRegistry(args.registry)
                if args.registry is not None else None)
    service = EstimationService(registry=registry,
                                default_estimator=args.estimator)
    if args.trace is not None:
        observability = Observability.recording()
    else:
        observability = Observability(metrics=MetricsRegistry())
    server = ServiceServer(service, address,
                           max_pending=args.max_pending,
                           default_deadline_s=args.deadline,
                           max_workers=args.workers,
                           observability=observability)

    def _ready(bound: object) -> None:
        # The launch handshake: harnesses wait for this exact line to
        # learn the ephemeral port, so it must flush immediately.
        print(f"SERVING {bound}", flush=True)

    code = 0
    try:
        asyncio.run(server.serve(ready=_ready))
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        print(exc, file=sys.stderr)
        code = 1
    if args.trace is not None:
        spans = list(observability.tracer.spans) + server.request_spans
        write_trace(args.trace, spans)
        print(f"trace: {len(spans)} spans -> {args.trace}",
              file=sys.stderr)
    if args.metrics is not None:
        server.metrics.write_json(args.metrics)
        print(f"metrics -> {args.metrics}", file=sys.stderr)
    if args.slo is not None:
        _write_slo_report(observability, args.slo)
    return code


def _cmd_request(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceAddress, ServiceClient, ServiceError
    try:
        address = ServiceAddress.parse(args.address)
        payload = json.loads(args.payload) if args.payload else {}
        if not isinstance(payload, dict):
            raise ValueError("--payload must be a JSON object")
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 1
    client = ServiceClient(address, timeout=args.timeout,
                           retries=args.retries,
                           retry_overloaded=args.retry_overloaded)
    try:
        result = client.call(args.op, payload, deadline_s=args.deadline)
    except ServiceError as exc:
        print(json.dumps({"ok": False,
                          "error": {"type": exc.code, "message": str(exc),
                                    "details": exc.details}}, indent=2))
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"cannot reach {address}: {exc}", file=sys.stderr)
        return 1
    finally:
        client.close()
    print(json.dumps({"ok": True, "payload": result}, indent=2))
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    import json

    from repro.errors import ShardUnavailable
    from repro.shard import ShardFleet, ShardedServiceClient
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 1
    rng = np.random.default_rng(args.seed)
    with ShardFleet(num_shards=args.shards,
                    replicas_per_shard=args.replicas,
                    max_pending=args.max_pending) as fleet:
        with ShardedServiceClient(fleet.addresses,
                                  wire=args.wire) as client:
            routed: dict = {shard_id: 0 for shard_id in fleet.shard_ids}
            shed = 0
            for index in range(args.tenants):
                tenant = f"tenant-{index}"
                shard_id = client.router.owner(tenant)
                for _ in range(args.requests):
                    try:
                        client.ping(echo=int(rng.integers(1 << 16)),
                                    tenant_key=tenant)
                        routed[shard_id] += 1
                    except ShardUnavailable:
                        shed += 1
            report = {
                "shards": {
                    shard_id: {
                        "address": str(address),
                        "healthy": client.router.is_up(shard_id),
                        "requests": routed[shard_id],
                    }
                    for shard_id, address in fleet.addresses.items()
                },
                "wire": {shard_id: shard_client.wire_mode
                         for shard_id, shard_client
                         in client._pool.items()},
                "shed": shed,
                "replication_lag_s": fleet.replication_lag(),
                "metrics": client.metrics(),
            }
    print(json.dumps(report, indent=2, default=float))
    return 0 if shed == 0 else 1


def _read_span_shards(paths: List[str]):
    """Merge JSONL trace shards, or ``None`` after printing the error."""
    from repro.obs import read_shards
    try:
        spans = read_shards(paths)
    except (OSError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return None
    if not spans:
        print(f"no spans in {', '.join(paths)}", file=sys.stderr)
        return None
    return spans


def _cmd_obs_summarize(paths: List[str]) -> int:
    from repro.obs import orphan_spans
    from repro.reporting.span_tree import render_span_tree, summarize_spans
    spans = _read_span_shards(paths)
    if spans is None:
        return 1
    try:
        print(render_span_tree(spans))
        print()
        rows = [[name, int(agg["count"]), agg["total_s"], agg["mean_s"]]
                for name, agg in summarize_spans(spans).items()]
        shards = (f"{len(paths)} shards" if len(paths) > 1
                  else paths[0])
        print(format_table(["span", "count", "total s", "mean s"], rows,
                           title=f"{len(spans)} spans ({shards})"))
        orphans = orphan_spans(spans)
        if orphans:
            # A missing shard shows up here, not as silently flatter
            # trees: every orphan names the parent that never arrived.
            print(f"warning: {len(orphans)} orphaned spans "
                  f"(parent outside the merged shards): "
                  f"{sorted({s.name for s in orphans})}",
                  file=sys.stderr)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.  Redirect
        # stdout to devnull so the interpreter's exit flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0


def _cmd_obs_critical_path(paths: List[str]) -> int:
    from repro.reporting.span_tree import critical_path
    spans = _read_span_shards(paths)
    if spans is None:
        return 1
    path = critical_path(spans)
    if not path:
        print("no rooted spans", file=sys.stderr)
        return 1
    total = path[0].duration
    rows = []
    for depth, span in enumerate(path):
        child_time = sum(c.duration for c in path[depth + 1:depth + 2])
        rows.append(["  " * depth + span.name, span.duration,
                     span.duration - child_time,
                     100.0 * span.duration / total if total else 0.0])
    print(format_table(["span", "total s", "self s", "% of root"], rows,
                       title=f"critical path ({len(path)} spans, "
                             f"{total:.3f}s)"))
    return 0


def _cmd_obs_slo(paths: List[str]) -> int:
    import json

    from repro.obs import MetricsRegistry, SloTracker
    registry = MetricsRegistry()
    for path in paths:
        try:
            data = json.loads(open(path, encoding="utf-8").read())
        except (OSError, ValueError) as exc:
            print(exc, file=sys.stderr)
            return 1
        if not isinstance(data, dict):
            print(f"{path}: not a metrics JSON object", file=sys.stderr)
            return 1
        # ``--metrics`` files carry raw values under ``raw_histograms``
        # (the lossless dump); plain ``histograms`` summaries cannot be
        # merged, so only list-valued entries there are accepted.
        raw = data.get("raw_histograms",
                       {name: values
                        for name, values in
                        data.get("histograms", {}).items()
                        if isinstance(values, list)})
        registry.merge({
            "counters": data.get("counters", {}),
            "gauges": data.get("gauges", {}),
            "histograms": raw,
        })
    tracker = SloTracker.from_metrics(registry.dump())
    report = tracker.report()
    rows = [[s["name"], s["kind"], s["target"], s["samples"],
             s["observed"], "yes" if s["met"] else "NO",
             s["burn_rate_total"], s["budget_remaining"]]
            for s in report["objectives"]]
    print(format_table(
        ["objective", "kind", "target", "samples", "observed", "met",
         "burn rate", "budget left"], rows,
        title=f"SLOs over {len(paths)} metrics file(s)"))
    if report["events"]:
        print()
        print(format_table(
            ["event", "count"], sorted(report["events"].items()),
            title="resilience events"))
    return 0 if all(s["met"] for s in report["objectives"]) else 1


def _write_slo_report(observability: Observability, path: str) -> None:
    import json
    import pathlib

    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(observability.slo.report(), indent=2,
                                 default=float) + "\n")
    print(f"slo -> {path}", file=sys.stderr)


def _run_with_observability(command, args: argparse.Namespace) -> int:
    """Run a command, recording trace/metrics/SLO artifacts when asked."""
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    slo_path = getattr(args, "slo", None)
    if trace_path is None and metrics_path is None and slo_path is None:
        return command(args)
    observability = Observability.recording()
    with use(observability):
        code = command(args)
    if trace_path is not None:
        write_trace(trace_path, observability.tracer.spans)
        print(f"trace: {len(observability.tracer.spans)} spans "
              f"-> {trace_path}", file=sys.stderr)
    if metrics_path is not None:
        observability.metrics.write_json(metrics_path)
        print(f"metrics -> {metrics_path}", file=sys.stderr)
    if slo_path is not None:
        _write_slo_report(observability, slo_path)
    return code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list-benchmarks":
        return _cmd_list_benchmarks()
    if args.command == "show-benchmark":
        return _cmd_show_benchmark(args.name)
    if args.command == "estimate":
        return _run_with_observability(_cmd_estimate, args)
    if args.command == "optimize":
        return _run_with_observability(_cmd_optimize, args)
    if args.command == "reproduce":
        return _run_with_observability(_cmd_reproduce, args)
    if args.command == "cluster":
        return _run_with_observability(_cmd_cluster, args)
    if args.command == "hetero":
        return _run_with_observability(_cmd_hetero, args)
    if args.command == "chaos":
        return _run_with_observability(_cmd_chaos, args)
    if args.command == "soak":
        return _cmd_soak(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "request":
        return _cmd_request(args)
    if args.command == "shard":
        return _cmd_shard(args)
    if args.command == "obs":
        if args.action == "summarize":
            return _cmd_obs_summarize(args.path)
        if args.action == "critical-path":
            return _cmd_obs_critical_path(args.path)
        return _cmd_obs_slo(args.path)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
