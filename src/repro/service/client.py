"""The service client and the :class:`RemoteEstimator` adapter.

:class:`ServiceClient` speaks the JSON-lines protocol over one
connection, with automatic reconnect-and-retry (exponential backoff)
for transport failures and — optionally — for load sheds.

:class:`RemoteEstimator` implements the
:class:`~repro.estimators.base.Estimator` protocol over a client, so a
:class:`~repro.runtime.controller.RuntimeController` can be pointed at
a service **without changing a line of controller code**::

    client = ServiceClient(ServiceAddress.parse("127.0.0.1:7421"))
    controller = RuntimeController(machine, space,
                                   estimator=RemoteEstimator(client))

Because curves survive the JSON round trip bit-exactly (see
:mod:`repro.service.protocol`) and the estimators are deterministic
given the problem, a remote-backed controller run reproduces the
in-process run to the last bit — ``tests/test_service_e2e.py`` asserts
exactly that.
"""

from __future__ import annotations

import itertools
import logging
import socket
import time
from typing import Any, Dict, Optional

import numpy as np

from repro.estimators.base import (
    EstimationProblem,
    Estimator,
    InsufficientSamplesError,
)
from repro.service.protocol import (
    EstimationRejected,
    ProtocolError,
    Request,
    Response,
    ServiceAddress,
    ServiceOverloaded,
    decode_array,
    decode_frame,
    encode_array,
    encode_frame,
    problem_to_payload,
)

logger = logging.getLogger(__name__)


class ServiceClient:
    """One connection to an estimation service, with retries.

    Args:
        address: Where the service listens.
        timeout: Socket timeout per read/write (seconds).  Should exceed
            the largest ``deadline_s`` you send, so the server's own
            deadline response arrives before the socket gives up.
        retries: Transport-failure retry budget per call (reconnect and
            resend; safe because every service op is idempotent).
        backoff: Initial retry delay in seconds, doubled per attempt.
        retry_overloaded: Also retry :class:`ServiceOverloaded`
            responses (with the same backoff schedule) instead of
            surfacing them — the polite-tenant mode.
        default_deadline_s: ``deadline_s`` attached to calls that do not
            specify one; ``None`` defers to the server default.
    """

    def __init__(self, address: ServiceAddress, timeout: float = 60.0,
                 retries: int = 2, backoff: float = 0.05,
                 retry_overloaded: bool = False,
                 default_deadline_s: Optional[float] = None) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        self.address = address
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.retry_overloaded = retry_overloaded
        self.default_deadline_s = default_deadline_s
        self._ids = itertools.count(1)
        self._sock: Optional[socket.socket] = None
        self._file = None

    # -- connection management ------------------------------------------
    def _ensure_connected(self) -> None:
        if self._sock is None:
            self._sock = self.address.connect(timeout=self.timeout)
            self._file = self._sock.makefile("rb")

    def close(self) -> None:
        """Drop the connection (the next call reconnects)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- the core call --------------------------------------------------
    def call(self, op: str, payload: Optional[Dict[str, Any]] = None,
             deadline_s: Optional[float] = None) -> Dict[str, Any]:
        """Invoke one operation; returns the response payload.

        Raises the rehydrated typed :class:`~repro.service.protocol.
        ServiceError` on a failure response, after exhausting any
        applicable retries.
        """
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        attempt = 0
        while True:
            try:
                return self._call_once(op, payload or {}, deadline_s)
            except (ConnectionError, socket.timeout, OSError) as exc:
                self.close()
                if attempt >= self.retries:
                    raise
                logger.debug("retrying after transport failure",
                             extra={"fields": {"op": op, "error": str(exc),
                                               "attempt": attempt}})
            except ServiceOverloaded:
                if not self.retry_overloaded or attempt >= self.retries:
                    raise
                logger.debug("retrying after load shed",
                             extra={"fields": {"op": op,
                                               "attempt": attempt}})
            if self.backoff:
                time.sleep(self.backoff * (2 ** attempt))
            attempt += 1

    def _call_once(self, op: str, payload: Dict[str, Any],
                   deadline_s: Optional[float]) -> Dict[str, Any]:
        self._ensure_connected()
        request = Request(op=op, payload=payload,
                          request_id=next(self._ids),
                          deadline_s=deadline_s)
        self._sock.sendall(encode_frame(request.to_wire()))
        # Responses on a pipelined connection may arrive out of order;
        # drain frames until ours shows up.  (This client issues calls
        # serially, so "out of order" only means responses to requests
        # an earlier timed-out attempt abandoned.)
        while True:
            line = self._file.readline()
            if not line:
                raise ConnectionError("service closed the connection")
            response = Response.from_wire(decode_frame(line))
            if response.request_id == request.request_id:
                return response.result()
            if response.request_id is None:
                # An unkeyed protocol-error response can only refer to
                # the frame we just sent.
                response.result()
                raise ProtocolError("server rejected the frame")
            logger.debug("discarding stale response",
                         extra={"fields": {"id": response.request_id}})

    # -- op conveniences ------------------------------------------------
    def ping(self, echo: Any = None) -> Dict[str, Any]:
        return self.call("ping", {"echo": echo})

    def estimate(self, problem: EstimationProblem,
                 estimator: Optional[str] = None,
                 deadline_s: Optional[float] = None,
                 **kwargs: Any) -> np.ndarray:
        """Run a remote fit; returns the estimated curve."""
        payload: Dict[str, Any] = {"problem": problem_to_payload(problem)}
        if estimator is not None:
            payload["estimator"] = estimator
        if kwargs:
            payload["kwargs"] = kwargs
        result = self.call("estimate", payload, deadline_s=deadline_s)
        return decode_array(result["estimate"])

    def optimize(self, rates: np.ndarray, powers: np.ndarray,
                 idle_power: float, work: float, deadline: float,
                 mode: str = "deadline-energy") -> Dict[str, Any]:
        """Solve the Eq. (1) LP remotely; returns schedule and energy."""
        return self.call("optimize", {
            "rates": encode_array(rates), "powers": encode_array(powers),
            "idle_power": idle_power, "work": work, "deadline": deadline,
            "mode": mode})

    def calibrate_report(self, app: str, **options: Any) -> Dict[str, Any]:
        """Calibrate a suite application (or fetch it from the registry)."""
        return self.call("calibrate-report", dict(options, app=app))

    def registry_list(self) -> Dict[str, Any]:
        return self.call("registry-list")

    def metrics(self) -> Dict[str, Any]:
        return self.call("metrics")

    def sleep(self, seconds: float,
              deadline_s: Optional[float] = None) -> Dict[str, Any]:
        return self.call("sleep", {"seconds": seconds},
                         deadline_s=deadline_s)

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to stop (after answering)."""
        result = self.call("shutdown")
        self.close()
        return result


class RemoteEstimator(Estimator):
    """An :class:`Estimator` whose fits run on an estimation service.

    Drops into any estimator slot — :class:`~repro.runtime.controller.
    RuntimeController`, the experiment harness — with the computation
    happening server-side, where coalescing shares identical concurrent
    fits across tenants.

    Args:
        client: The connection to use (owned by the caller).
        estimator: Server-side estimator name.  Also becomes this
            adapter's :attr:`name`, so persistence keys and reports
            match the in-process equivalent.
        deadline_s: Per-fit deadline; ``None`` uses the client default.
    """

    def __init__(self, client: ServiceClient, estimator: str = "leo",
                 deadline_s: Optional[float] = None, **kwargs: Any) -> None:
        self.client = client
        self.remote_name = estimator
        self.name = estimator
        self.deadline_s = deadline_s
        self.kwargs = kwargs

    def estimate(self, problem: EstimationProblem) -> np.ndarray:
        try:
            return self.client.estimate(problem,
                                        estimator=self.remote_name,
                                        deadline_s=self.deadline_s,
                                        **self.kwargs)
        except EstimationRejected as exc:
            # The controller's ill-posed-fit handling (keep the previous
            # estimate, try a different approach) must work unchanged
            # against a remote backend.
            raise InsufficientSamplesError(str(exc)) from exc
