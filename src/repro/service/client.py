"""The service client and the :class:`RemoteEstimator` adapter.

:class:`ServiceClient` speaks the wire protocol over one connection,
with automatic reconnect-and-retry (exponential backoff) for transport
failures and — optionally — for load sheds.  The wire encoding is
JSON-lines (protocol v1) by default; ``wire="auto"`` negotiates the
binary protocol v2 per server — the client probes with one binary ping
and falls back to JSON-lines when the server answers in JSON — so a
binary-preferring client against an old broker degrades transparently.
Both encodings round-trip float64 bit-exactly, so the choice is a
transport detail, never a numerics one.

:class:`RemoteEstimator` implements the
:class:`~repro.estimators.base.Estimator` protocol over a client, so a
:class:`~repro.runtime.controller.RuntimeController` can be pointed at
a service **without changing a line of controller code**::

    client = ServiceClient(ServiceAddress.parse("127.0.0.1:7421"))
    controller = RuntimeController(machine, space,
                                   estimator=RemoteEstimator(client))

Because curves survive the JSON round trip bit-exactly (see
:mod:`repro.service.protocol`) and the estimators are deterministic
given the problem, a remote-backed controller run reproduces the
in-process run to the last bit — ``tests/test_service_e2e.py`` asserts
exactly that.
"""

from __future__ import annotations

import itertools
import logging
import random
import socket
from typing import Any, Dict, Optional

import numpy as np

from repro import clock as clockmod
from repro.clock import Clock
from repro.estimators.base import (
    EstimationProblem,
    Estimator,
    InsufficientSamplesError,
)
from repro.faults.context import get_injector
from repro.obs import current_trace_context, get_tracer
from repro.service.frames import (
    MAGIC,
    FrameError,
    decode_binary_frame,
    encode_binary_frame,
    read_binary_frame,
)
from repro.service.protocol import (
    DeadlineExceeded,
    EstimationRejected,
    ProtocolError,
    Request,
    Response,
    ServiceAddress,
    ServiceOverloaded,
    decode_array,
    decode_frame,
    encode_array,
    encode_frame,
    problem_to_payload,
)

logger = logging.getLogger(__name__)

#: Slack added to the per-attempt socket timeout beyond the remaining
#: deadline budget — enough for the server's own DeadlineExceeded
#: response to travel back, small enough that a hung server cannot pin
#: the caller meaningfully past its deadline.
DEADLINE_GRACE_S = 0.25


class ServiceClient:
    """One connection to an estimation service, with retries.

    Args:
        address: Where the service listens.
        timeout: Socket timeout per read/write (seconds).  Should exceed
            the largest ``deadline_s`` you send, so the server's own
            deadline response arrives before the socket gives up.
        retries: Transport-failure retry budget per call (reconnect and
            resend; safe because every service op is idempotent).
        backoff: Base retry delay in seconds.  Each retry sleeps a
            *full-jitter* delay: uniform in ``[0, min(backoff_cap,
            backoff * 2**attempt))``, which avoids synchronized retry
            storms across tenants while keeping the exponential envelope.
        backoff_cap: Ceiling on any single retry delay (seconds), so a
            deep retry cannot sleep unboundedly.
        retry_overloaded: Also retry :class:`ServiceOverloaded`
            responses (with the same backoff schedule) instead of
            surfacing them — the polite-tenant mode.
        default_deadline_s: ``deadline_s`` attached to calls that do not
            specify one; ``None`` defers to the server default.  A
            call's deadline also bounds its *total* retry time: when the
            remaining budget cannot cover the next sleep, the pending
            failure is surfaced immediately instead of retrying past
            the point where the caller has stopped waiting.
        jitter_seed: Seed for the jitter stream (deterministic tests);
            ``None`` uses OS entropy.
        clock: The :class:`~repro.clock.Clock` timing the deadline
            budget and the backoff sleeps; ``None`` reads the ambient
            clock per call, so a client created outside a
            ``clock.use(...)`` block still goes virtual inside one.
        wire: Wire encoding.  ``"json"`` (default) is protocol v1,
            compatible with every broker ever shipped.  ``"auto"``
            probes each new server with one binary ping and downgrades
            to JSON-lines when the answer comes back as JSON (the
            binary frame's trailing newline guarantees a v1 broker
            *answers* the probe instead of waiting for a line that
            never ends); the result is cached across reconnects and
            readable from :attr:`wire_mode`.  ``"binary"`` forces
            protocol v2 without probing.  The sharded client defaults
            to ``"auto"`` — the fleet is always binary-capable.
    """

    def __init__(self, address: ServiceAddress, timeout: float = 60.0,
                 retries: int = 2, backoff: float = 0.05,
                 backoff_cap: float = 2.0,
                 retry_overloaded: bool = False,
                 default_deadline_s: Optional[float] = None,
                 jitter_seed: Optional[int] = None,
                 clock: Optional[Clock] = None,
                 wire: str = "json") -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        if backoff_cap <= 0:
            raise ValueError(f"backoff_cap must be positive, "
                             f"got {backoff_cap}")
        if wire not in ("auto", "json", "binary"):
            raise ValueError(f"wire must be 'auto', 'json', or 'binary', "
                             f"got {wire!r}")
        self.address = address
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.retry_overloaded = retry_overloaded
        self.default_deadline_s = default_deadline_s
        self.wire = wire
        self._clock = clock
        self._jitter = random.Random(jitter_seed)
        self._ids = itertools.count(1)
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._negotiated: Optional[str] = None if wire == "auto" else wire

    @property
    def clock(self) -> Clock:
        """The clock timing this client (explicit beats ambient)."""
        return clockmod.resolve(self._clock)

    # -- connection management ------------------------------------------
    @property
    def wire_mode(self) -> Optional[str]:
        """The encoding in use: ``"json"``, ``"binary"``, or ``None``
        before the first ``auto`` connection negotiates."""
        return self._negotiated

    def _ensure_connected(self) -> None:
        if self._sock is None:
            self._sock = self.address.connect(timeout=self.timeout)
            self._file = self._sock.makefile("rb")
            if self._negotiated is None:
                self._negotiate()

    def _negotiate(self) -> None:
        """One binary ping probe; a JSON answer downgrades to v1.

        A protocol-v2 broker answers the probe in binary — done.  A
        pre-binary broker answers with a JSON-lines protocol error (or
        hangs up on the unparseable bytes); either way the client caches
        ``"json"`` and reopens a clean connection, so existing servers
        keep working without a flag anywhere.
        """
        request = Request(op="ping", payload={"echo": "wire-probe"},
                          request_id=next(self._ids))
        try:
            self._sock.sendall(encode_binary_frame(request.to_wire()))
            first = self._file.read(1)
            if first == MAGIC:
                # Drain (and validate) the binary pong.
                decode_binary_frame(read_binary_frame(self._file,
                                                      first=first))
                self._negotiated = "binary"
                return
        except (ConnectionError, OSError, FrameError):
            pass
        self._negotiated = "json"
        logger.debug("wire negotiation fell back to JSON-lines",
                     extra={"fields": {"address": str(self.address)}})
        self.close()
        self._sock = self.address.connect(timeout=self.timeout)
        self._file = self._sock.makefile("rb")

    def close(self) -> None:
        """Drop the connection (the next call reconnects)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- the core call --------------------------------------------------
    def call(self, op: str, payload: Optional[Dict[str, Any]] = None,
             deadline_s: Optional[float] = None) -> Dict[str, Any]:
        """Invoke one operation; returns the response payload.

        Raises the rehydrated typed :class:`~repro.service.protocol.
        ServiceError` on a failure response, after exhausting any
        applicable retries.  The call's deadline bounds its *total*
        wall time, retries included: each retry sends the server the
        *remaining* budget (not a fresh full deadline), each attempt's
        socket timeout is capped at that budget plus a small grace, and
        a backoff sleep that would not fit in the budget surfaces the
        pending failure instead of retrying into a window the caller
        has already abandoned.
        """
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        clk = self.clock
        started = clk.now()
        attempt = 0
        tracer = get_tracer()
        # The ``client.call`` span covers the whole retry loop, so its
        # duration is what the caller actually waited; each attempt's
        # wire frame carries the ambient trace context (captured inside
        # the span, so server-side spans parent under it).
        with tracer.span("client.call", op=op, address=str(self.address)):
            while True:
                remaining: Optional[float] = None
                if deadline_s is not None:
                    remaining = deadline_s - (clk.now() - started)
                    if remaining <= 0:
                        raise DeadlineExceeded(
                            f"deadline of {deadline_s:.3f}s exhausted "
                            f"after {attempt} attempt(s) for op {op!r}",
                            details={"deadline_s": deadline_s, "op": op,
                                     "attempts": attempt})
                # The first attempt carries the caller's deadline
                # verbatim; retries carry only what is left of it.
                wire_deadline = deadline_s if attempt == 0 else remaining
                try:
                    return self._call_once(op, payload or {},
                                           wire_deadline, remaining)
                except (ConnectionError, socket.timeout, OSError) as exc:
                    self.close()
                    if (attempt >= self.retries
                            or not self._backoff_sleep(attempt, started,
                                                       deadline_s, clk)):
                        raise
                    logger.debug("retrying after transport failure",
                                 extra={"fields": {
                                     "op": op, "error": str(exc),
                                     "attempt": attempt,
                                     "trace_id": tracer.trace_id}})
                except ServiceOverloaded:
                    if (not self.retry_overloaded or attempt >= self.retries
                            or not self._backoff_sleep(attempt, started,
                                                       deadline_s, clk)):
                        raise
                    logger.debug("retrying after load shed",
                                 extra={"fields": {
                                     "op": op, "attempt": attempt,
                                     "trace_id": tracer.trace_id}})
                attempt += 1

    def _backoff_sleep(self, attempt: int, started: float,
                       deadline_s: Optional[float],
                       clk: Optional[Clock] = None) -> bool:
        """Sleep the full-jitter backoff for ``attempt``; False = give up.

        The delay is uniform in ``[0, min(backoff_cap, backoff *
        2**attempt))`` (AWS-style full jitter).  With a deadline, the
        sleep — and the retry after it — must fit in what is left of
        the deadline budget; when it cannot, no sleep happens and the
        caller surfaces the pending failure.
        """
        if clk is None:
            clk = self.clock
        if not self.backoff:
            delay = 0.0
        else:
            envelope = min(self.backoff_cap, self.backoff * (2 ** attempt))
            delay = self._jitter.uniform(0.0, envelope)
        if deadline_s is not None:
            remaining = deadline_s - (clk.now() - started)
            if remaining <= delay:
                return False
        if delay > 0:
            clk.sleep(delay)
        return True

    def _call_once(self, op: str, payload: Dict[str, Any],
                   deadline_s: Optional[float],
                   budget_s: Optional[float] = None) -> Dict[str, Any]:
        # Fault-injection hook: transport and protocol failures surface
        # exactly where the real ones would, upstream of the retry loop.
        for spec in get_injector().fire("service.call"):
            if spec.kind == "connection-drop":
                raise ConnectionError("injected connection drop")
            if spec.kind == "service-timeout":
                raise socket.timeout("injected service timeout")
            if spec.kind == "corrupt-response":
                raise ProtocolError("injected corrupt response")
        self._ensure_connected()
        # A hung server must not pin this attempt past the caller's
        # remaining deadline budget: the socket gives up at the budget
        # (plus the grace that lets the server's own deadline response
        # arrive), even when ``timeout`` is much larger.
        if budget_s is not None:
            self._sock.settimeout(min(self.timeout,
                                      budget_s + DEADLINE_GRACE_S))
        else:
            self._sock.settimeout(self.timeout)
        ctx = current_trace_context()
        request = Request(op=op, payload=payload,
                          request_id=next(self._ids),
                          deadline_s=deadline_s,
                          trace=ctx.to_wire() if ctx is not None else None)
        wire = request.to_wire()
        self._sock.sendall(encode_binary_frame(wire)
                           if self._negotiated == "binary"
                           else encode_frame(wire))
        # Responses on a pipelined connection may arrive out of order;
        # drain frames until ours shows up.  (This client issues calls
        # serially, so "out of order" only means responses to requests
        # an earlier timed-out attempt abandoned.)
        while True:
            response = Response.from_wire(self._read_frame())
            if response.request_id == request.request_id:
                return response.result()
            if response.request_id is None:
                # An unkeyed protocol-error response can only refer to
                # the frame we just sent.
                response.result()
                raise ProtocolError("server rejected the frame")
            logger.debug("discarding stale response",
                         extra={"fields": {"id": response.request_id}})

    def _read_frame(self) -> Dict[str, Any]:
        """Read one response frame, sniffing its encoding by first byte."""
        first = self._file.read(1)
        if not first:
            raise ConnectionError("service closed the connection")
        if first == MAGIC:
            return decode_binary_frame(
                read_binary_frame(self._file, first=first))
        return decode_frame(first + self._file.readline())

    # -- op conveniences ------------------------------------------------
    def ping(self, echo: Any = None) -> Dict[str, Any]:
        return self.call("ping", {"echo": echo})

    def estimate(self, problem: EstimationProblem,
                 estimator: Optional[str] = None,
                 deadline_s: Optional[float] = None,
                 **kwargs: Any) -> np.ndarray:
        """Run a remote fit; returns the estimated curve."""
        payload: Dict[str, Any] = {"problem": problem_to_payload(problem)}
        if estimator is not None:
            payload["estimator"] = estimator
        if kwargs:
            payload["kwargs"] = kwargs
        result = self.call("estimate", payload, deadline_s=deadline_s)
        return decode_array(result["estimate"])

    def optimize(self, rates: np.ndarray, powers: np.ndarray,
                 idle_power: float, work: float, deadline: float,
                 mode: str = "deadline-energy") -> Dict[str, Any]:
        """Solve the Eq. (1) LP remotely; returns schedule and energy."""
        return self.call("optimize", {
            "rates": encode_array(rates), "powers": encode_array(powers),
            "idle_power": idle_power, "work": work, "deadline": deadline,
            "mode": mode})

    def calibrate_report(self, app: str, **options: Any) -> Dict[str, Any]:
        """Calibrate a suite application (or fetch it from the registry)."""
        return self.call("calibrate-report", dict(options, app=app))

    def registry_list(self) -> Dict[str, Any]:
        return self.call("registry-list")

    def metrics(self) -> Dict[str, Any]:
        return self.call("metrics")

    def sleep(self, seconds: float,
              deadline_s: Optional[float] = None) -> Dict[str, Any]:
        return self.call("sleep", {"seconds": seconds},
                         deadline_s=deadline_s)

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to stop (after answering)."""
        result = self.call("shutdown")
        self.close()
        return result


class RemoteEstimator(Estimator):
    """An :class:`Estimator` whose fits run on an estimation service.

    Drops into any estimator slot — :class:`~repro.runtime.controller.
    RuntimeController`, the experiment harness — with the computation
    happening server-side, where coalescing shares identical concurrent
    fits across tenants.

    Args:
        client: The connection to use (owned by the caller).
        estimator: Server-side estimator name.  Also becomes this
            adapter's :attr:`name`, so persistence keys and reports
            match the in-process equivalent.
        deadline_s: Per-fit deadline; ``None`` uses the client default.
    """

    def __init__(self, client: ServiceClient, estimator: str = "leo",
                 deadline_s: Optional[float] = None, **kwargs: Any) -> None:
        self.client = client
        self.remote_name = estimator
        self.name = estimator
        self.deadline_s = deadline_s
        self.kwargs = kwargs

    def estimate(self, problem: EstimationProblem) -> np.ndarray:
        try:
            return self.client.estimate(problem,
                                        estimator=self.remote_name,
                                        deadline_s=self.deadline_s,
                                        **self.kwargs)
        except EstimationRejected as exc:
            # The controller's ill-posed-fit handling (keep the previous
            # estimate, try a different approach) must work unchanged
            # against a remote backend.
            raise InsufficientSamplesError(str(exc)) from exc
