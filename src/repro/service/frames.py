"""The binary wire protocol: length-prefixed, checksummed frames.

Protocol version 2.  The JSON-lines protocol (version 1, see
:mod:`repro.service.protocol`) is simple and bit-exact, but it pays
``repr``/parse costs per float and cannot carry NaN payloads or
distinguish ``-0.0`` in every JSON implementation.  This codec encodes
the *same* request/response dictionaries as binary frames whose float64
values are raw IEEE-754 bytes — bit-exact round trips for every double
(subnormals, NaN payloads, ``-0.0``, ``±inf``) by construction rather
than by the grace of shortest-repr printing.

Frame layout (all integers big-endian)::

    MAGIC    1 byte   0xAB — not '{', not valid UTF-8 lead byte, so a
                      broker can tell a binary frame from a JSON line
                      by its first byte
    VERSION  1 byte   0x02 (this codec is wire protocol version 2)
    FLAGS    1 byte   bit 0: a trace-context header follows the prefix
    LENGTH   4 bytes  byte length of HEADER + BODY
    HEADER   tagged dict — the optional ``trace`` context
             (:meth:`repro.obs.propagation.TraceContext.to_wire`),
             present iff FLAGS bit 0 is set
    BODY     tagged dict — the request/response object, minus ``trace``
    CRC32    4 bytes  zlib.crc32 over HEADER + BODY
    TERM     1 byte   0x0A

The trailing newline is not framing (LENGTH is authoritative) — it is
the escape hatch that makes version negotiation terminate against a
protocol-v1 peer: a JSON-lines broker doing ``readline()`` on a binary
probe gets a complete (garbage) line, answers with its usual typed
protocol error, and the probing client downgrades on seeing a JSON
first byte.  Without it, a small binary frame containing no ``0x0A``
byte would hang a v1 peer's readline forever.

Carrying the trace context in the frame *header* keeps it out of the
operation payload (and out of coalescing fingerprints) exactly like the
JSON protocol's top-level ``trace`` field.

Tagged value encoding (one ASCII tag byte, then the value):

=====  =============================================================
tag    value
=====  =============================================================
``Z``  ``None``
``T``  ``True``
``F``  ``False``
``i``  int64, 8 bytes signed big-endian
``I``  arbitrary-precision int: u32 length + ASCII decimal digits
``f``  float64, 8 raw IEEE-754 bytes (bit-exact)
``s``  str: u32 byte length + UTF-8
``b``  bytes: u32 length + raw
``l``  list: u32 count + tagged items
``d``  dict: u32 count + (u32+UTF-8 key, tagged value) pairs
``a``  float64 ndarray: u8 ndim + u32 per-dim sizes + raw ``>f8`` data
=====  =============================================================

Every decode failure — short read, bad magic, future version, length
overflow, checksum mismatch, unknown tag, trailing bytes — raises the
typed :class:`~repro.errors.FrameError` (wire code ``frame-error``), a
:class:`~repro.errors.ProtocolError` subclass, so transports shed
corrupt frames with the same typed-error machinery as unparseable JSON.

Version negotiation: the broker answers each frame in the encoding it
arrived in, so JSON-lines (v1) clients keep working untouched; a
binary-capable client probes with one v2 frame and falls back to v1
when the answer comes back as a JSON error (see
:class:`repro.service.client.ServiceClient` ``wire="auto"``).
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import FrameError

__all__ = [
    "BINARY_PROTOCOL_VERSION",
    "MAGIC",
    "PREFIX_SIZE",
    "MAX_FRAME_BYTES",
    "FrameError",
    "encode_binary_frame",
    "decode_binary_frame",
    "parse_prefix",
    "read_binary_frame",
    "encode_value",
    "decode_value",
]

#: The wire-protocol version this codec implements.
BINARY_PROTOCOL_VERSION = 2

#: First byte of every binary frame.  ``0xAB`` is neither ``{`` (the
#: first byte of every JSON-lines frame) nor a legal UTF-8 lead byte,
#: so one-byte sniffing cannot misclassify either protocol.
MAGIC = b"\xab"

#: MAGIC + VERSION + FLAGS + LENGTH.
PREFIX_SIZE = 7

#: Upper bound on HEADER + BODY; a corrupt length field fails fast as a
#: typed error instead of a multi-gigabyte allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_FLAG_TRACE = 0x01

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")

_I64_MIN = -(2 ** 63)
_I64_MAX = 2 ** 63 - 1


# ----------------------------------------------------------------------
# Tagged values
# ----------------------------------------------------------------------
def encode_value(value: Any, out: List[bytes]) -> None:
    """Append the tagged encoding of ``value`` to ``out``.

    Accepts the JSON-object universe (None/bool/int/float/str/list/
    dict) plus ``bytes`` and float64 ``numpy.ndarray``; numpy scalars
    degrade to their Python equivalents.  Anything else raises
    :class:`FrameError` — the wire format never guesses.
    """
    if value is None:
        out.append(b"Z")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, int) and not isinstance(value, bool):
        if _I64_MIN <= value <= _I64_MAX:
            out.append(b"i")
            out.append(_I64.pack(value))
        else:
            digits = str(value).encode("ascii")
            out.append(b"I")
            out.append(_U32.pack(len(digits)))
            out.append(digits)
    elif isinstance(value, float):
        out.append(b"f")
        out.append(_F64.pack(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(b"s")
        out.append(_U32.pack(len(data)))
        out.append(data)
    elif isinstance(value, (bytes, bytearray)):
        out.append(b"b")
        out.append(_U32.pack(len(value)))
        out.append(bytes(value))
    elif isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value, dtype=">f8")
        if array.ndim > 255:
            raise FrameError(f"array rank {array.ndim} exceeds 255")
        out.append(b"a")
        out.append(bytes((array.ndim,)))
        for dim in array.shape:
            out.append(_U32.pack(dim))
        out.append(array.tobytes())
    elif isinstance(value, (list, tuple)):
        out.append(b"l")
        out.append(_U32.pack(len(value)))
        for item in value:
            encode_value(item, out)
    elif isinstance(value, dict):
        out.append(b"d")
        out.append(_U32.pack(len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise FrameError(
                    f"frame dict keys must be str, got {type(key).__name__}")
            data = key.encode("utf-8")
            out.append(_U32.pack(len(data)))
            out.append(data)
            encode_value(item, out)
    elif isinstance(value, (np.integer, np.floating, np.bool_)):
        encode_value(value.item(), out)
    else:
        raise FrameError(
            f"type {type(value).__name__} is not encodable on the wire")


class _Reader:
    """Bounds-checked cursor over one frame's payload bytes."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise FrameError(
                f"truncated frame: wanted {count} bytes at offset "
                f"{self.pos}, only {len(self.data) - self.pos} remain")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]


def decode_value(reader: _Reader) -> Any:
    """Decode one tagged value at the reader's cursor."""
    tag = reader.take(1)
    if tag == b"Z":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"i":
        return _I64.unpack(reader.take(8))[0]
    if tag == b"I":
        digits = reader.take(reader.u32())
        try:
            return int(digits.decode("ascii"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise FrameError(f"corrupt big-int digits: {exc}") from exc
    if tag == b"f":
        return _F64.unpack(reader.take(8))[0]
    if tag == b"s":
        data = reader.take(reader.u32())
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FrameError(f"corrupt string: {exc}") from exc
    if tag == b"b":
        return reader.take(reader.u32())
    if tag == b"a":
        ndim = reader.take(1)[0]
        shape = tuple(reader.u32() for _ in range(ndim))
        count = 1
        for dim in shape:
            count *= dim
        if count * 8 > MAX_FRAME_BYTES:
            raise FrameError(f"array of shape {shape} exceeds the frame "
                             f"size bound")
        raw = reader.take(count * 8)
        return np.frombuffer(raw, dtype=">f8").astype("=f8").reshape(shape)
    if tag == b"l":
        return [decode_value(reader) for _ in range(reader.u32())]
    if tag == b"d":
        result: Dict[str, Any] = {}
        for _ in range(reader.u32()):
            key_data = reader.take(reader.u32())
            try:
                key = key_data.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise FrameError(f"corrupt dict key: {exc}") from exc
            result[key] = decode_value(reader)
        return result
    raise FrameError(f"unknown value tag {tag!r} at offset "
                     f"{reader.pos - 1}")


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def encode_binary_frame(obj: Dict[str, Any]) -> bytes:
    """One protocol-v2 frame for a request/response wire dict.

    The dict's optional ``trace`` entry travels in the frame header
    (FLAGS bit 0); everything else is the body.  The input dict is not
    mutated.
    """
    if not isinstance(obj, dict):
        raise FrameError(
            f"frame must be a dict, got {type(obj).__name__}")
    trace = obj.get("trace")
    parts: List[bytes] = []
    flags = 0
    if trace is not None:
        flags |= _FLAG_TRACE
        encode_value(trace, parts)
        body = {key: value for key, value in obj.items() if key != "trace"}
    else:
        body = obj
    encode_value(body, parts)
    payload = b"".join(parts)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame payload of {len(payload)} bytes exceeds "
                         f"the {MAX_FRAME_BYTES}-byte bound")
    return b"".join((
        MAGIC,
        bytes((BINARY_PROTOCOL_VERSION, flags)),
        _U32.pack(len(payload)),
        payload,
        _U32.pack(zlib.crc32(payload)),
        b"\n",
    ))


def parse_prefix(prefix: bytes) -> Tuple[int, int]:
    """Validate a 7-byte frame prefix; returns ``(flags, length)``.

    ``length`` counts HEADER + BODY bytes; the caller must then read
    ``length + 5`` more bytes (payload, CRC32, terminator).
    """
    if len(prefix) < PREFIX_SIZE:
        raise FrameError(f"truncated frame prefix: {len(prefix)} of "
                         f"{PREFIX_SIZE} bytes")
    if prefix[0:1] != MAGIC:
        raise FrameError(f"bad frame magic 0x{prefix[0]:02x}")
    version = prefix[1]
    if version != BINARY_PROTOCOL_VERSION:
        raise FrameError(
            f"unsupported binary protocol version {version} "
            f"(this build speaks {BINARY_PROTOCOL_VERSION}; JSON-lines "
            f"v1 is always accepted)")
    length = _U32.unpack(prefix[3:7])[0]
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds the "
                         f"{MAX_FRAME_BYTES}-byte bound")
    return prefix[2], length


def decode_binary_frame(data: bytes) -> Dict[str, Any]:
    """Decode one complete frame (prefix through CRC32) to its wire dict.

    The header's trace context, when present, is restored as the dict's
    ``trace`` entry, so callers see exactly what
    :func:`encode_binary_frame` was given.
    """
    flags, length = parse_prefix(data[:PREFIX_SIZE])
    expected = PREFIX_SIZE + length + 5
    if len(data) < expected:
        raise FrameError(f"truncated frame: {len(data)} of {expected} "
                         f"bytes")
    if len(data) > expected:
        raise FrameError(f"oversized frame: {len(data) - expected} "
                         f"trailing bytes")
    if data[expected - 1:expected] != b"\n":
        raise FrameError("frame terminator missing (corrupt framing)")
    payload = data[PREFIX_SIZE:PREFIX_SIZE + length]
    (crc,) = _U32.unpack(data[PREFIX_SIZE + length:expected - 1])
    if zlib.crc32(payload) != crc:
        raise FrameError("frame checksum mismatch (corrupt payload)")
    reader = _Reader(payload)
    trace = decode_value(reader) if flags & _FLAG_TRACE else None
    if trace is not None and not isinstance(trace, dict):
        raise FrameError(
            f"frame trace header must be a dict, "
            f"got {type(trace).__name__}")
    body = decode_value(reader)
    if reader.pos != len(payload):
        raise FrameError(f"frame payload has {len(payload) - reader.pos} "
                         f"undecoded bytes")
    if not isinstance(body, dict):
        raise FrameError(
            f"frame body must be a dict, got {type(body).__name__}")
    if trace is not None:
        body = dict(body, trace=trace)
    return body


def read_binary_frame(readable, first: Optional[bytes] = None) -> bytes:
    """Read one complete frame from a blocking file-like object.

    ``first`` is an already-consumed leading byte (from protocol
    sniffing).  Returns the full frame bytes; raises
    :class:`FrameError` on truncation and ``ConnectionError`` on a
    clean EOF before any byte arrives.
    """
    head = first if first else readable.read(1)
    if not head:
        raise ConnectionError("connection closed before a frame arrived")
    rest = _read_exact(readable, PREFIX_SIZE - len(head))
    prefix = head + rest
    _, length = parse_prefix(prefix)
    return prefix + _read_exact(readable, length + 5)


def _read_exact(readable, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        chunk = readable.read(remaining)
        if not chunk:
            raise FrameError(
                f"truncated frame: connection closed with {remaining} "
                f"bytes outstanding")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
