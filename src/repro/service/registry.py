"""The service's versioned model registry.

Layered on :class:`repro.runtime.persistence.EstimateStore`: the store
keeps the *latest* record per (application, config-space size,
estimator) as the fast warm-start path, while the registry adds an
append-only, schema-versioned JSON history so a published model is never
overwritten — a returning tenant reads the newest version, an auditor
can read every version that ever served traffic.

On-disk layout::

    registry/
      latest/                       # EstimateStore write-through (.npz)
        {app}--{n}--{estimator}.npz
      models/
        {app}--{n}--{estimator}/
          v000001.json              # one immutable record per publish
          v000002.json
      pools/
        {space-key}/
          v000001.npz               # versioned prior pools (M x n tables)

Version files are immutable once written: a publish assembles the record
in a temporary file and links it into place with ``os.link`` (atomic,
refuses to clobber), retrying on the next free version number when two
publishers race.  Readers skip records they cannot interpret — corrupt
JSON, missing fields, or a ``schema_version`` from the future — and
fall back to the newest *valid* version, mirroring the tolerant loading
of the underlying :class:`EstimateStore`.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import pathlib
import re
import threading
import time
import zipfile
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.clock import get_clock
from repro.runtime.controller import TradeoffEstimate
from repro.runtime.persistence import EstimateStore, _slug

PathLike = Union[str, pathlib.Path]

logger = logging.getLogger(__name__)

#: Schema stamped on every registry record; readers skip newer versions.
REGISTRY_SCHEMA_VERSION = 1

_VERSION_FILE = re.compile(r"^v(\d{6})\.json$")
_POOL_FILE = re.compile(r"^v(\d{6})\.npz$")


@dataclasses.dataclass(frozen=True)
class ModelRecord:
    """One immutable published model version.

    Attributes:
        app: Application name (unslugged, as published).
        estimator: Estimator name the curves came from.
        num_configs: Configuration-space size the curves cover.
        version: 1-based publish sequence number within the key.
        rates: Estimated heartbeat rates, shape ``(num_configs,)``.
        powers: Estimated system powers, shape ``(num_configs,)``.
        metadata: Free-form provenance (sampling cost, accuracy, ...).
        created_unix: Publish wall-clock time (seconds since epoch).
    """

    app: str
    estimator: str
    num_configs: int
    version: int
    rates: np.ndarray
    powers: np.ndarray
    metadata: Dict[str, Any]
    created_unix: float

    def to_estimate(self) -> TradeoffEstimate:
        """The record as a controller-consumable estimate."""
        return TradeoffEstimate(
            rates=self.rates, powers=self.powers,
            estimator_name=self.estimator,
            sampling_time=float(self.metadata.get("sampling_time", 0.0)),
            sampling_energy=float(self.metadata.get("sampling_energy", 0.0)),
            fit_seconds=float(self.metadata.get("fit_seconds", 0.0)),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": REGISTRY_SCHEMA_VERSION,
            "app": self.app,
            "estimator": self.estimator,
            "num_configs": self.num_configs,
            "version": self.version,
            "rates": self.rates.tolist(),
            "powers": self.powers.tolist(),
            "metadata": self.metadata,
            "created_unix": self.created_unix,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ModelRecord":
        rates = np.asarray(payload["rates"], dtype=float)
        powers = np.asarray(payload["powers"], dtype=float)
        if rates.ndim != 1 or rates.shape != powers.shape:
            raise ValueError("record curves must be aligned 1-D arrays")
        return cls(
            app=str(payload["app"]), estimator=str(payload["estimator"]),
            num_configs=int(payload["num_configs"]),
            version=int(payload["version"]),
            rates=rates, powers=powers,
            metadata=dict(payload.get("metadata", {})),
            created_unix=float(payload.get("created_unix", 0.0)),
        )


@dataclasses.dataclass(frozen=True)
class PriorPool:
    """A versioned offline profiling table: ``(M, n)`` rates and powers."""

    space_key: str
    version: int
    names: Tuple[str, ...]
    rates: np.ndarray
    powers: np.ndarray


class ModelRegistry:
    """Versioned fitted-model store shared by every service tenant."""

    def __init__(self, directory: PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Warm-start write-through: the newest record per key as an
        #: :class:`EstimateStore` npz, loadable without touching the
        #: version history.
        self.store = EstimateStore(self.directory / "latest")
        self._models_dir = self.directory / "models"
        self._pools_dir = self.directory / "pools"

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------
    def _key(self, app: str, num_configs: int, estimator: str) -> str:
        return f"{_slug(app)}--{int(num_configs)}--{_slug(estimator)}"

    def _model_dir(self, app: str, num_configs: int,
                   estimator: str) -> pathlib.Path:
        return self._models_dir / self._key(app, num_configs, estimator)

    @staticmethod
    def _versions_in(directory: pathlib.Path,
                     pattern: re.Pattern) -> List[int]:
        if not directory.is_dir():
            return []
        versions = []
        for entry in directory.iterdir():
            match = pattern.match(entry.name)
            if match:
                versions.append(int(match.group(1)))
        return sorted(versions)

    def versions(self, app: str, num_configs: int,
                 estimator: str) -> List[int]:
        """Published version numbers for one key, ascending."""
        return self._versions_in(self._model_dir(app, num_configs,
                                                 estimator), _VERSION_FILE)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, app: str, estimate: TradeoffEstimate,
                metadata: Optional[Dict[str, Any]] = None) -> ModelRecord:
        """Append a new immutable version and refresh the warm-start store.

        Returns the published record (with its allocated version).  Safe
        against concurrent publishers on the same key: version files are
        created with an atomic no-clobber link, and collisions retry on
        the next number.
        """
        rates = np.asarray(estimate.rates, dtype=float)
        powers = np.asarray(estimate.powers, dtype=float)
        if rates.ndim != 1 or rates.shape != powers.shape:
            raise ValueError("estimate curves must be aligned 1-D arrays")
        meta = dict(metadata or {})
        meta.setdefault("sampling_time", estimate.sampling_time)
        meta.setdefault("sampling_energy", estimate.sampling_energy)
        meta.setdefault("fit_seconds", estimate.fit_seconds)

        directory = self._model_dir(app, rates.size, estimate.estimator_name)
        directory.mkdir(parents=True, exist_ok=True)
        tmp = directory / (f".publish.{os.getpid()}."
                           f"{threading.get_ident()}.tmp")
        record: Optional[ModelRecord] = None
        try:
            existing = self._versions_in(directory, _VERSION_FILE)
            version = (existing[-1] + 1) if existing else 1
            while True:
                record = ModelRecord(
                    app=app, estimator=estimate.estimator_name,
                    num_configs=int(rates.size), version=version,
                    rates=rates, powers=powers, metadata=meta,
                    created_unix=get_clock().time(),
                )
                tmp.write_text(json.dumps(record.to_dict()) + "\n")
                target = directory / f"v{version:06d}.json"
                try:
                    os.link(tmp, target)
                    break
                except FileExistsError:
                    version += 1  # lost a race; take the next number
                except OSError:
                    # Filesystem without hard links: fall back to a
                    # replace, accepting last-writer-wins on a collision.
                    os.replace(tmp, target)
                    break
        finally:
            if tmp.exists():
                tmp.unlink()
        self.store.save(app, record.to_estimate())
        return record

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _read_record(self, path: pathlib.Path) -> Optional[ModelRecord]:
        """One version file, or ``None`` when it cannot be interpreted."""
        try:
            payload = json.loads(path.read_text())
            schema = payload.get("schema_version", 1)
            if not isinstance(schema, int) or schema > \
                    REGISTRY_SCHEMA_VERSION:
                logger.warning(
                    "skipping registry record %s with schema_version %r "
                    "(this build reads <= %d)", path, schema,
                    REGISTRY_SCHEMA_VERSION)
                return None
            return ModelRecord.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            logger.warning("skipping unreadable registry record %s (%s)",
                           path, exc)
            return None

    def latest(self, app: str, num_configs: int,
               estimator: str) -> Optional[ModelRecord]:
        """The newest valid record for a key, or ``None``."""
        directory = self._model_dir(app, num_configs, estimator)
        for version in reversed(self._versions_in(directory, _VERSION_FILE)):
            record = self._read_record(directory / f"v{version:06d}.json")
            if record is not None:
                return record
        return None

    def history(self, app: str, num_configs: int,
                estimator: str) -> List[ModelRecord]:
        """Every valid record for a key, oldest first."""
        directory = self._model_dir(app, num_configs, estimator)
        records = []
        for version in self._versions_in(directory, _VERSION_FILE):
            record = self._read_record(directory / f"v{version:06d}.json")
            if record is not None:
                records.append(record)
        return records

    def warm_estimate(self, app: str, num_configs: int,
                      estimator: str) -> Optional[TradeoffEstimate]:
        """Warm-start lookup: the latest model as a ready estimate.

        Tries the :class:`EstimateStore` fast path first (one npz read),
        falling back to the version history when the write-through copy
        is missing or unreadable.
        """
        estimate = self.store.load(app, num_configs, estimator)
        if estimate is not None:
            return estimate
        record = self.latest(app, num_configs, estimator)
        return record.to_estimate() if record is not None else None

    def known_models(self) -> List[Dict[str, Any]]:
        """A summary row per key: app slug, size, estimator, versions."""
        rows = []
        if self._models_dir.is_dir():
            for directory in sorted(self._models_dir.iterdir()):
                parts = directory.name.split("--")
                if len(parts) != 3 or not directory.is_dir():
                    continue
                versions = self._versions_in(directory, _VERSION_FILE)
                if not versions:
                    continue
                rows.append({
                    "app": parts[0],
                    "num_configs": int(parts[1]),
                    "estimator": parts[2],
                    "versions": len(versions),
                    "latest_version": versions[-1],
                })
        return rows

    # ------------------------------------------------------------------
    # Prior pools
    # ------------------------------------------------------------------
    def publish_prior_pool(self, space_key: str, names: Sequence[str],
                           rates: np.ndarray,
                           powers: np.ndarray) -> PriorPool:
        """Version an ``(M, n)`` offline profiling table for a space."""
        rates = np.asarray(rates, dtype=float)
        powers = np.asarray(powers, dtype=float)
        if rates.ndim != 2 or rates.shape != powers.shape:
            raise ValueError("prior pool tables must be aligned 2-D arrays")
        if len(names) != rates.shape[0]:
            raise ValueError(
                f"{len(names)} names for {rates.shape[0]} pool rows")
        directory = self._pools_dir / _slug(space_key)
        directory.mkdir(parents=True, exist_ok=True)
        meta = json.dumps({"schema_version": REGISTRY_SCHEMA_VERSION,
                           "space_key": space_key,
                           "names": list(names),
                           "created_unix": get_clock().time()})
        tmp = directory / (f".publish.{os.getpid()}."
                           f"{threading.get_ident()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                np.savez_compressed(handle, rates=rates, powers=powers,
                                    meta=np.array(meta))
            existing = self._versions_in(directory, _POOL_FILE)
            version = (existing[-1] + 1) if existing else 1
            while True:
                target = directory / f"v{version:06d}.npz"
                try:
                    os.link(tmp, target)
                    break
                except FileExistsError:
                    version += 1
                except OSError:
                    os.replace(tmp, target)
                    break
        finally:
            if tmp.exists():
                tmp.unlink()
        return PriorPool(space_key=space_key, version=version,
                         names=tuple(names), rates=rates, powers=powers)

    def latest_prior_pool(self, space_key: str) -> Optional[PriorPool]:
        """The newest valid prior pool for a space, or ``None``."""
        directory = self._pools_dir / _slug(space_key)
        for version in reversed(self._versions_in(directory, _POOL_FILE)):
            path = directory / f"v{version:06d}.npz"
            try:
                with np.load(path, allow_pickle=False) as data:
                    rates = np.asarray(data["rates"], dtype=float)
                    powers = np.asarray(data["powers"], dtype=float)
                    meta = json.loads(str(data["meta"]))
                schema = meta.get("schema_version", 1)
                if not isinstance(schema, int) or schema > \
                        REGISTRY_SCHEMA_VERSION:
                    logger.warning("skipping prior pool %s with "
                                   "schema_version %r", path, schema)
                    continue
                return PriorPool(space_key=space_key, version=version,
                                 names=tuple(meta.get("names", ())),
                                 rates=rates, powers=powers)
            except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
                logger.warning("skipping unreadable prior pool %s (%s)",
                               path, exc)
        return None
