"""The estimation service: request broker + admission control.

Three layers, separable for testing:

* :class:`EstimationService` — the synchronous operation handlers
  (``estimate``, ``optimize``, ``calibrate-report``, ...), callable
  directly without any networking.
* :class:`ServiceServer` — the asyncio broker: accepts JSON-lines
  connections, **admits** requests against a bounded budget (shedding
  the excess with a typed :class:`~repro.service.protocol.
  ServiceOverloaded` instead of queueing unboundedly), **coalesces**
  identical concurrent fits into one execution (tenants asking for the
  same curve share one EM run — the fit itself already batches its
  E-step across applications, so one execution serves the whole prior
  pool), and enforces **per-request deadlines** (an expired waiter gets
  :class:`~repro.service.protocol.DeadlineExceeded`; the underlying
  computation is never cancelled, because coalesced followers may still
  be waiting on it).
* :class:`ServerThread` — the broker on a background thread, for tests
  and in-process embedding.

Handlers run on a thread pool so the event loop stays free to shed and
answer inline operations (``ping``, ``metrics``, ``shutdown``) even
while every worker is busy — that is what makes the overload response
arrive *within* the shedded request's deadline rather than after it.

Observability: the loop thread owns the shared
:class:`~repro.obs.MetricsRegistry` (``service_requests_total``,
``service_shed_total``, ``service_coalesced_total``,
``service_deadline_exceeded_total``, ``service_pending`` gauge,
``service_request_seconds`` histogram), so the asserted counters are
updated single-threaded.  Per-request spans use a *per-request*
:class:`~repro.obs.Tracer` recorded entirely on the worker thread
running the handler — the repo tracer keeps one span stack and must not
be shared across concurrent requests — and are collected into
:attr:`ServiceServer.request_spans` for export.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import logging
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional

from repro.clock import get_clock
from repro.estimators.base import InsufficientSamplesError
from repro.estimators.registry import create_estimator
from repro.experiments.harness import (
    accuracy_scores,
    default_context,
    estimate_curves,
    random_indices,
    sample_target,
)
from repro.obs import (
    MetricsRegistry,
    Observability,
    Span,
    TraceContext,
    Tracer,
    shard_span_base,
    use,
)
from repro.optimize.lp import EnergyMinimizer
from repro.runtime.controller import TradeoffEstimate
from repro.service.protocol import (
    DeadlineExceeded,
    EstimationRejected,
    ProtocolError,
    RemoteError,
    Request,
    RequestRejected,
    Response,
    ServiceAddress,
    ServiceError,
    ServiceOverloaded,
    decode_frame,
    encode_array,
    encode_frame,
    fingerprint,
    problem_from_payload,
)
from repro.service.frames import (
    MAGIC,
    PREFIX_SIZE,
    FrameError,
    decode_binary_frame,
    encode_binary_frame,
    parse_prefix,
)
from repro.service.registry import ModelRegistry

logger = logging.getLogger(__name__)

#: Operations whose result is a pure function of (op, payload): identical
#: concurrent requests share one execution.
COALESCABLE_OPS = frozenset({"estimate", "calibrate-report"})

#: Operations answered on the event loop itself — never queued, never
#: shed, so a client can always probe a saturated server.
INLINE_OPS = frozenset({"ping", "metrics", "shutdown"})

#: Upper bound on the ``sleep`` diagnostic, so a typo cannot pin a
#: worker for an hour.
MAX_SLEEP_SECONDS = 60.0


class EstimationService:
    """The operation handlers, independent of any transport.

    Args:
        registry: Optional :class:`ModelRegistry` backing warm starts
            and ``calibrate-report`` publishing; ``None`` disables
            persistence (every calibration is cold).
        default_estimator: Estimator name used when a request omits one.
    """

    def __init__(self, registry: Optional[ModelRegistry] = None,
                 default_estimator: str = "leo") -> None:
        self.registry = registry
        self.default_estimator = default_estimator

    def handle(self, request: Request) -> Dict[str, Any]:
        """Dispatch one request to its handler; returns the payload."""
        handler = getattr(self, "_op_" + request.op.replace("-", "_"), None)
        if handler is None or not request.op.replace("-", "_").isidentifier():
            raise RequestRejected(
                f"unknown op {request.op!r}; known: {sorted(self.ops())}")
        return handler(request.payload)

    @classmethod
    def ops(cls) -> List[str]:
        """Operation names this service answers (transport ops excluded)."""
        return sorted(name[len("_op_"):].replace("_", "-")
                      for name in dir(cls) if name.startswith("_op_"))

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _op_ping(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return {"pong": True, "echo": payload.get("echo")}

    def _op_sleep(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Diagnostic: occupy one worker for a bounded interval.

        Exists to make overload and deadline behaviour *deterministic*
        in tests and load drills — real fits take data-dependent time.
        """
        seconds = float(payload.get("seconds", 0.0))
        if seconds < 0:
            raise RequestRejected(f"sleep seconds must be >= 0, got {seconds}")
        seconds = min(seconds, MAX_SLEEP_SECONDS)
        get_clock().sleep(seconds)
        return {"slept": seconds}

    def _op_estimate(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Run one estimator on a submitted problem.

        The curve round-trips through JSON bit-exactly (see
        :mod:`repro.service.protocol`), so a remote caller reproduces an
        in-process fit to the last bit.
        """
        name = payload.get("estimator", self.default_estimator)
        kwargs = payload.get("kwargs", {})
        if not isinstance(kwargs, dict):
            raise RequestRejected("'kwargs' must be a JSON object")
        problem = problem_from_payload(payload.get("problem", {}))
        estimator = create_estimator(name, **kwargs)
        curve = estimator.estimate(problem)
        return {"estimator": estimator.name,
                "estimate": encode_array(curve),
                "num_configs": problem.num_configs}

    def _op_optimize(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Solve the Eq. (1) LP on submitted tradeoff curves."""
        try:
            rates = payload["rates"]
            powers = payload["powers"]
            idle_power = float(payload["idle_power"])
            work = float(payload["work"])
            deadline = float(payload["deadline"])
        except KeyError as exc:
            raise RequestRejected(f"optimize payload lacks {exc}") from exc
        mode = payload.get("mode", "deadline-energy")
        minimizer = EnergyMinimizer(rates, powers, idle_power, mode=mode)
        schedule = minimizer.solve(work, deadline)
        return {
            "schedule": [{"config_index": slot.config_index,
                          "duration": slot.duration} for slot in schedule],
            "energy": minimizer.min_energy(work, deadline),
            "max_rate": minimizer.max_rate,
        }

    def _op_calibrate_report(self, payload: Dict[str, Any]
                             ) -> Dict[str, Any]:
        """Calibrate one suite application, or serve it from the registry.

        Warm path: a registry hit returns the published curves with
        ``samples_used: 0`` — the returning tenant pays no sampling at
        all (the paper's Section 6.7 amortization, across processes and
        across tenants).  ``force: true`` bypasses the registry; a cold
        calibration publishes its result for the next tenant.
        """
        app = payload.get("app")
        if not isinstance(app, str) or not app:
            raise RequestRejected("calibrate-report needs an 'app' name")
        space_kind = payload.get("space", "paper")
        seed = int(payload.get("seed", 0))
        estimator = payload.get("estimator", self.default_estimator)
        samples = int(payload.get("samples", 20))
        if samples < 1:
            raise RequestRejected(f"samples must be >= 1, got {samples}")
        force = bool(payload.get("force", False))

        ctx = default_context(space_kind, seed)
        n = len(ctx.space)
        if self.registry is not None and not force:
            warm = self.registry.warm_estimate(app, n, estimator)
            if warm is not None:
                return {"source": "registry", "samples_used": 0,
                        "estimator": estimator, "num_configs": n,
                        "rates": encode_array(warm.rates),
                        "powers": encode_array(warm.powers)}

        profile = ctx.profile(app)  # KeyError -> bad-request at the broker
        view = ctx.dataset.leave_one_out(app)
        indices = random_indices(n, min(samples, n), seed=seed + 7919)
        rate_obs, power_obs = sample_target(ctx, profile, indices)
        curve = estimate_curves(ctx, view, indices, rate_obs, power_obs,
                                estimator)
        if not curve.feasible:
            raise EstimationRejected(
                f"estimator {estimator!r} is ill-posed for "
                f"{indices.size} samples of {app!r}")
        perf_acc, power_acc = accuracy_scores(curve, view)
        result: Dict[str, Any] = {
            "source": "calibration", "samples_used": int(indices.size),
            "estimator": estimator, "num_configs": n,
            "rates": encode_array(curve.rates),
            "powers": encode_array(curve.powers),
            "accuracy_performance": perf_acc,
            "accuracy_power": power_acc,
        }
        if self.registry is not None:
            record = self.registry.publish(
                app,
                TradeoffEstimate(rates=curve.rates, powers=curve.powers,
                                 estimator_name=estimator),
                metadata={"space": space_kind, "seed": seed,
                          "samples": int(indices.size),
                          "accuracy_performance": perf_acc,
                          "accuracy_power": power_acc})
            result["version"] = record.version
        return result

    def _op_registry_list(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        if self.registry is None:
            return {"models": [], "applications": []}
        return {"models": self.registry.known_models(),
                "applications": self.registry.store.known_applications()}


def map_exception(exc: BaseException) -> ServiceError:
    """Translate a handler failure into its wire-level typed error."""
    if isinstance(exc, ServiceError):
        return exc
    if isinstance(exc, InsufficientSamplesError):
        return EstimationRejected(str(exc))
    if isinstance(exc, (ValueError, KeyError, TypeError)):
        return RequestRejected(f"{type(exc).__name__}: {exc}")
    return RemoteError(f"{type(exc).__name__}: {exc}")


class ServiceServer:
    """The asyncio broker fronting an :class:`EstimationService`.

    Args:
        service: The operation handlers.
        address: Where to listen; TCP port 0 binds an ephemeral port
            (read the result off :attr:`bound_address`).
        max_pending: Admission budget — in-flight plus queued requests.
            Request ``max_pending + 1`` is shed with
            :class:`ServiceOverloaded`, immediately, from the loop.
        default_deadline_s: Deadline for requests that do not carry one.
        max_workers: Handler thread-pool width (default: CPU count,
            capped at 8).
        observability: Metrics registry and tracer wiring.  ``None``
            creates a private recording :class:`MetricsRegistry` (the
            ``metrics`` op should always have something to report) and
            no tracer.  A recording tracer enables per-request spans.
        accept_binary: Whether protocol-v2 binary frames are served.
            ``False`` emulates a pre-binary broker — a binary frame is
            answered with a JSON-lines :class:`ProtocolError` and the
            connection closed — which is what the client's ``auto``
            negotiation probes against (see
            :class:`repro.service.client.ServiceClient`).

    Each connection may interleave JSON-lines (protocol v1) and binary
    (v2) frames; the broker sniffs the first byte of every frame
    (``0xAB`` is not ``{``) and answers in the encoding the request
    arrived in, so a mixed fleet of old and new clients shares one
    port.
    """

    def __init__(self, service: EstimationService, address: ServiceAddress,
                 max_pending: int = 8, default_deadline_s: float = 30.0,
                 max_workers: Optional[int] = None,
                 observability: Optional[Observability] = None,
                 accept_binary: bool = True) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if default_deadline_s <= 0:
            raise ValueError(f"default_deadline_s must be positive, "
                             f"got {default_deadline_s}")
        self.service = service
        self.address = address
        self.max_pending = max_pending
        self.default_deadline_s = default_deadline_s
        self.accept_binary = accept_binary
        self.max_workers = (max_workers if max_workers is not None
                            else min(os.cpu_count() or 1, 8))
        if observability is None:
            observability = Observability(metrics=MetricsRegistry())
        self.observability = observability
        self.metrics = observability.metrics
        self._request_spans: List[Span] = []
        # Per-request shard counter: each traced request numbers its
        # spans from a distinct shard_span_base block, so concurrent
        # handler threads never collide.  itertools.count is atomic
        # under the GIL, so worker threads may draw from it directly.
        self._request_seq = itertools.count(1)
        self._admitted = 0
        self._inflight: Dict[str, "asyncio.Future"] = {}
        self._bound: Optional[ServiceAddress] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._connections: set = set()

    # -- introspection --------------------------------------------------
    @property
    def bound_address(self) -> Optional[ServiceAddress]:
        """The actual listening address (resolves ephemeral ports)."""
        return self._bound

    @property
    def request_spans(self) -> List[Span]:
        """Per-request span trees collected so far (export with
        :func:`repro.obs.write_trace`)."""
        return list(self._request_spans)

    def request_stop(self) -> None:
        """Ask the serve loop to wind down (loop-thread only; from other
        threads go through ``loop.call_soon_threadsafe``)."""
        if self._stop is not None:
            self._stop.set()

    # -- lifecycle ------------------------------------------------------
    async def serve(self, ready: Optional[Callable[[ServiceAddress], None]]
                    = None) -> None:
        """Listen and broker requests until :meth:`request_stop`."""
        self._loop = asyncio.get_event_loop()
        self._stop = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="repro-service")
        if self.address.path is not None:
            server = await asyncio.start_unix_server(
                self._on_connection, path=self.address.path)
            self._bound = self.address
        else:
            server = await asyncio.start_server(
                self._on_connection, host=self.address.host,
                port=self.address.port)
            sockname = server.sockets[0].getsockname()
            self._bound = ServiceAddress(host=self.address.host,
                                         port=int(sockname[1]))
        logger.info("service listening",
                    extra={"fields": {"address": str(self._bound),
                                      "max_pending": self.max_pending,
                                      "workers": self.max_workers}})
        try:
            if ready is not None:
                ready(self._bound)
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            for writer in list(self._connections):
                with contextlib.suppress(Exception):
                    writer.close()
            self._executor.shutdown(wait=False, cancel_futures=True)
            if self.address.path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(self.address.path)

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        pending: set = set()
        try:
            while not self._stop.is_set():
                try:
                    first = await reader.read(1)
                    if not first:
                        break
                    if first == MAGIC:
                        if not self.accept_binary:
                            # Emulate a pre-binary broker: a typed JSON
                            # protocol error, then hang up so the probe
                            # fails over cleanly.
                            self.metrics.inc("service_protocol_errors_total")
                            await self._send(writer, Response.failure(
                                None, ProtocolError(
                                    "binary frames are not accepted by "
                                    "this server; use JSON-lines "
                                    "protocol v1")), binary=False)
                            break
                        frame, binary = await self._read_binary(reader,
                                                                first)
                    else:
                        frame = first + await reader.readline()
                        binary = False
                except FrameError as exc:
                    # A mangled prefix poisons the whole byte stream —
                    # answer typed, then hang up rather than guess at
                    # resynchronisation.
                    self.metrics.inc("service_protocol_errors_total")
                    await self._send(writer, Response.failure(None, exc),
                                     binary=self.accept_binary)
                    break
                except (ConnectionError, OSError, asyncio.IncompleteReadError):
                    break
                # One task per frame: pipelined requests on a single
                # connection proceed concurrently, so a slow fit does
                # not head-of-line-block a later ping.
                task = asyncio.ensure_future(
                    self._handle_line(frame, writer, binary))
                pending.add(task)
                task.add_done_callback(pending.discard)
        finally:
            self._connections.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    async def _read_binary(self, reader: asyncio.StreamReader,
                           first: bytes) -> "tuple":
        """Read the remainder of one binary frame after its magic byte."""
        try:
            prefix = first + await reader.readexactly(PREFIX_SIZE - 1)
            _, length = parse_prefix(prefix)
            body = await reader.readexactly(length + 5)
        except asyncio.IncompleteReadError as exc:
            raise FrameError(
                f"truncated binary frame: connection closed after "
                f"{len(exc.partial)} bytes") from exc
        self.metrics.inc("service_binary_frames_total")
        return prefix + body, True

    # -- request handling -----------------------------------------------
    async def _handle_line(self, line: bytes,
                           writer: asyncio.StreamWriter,
                           binary: bool = False) -> None:
        received = self._loop.time()
        try:
            wire = decode_binary_frame(line) if binary else decode_frame(line)
            request = Request.from_wire(wire)
        except ProtocolError as exc:
            self.metrics.inc("service_protocol_errors_total")
            await self._send(writer, Response.failure(None, exc),
                             binary=binary)
            return
        self.metrics.inc("service_requests_total")
        try:
            await self._handle_request(request, writer, received, binary)
        except Exception as exc:  # last-resort: never drop a response
            logger.exception("unhandled broker failure")
            await self._send(writer,
                             Response.failure(request.request_id,
                                              map_exception(exc)),
                             binary=binary)

    async def _handle_request(self, request: Request,
                              writer: asyncio.StreamWriter,
                              received: float,
                              binary: bool = False) -> None:
        ctx = (TraceContext.from_wire(request.trace)
               if request.trace is not None else None)
        trace_id = ctx.trace_id if ctx is not None else None
        if request.op == "shutdown":
            await self._send(writer, Response.success(request.request_id,
                                                      {"stopping": True}),
                             binary=binary)
            # Let the response drain before tearing the transport down.
            self._loop.call_later(0.05, self._stop.set)
            return
        if request.op in INLINE_OPS:
            try:
                payload = self._inline(request)
                await self._send(writer, Response.success(
                    request.request_id, payload), binary=binary)
            except Exception as exc:
                await self._send(writer, Response.failure(
                    request.request_id, map_exception(exc),
                    trace_id=trace_id), binary=binary)
            return

        # Coalescing first: a request identical to an in-flight one adds
        # no work, so it attaches to the running task without consuming
        # admission budget.
        key = (fingerprint(request.op, request.payload)
               if request.op in COALESCABLE_OPS else None)
        task = self._inflight.get(key) if key is not None else None
        if task is not None:
            self.metrics.inc("service_coalesced_total")
        else:
            # Admission control: the budget covers queued *and* running
            # work, so with bound k the (k+1)-th concurrent request is
            # shed here, synchronously, without touching the thread pool.
            if self._admitted >= self.max_pending:
                self.metrics.inc("service_shed_total")
                self.observability.slo.record_event("service-shed")
                exc = ServiceOverloaded(
                    f"{self._admitted} requests already admitted "
                    f"(bound {self.max_pending}); retry later",
                    details={"max_pending": self.max_pending})
                await self._send(writer,
                                 Response.failure(request.request_id, exc,
                                                  trace_id=trace_id),
                                 binary=binary)
                return
            self._admitted += 1
            self.metrics.set_gauge("service_pending", self._admitted)
            task = self._spawn_task(request, key)
            task.add_done_callback(lambda _t: self._release())

        deadline = (request.deadline_s if request.deadline_s is not None
                    else self.default_deadline_s)
        try:
            remaining = deadline - (self._loop.time() - received)
            if remaining <= 0:
                raise asyncio.TimeoutError
            # shield(): a deadline expiry abandons *this waiter*, never
            # the computation — coalesced followers may still need it,
            # and a half-cancelled EM fit helps nobody.
            payload = await asyncio.wait_for(asyncio.shield(task),
                                             timeout=remaining)
        except asyncio.TimeoutError:
            self.metrics.inc("service_deadline_exceeded_total")
            self.observability.slo.record_event("service-deadline-exceeded")
            self.observability.slo.record_deadline(False)
            await self._send(writer, Response.failure(
                request.request_id,
                DeadlineExceeded(
                    f"deadline of {deadline:.3f}s exceeded for "
                    f"op {request.op!r}",
                    details={"deadline_s": deadline, "op": request.op}),
                trace_id=trace_id), binary=binary)
            return
        except Exception as exc:
            self.metrics.inc("service_errors_total")
            await self._send(writer, Response.failure(request.request_id,
                                                      map_exception(exc),
                                                      trace_id=trace_id),
                             binary=binary)
            return
        elapsed = self._loop.time() - received
        self.metrics.observe("service_request_seconds", elapsed)
        self.observability.slo.record_latency(elapsed)
        self.observability.slo.record_deadline(True)
        await self._send(writer,
                         Response.success(request.request_id, payload),
                         binary=binary)

    async def _send(self, writer: asyncio.StreamWriter,
                    response: Response, binary: bool = False) -> None:
        """Write one response frame, in the encoding the request used;
        a vanished client is not an error."""
        if writer.is_closing():
            return
        try:
            wire = response.to_wire()
            writer.write(encode_binary_frame(wire) if binary
                         else encode_frame(wire))
            await writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            logger.debug("client went away before response delivery")

    def _inline(self, request: Request) -> Dict[str, Any]:
        """Loop-thread operations; must stay cheap and non-blocking."""
        if request.op == "metrics":
            # ``registry`` is the lossless export (raw histogram values)
            # a client merges into its own registry for fleet-wide
            # aggregation; ``metrics`` stays the human-facing summary.
            return {"metrics": self.metrics.snapshot(),
                    "registry": self.metrics.dump(),
                    "admission": {"admitted": self._admitted,
                                  "max_pending": self.max_pending,
                                  "workers": self.max_workers}}
        return self.service.handle(request)

    def _spawn_task(self, request: Request,
                    key: Optional[str]) -> "asyncio.Future":
        """Start one handler execution (the coalescing-group leader)."""
        task = asyncio.ensure_future(self._loop.run_in_executor(
            self._executor, self._run_handler, request))
        # Keep "task exception was never retrieved" noise out of the
        # logs when every waiter timed out before the failure landed.
        task.add_done_callback(_observe_exception)
        if key is not None:
            self._inflight[key] = task
            task.add_done_callback(
                lambda _t, _k=key: self._inflight.pop(_k, None))
        return task

    def _release(self) -> None:
        self._admitted -= 1
        self.metrics.set_gauge("service_pending", self._admitted)

    def _run_handler(self, request: Request) -> Dict[str, Any]:
        """Execute one handler on a worker thread.

        contextvars do not follow ``run_in_executor``, so the worker
        installs its own observability scope: a fresh per-request
        tracer (the shared tracer's span stack is not concurrency-safe)
        over the shared metrics registry.

        A request carrying a trace context gets traced even when the
        server's own tracer is off — the client's sampling decision
        propagates, as in every distributed-tracing system — and the
        per-request tracer adopts the caller's trace id and parents its
        root span under the caller's span.  Span ids come from a
        per-request :func:`shard_span_base` block, so concurrent
        handlers (and the remote caller) can never collide.
        """
        ctx = (TraceContext.from_wire(request.trace)
               if request.trace is not None else None)
        if ctx is not None or self.observability.tracer.is_recording:
            trace_id = (ctx.trace_id if ctx is not None
                        else self.observability.tracer.trace_id)
            base = (shard_span_base(
                        trace_id, f"server-req-{next(self._request_seq)}")
                    if trace_id is not None else 0)
            tracer = Tracer(
                trace_id=trace_id,
                remote_parent=ctx.span_id if ctx is not None else None,
                span_id_base=base)
            local = Observability(tracer=tracer,
                                  metrics=self.observability.metrics,
                                  slo=self.observability.slo)
        else:
            local = Observability(metrics=self.observability.metrics,
                                  slo=self.observability.slo)
        try:
            with use(local):
                with local.tracer.span("service.request", op=request.op,
                                       request_id=request.request_id):
                    return self.service.handle(request)
        finally:
            spans = local.tracer.spans
            if spans:
                self._request_spans.extend(spans)


def _observe_exception(task: "asyncio.Future") -> None:
    if not task.cancelled():
        task.exception()


class ServerThread:
    """A :class:`ServiceServer` on a background thread.

    Usage::

        with ServerThread(EstimationService()) as thread:
            client = ServiceClient(thread.bound_address)
            ...

    The default address is TCP ``127.0.0.1:0`` (ephemeral port);
    :meth:`start` blocks until the listener is bound and returns the
    resolved address.
    """

    def __init__(self, service: Optional[EstimationService] = None,
                 address: Optional[ServiceAddress] = None,
                 **server_kwargs: Any) -> None:
        self.service = service if service is not None else EstimationService()
        self.address = (address if address is not None
                        else ServiceAddress(host="127.0.0.1", port=0))
        self.server = ServiceServer(self.service, self.address,
                                    **server_kwargs)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._bound: Optional[ServiceAddress] = None
        self._error: Optional[BaseException] = None

    @property
    def bound_address(self) -> ServiceAddress:
        if self._bound is None:
            raise RuntimeError("server thread is not started")
        return self._bound

    def start(self, timeout: float = 10.0) -> ServiceAddress:
        """Launch the loop thread; returns once the listener is bound."""
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(target=self._run,
                                        name="repro-service", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError(
                f"service failed to start within {timeout}s")
        if self._error is not None:
            raise RuntimeError(
                f"service failed to start: {self._error}") from self._error
        return self._bound

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.serve(ready=self._on_ready))
        except BaseException as exc:  # surfaced by start()/stop()
            self._error = exc
            self._ready.set()
        finally:
            loop.close()

    def _on_ready(self, address: ServiceAddress) -> None:
        self._bound = address
        self._ready.set()

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the broker and join the loop thread."""
        if self._thread is None:
            return
        if self._thread.is_alive() and self._loop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
