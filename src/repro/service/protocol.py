"""The estimation service's wire protocol.

One request or response per line, each a single JSON object (JSON
lines): a client writes ``{"v": 1, "id": 7, "op": "estimate",
"deadline_s": 5.0, "payload": {...}}\\n`` and reads back ``{"v": 1,
"id": 7, "ok": true, "payload": {...}}\\n`` or ``{"v": 1, "id": 7,
"ok": false, "error": {"type": "overloaded", ...}}\\n``.  Responses on
a pipelined connection may arrive out of order; the ``id`` field is the
correlation key.

Numeric fidelity matters here: tradeoff curves round-trip through JSON
bit-exactly, because Python serializes floats with ``repr`` (shortest
round-trip representation) and parses them back to the identical IEEE-754
double.  That property is what lets a :class:`~repro.service.client.
RemoteEstimator`-backed controller reproduce an in-process run exactly.

Error types are part of the protocol: each :class:`ServiceError`
subclass owns a wire-level ``code``, the server serializes the code and
message, and the client rehydrates the matching exception class — so
``except ServiceOverloaded`` works across the socket.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import socket
from typing import Any, Dict, Optional

import numpy as np

from repro.estimators.base import EstimationProblem

__all__ = [
    "PROTOCOL_VERSION",
    "ServiceError",
    "ServiceOverloaded",
    "DeadlineExceeded",
    "RequestRejected",
    "EstimationRejected",
    "ProtocolError",
    "FrameError",
    "RemoteError",
    "ShardUnavailable",
    "exception_for",
    "Request",
    "Response",
    "ServiceAddress",
    "encode_frame",
    "decode_frame",
    "encode_array",
    "decode_array",
    "problem_to_payload",
    "problem_from_payload",
    "fingerprint",
]

#: Version stamped on every frame; a server rejects frames from the
#: future rather than misinterpreting them.
PROTOCOL_VERSION = 1


# ----------------------------------------------------------------------
# Typed errors
# ----------------------------------------------------------------------
# The ServiceError family was born in this module and moved to
# repro.errors in the exception consolidation; these aliases keep
# ``from repro.service.protocol import ServiceOverloaded`` (and every
# ``except`` clause written against it) resolving to the same class
# objects.
from repro.errors import (  # noqa: E402  (re-export block)
    DeadlineExceeded,
    EstimationRejected,
    FrameError,
    ProtocolError,
    RemoteError,
    RequestRejected,
    ServiceError,
    ServiceOverloaded,
    ShardUnavailable,
)

_ERROR_TYPES: Dict[str, type] = {
    cls.code: cls
    for cls in (ServiceOverloaded, DeadlineExceeded, RequestRejected,
                EstimationRejected, ProtocolError, FrameError,
                RemoteError, ShardUnavailable)
}


def exception_for(code: str, message: str,
                  details: Optional[Dict[str, Any]] = None) -> ServiceError:
    """Rehydrate the typed exception for a wire-level error code."""
    cls = _ERROR_TYPES.get(code, RemoteError)
    exc = cls(message, details=details)
    exc.code = code  # preserve unknown codes verbatim
    return exc


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def encode_frame(obj: Dict[str, Any]) -> bytes:
    """One JSON-lines frame (compact separators, trailing newline)."""
    return (json.dumps(obj, separators=(",", ":"), default=_jsonable)
            + "\n").encode("utf-8")


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on malformed input."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"unparseable frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}")
    return obj


def _jsonable(value: Any):
    """Fallback serializer: numpy scalars and arrays degrade gracefully.

    ``tolist`` is checked before ``item`` — arrays expose both, but
    ``item()`` only works for single-element arrays.
    """
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    return str(value)


@dataclasses.dataclass
class Request:
    """One operation invocation.

    Attributes:
        op: Operation name (``ping``, ``estimate``, ``optimize``,
            ``calibrate-report``, ``metrics``, ``registry-list``,
            ``sleep``, ``shutdown``).
        payload: Operation-specific arguments.
        request_id: Client-chosen correlation id, echoed in the response.
        deadline_s: Seconds the client is willing to wait, measured from
            server receipt; ``None`` uses the server's default.
        trace: Optional trace-context dict
            (:meth:`repro.obs.propagation.TraceContext.to_wire`); absent
            from the frame when ``None``, so untraced runs pay zero wire
            bytes.  Malformed contexts are dropped server-side rather
            than failing the request.
    """

    op: str
    payload: Dict[str, Any] = dataclasses.field(default_factory=dict)
    request_id: int = 0
    deadline_s: Optional[float] = None
    trace: Optional[Dict[str, Any]] = None

    def to_wire(self) -> Dict[str, Any]:
        frame: Dict[str, Any] = {"v": PROTOCOL_VERSION,
                                 "id": self.request_id, "op": self.op,
                                 "payload": self.payload}
        if self.deadline_s is not None:
            frame["deadline_s"] = self.deadline_s
        if self.trace is not None:
            frame["trace"] = self.trace
        return frame

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "Request":
        version = frame.get("v", PROTOCOL_VERSION)
        if not isinstance(version, int) or version > PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {version!r} "
                f"(this server speaks {PROTOCOL_VERSION})")
        op = frame.get("op")
        if not isinstance(op, str) or not op:
            raise ProtocolError("frame lacks an 'op' string")
        payload = frame.get("payload", {})
        if not isinstance(payload, dict):
            raise ProtocolError("'payload' must be a JSON object")
        deadline = frame.get("deadline_s")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError):
                raise ProtocolError("'deadline_s' must be a number") from None
            if deadline <= 0:
                raise ProtocolError(
                    f"'deadline_s' must be positive, got {deadline}")
        trace = frame.get("trace")
        if not isinstance(trace, dict):
            trace = None
        return cls(op=op, payload=payload,
                   request_id=frame.get("id", 0), deadline_s=deadline,
                   trace=trace)


@dataclasses.dataclass
class Response:
    """The outcome of one request: a payload, or a typed error."""

    request_id: Optional[int]
    ok: bool
    payload: Dict[str, Any] = dataclasses.field(default_factory=dict)
    error: Optional[Dict[str, Any]] = None

    @classmethod
    def success(cls, request_id: Optional[int],
                payload: Dict[str, Any]) -> "Response":
        return cls(request_id=request_id, ok=True, payload=payload)

    @classmethod
    def failure(cls, request_id: Optional[int], exc: Exception,
                trace_id: Optional[str] = None) -> "Response":
        if isinstance(exc, ServiceError):
            error = {"type": exc.code, "message": str(exc),
                     "details": exc.details}
        else:
            error = {"type": RemoteError.code,
                     "message": f"{type(exc).__name__}: {exc}",
                     "details": {}}
        # Stamp the trace id into the error payload so a client log line
        # or a rehydrated exception can be joined against the merged
        # trace tree.  Details set by the handler win.
        if trace_id is not None and "trace_id" not in error["details"]:
            error["details"] = dict(error["details"], trace_id=trace_id)
        return cls(request_id=request_id, ok=False, error=error)

    def result(self) -> Dict[str, Any]:
        """The payload, or the rehydrated typed exception."""
        if self.ok:
            return self.payload
        error = self.error or {}
        raise exception_for(error.get("type", RemoteError.code),
                            error.get("message", "unknown error"),
                            error.get("details"))

    def to_wire(self) -> Dict[str, Any]:
        frame: Dict[str, Any] = {"v": PROTOCOL_VERSION,
                                 "id": self.request_id, "ok": self.ok}
        if self.ok:
            frame["payload"] = self.payload
        else:
            frame["error"] = self.error
        return frame

    @classmethod
    def from_wire(cls, frame: Dict[str, Any]) -> "Response":
        if "ok" not in frame:
            raise ProtocolError("response frame lacks 'ok'")
        return cls(request_id=frame.get("id"), ok=bool(frame["ok"]),
                   payload=frame.get("payload", {}) or {},
                   error=frame.get("error"))


# ----------------------------------------------------------------------
# Addresses
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ServiceAddress:
    """Where a service listens: TCP ``host:port`` or a unix socket path."""

    host: Optional[str] = None
    port: Optional[int] = None
    path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.path is None and (self.host is None or self.port is None):
            raise ValueError(
                "address needs either a unix socket path or host and port")
        if self.path is not None and self.host is not None:
            raise ValueError("address cannot have both a path and a host")

    def connect(self, timeout: Optional[float] = None) -> socket.socket:
        """Open a connected stream socket to this address."""
        if self.path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            try:
                sock.connect(self.path)
            except BaseException:
                sock.close()
                raise
            return sock
        return socket.create_connection((self.host, self.port),
                                        timeout=timeout)

    @classmethod
    def parse(cls, text: str) -> "ServiceAddress":
        """Parse ``unix:/path/to.sock`` or ``host:port``."""
        if text.startswith("unix:"):
            return cls(path=text[len("unix:"):])
        host, sep, port = text.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(
                f"cannot parse address {text!r}; expected host:port or "
                f"unix:/path")
        return cls(host=host or "127.0.0.1", port=int(port))

    def __str__(self) -> str:
        if self.path is not None:
            return f"unix:{self.path}"
        return f"{self.host}:{self.port}"


# ----------------------------------------------------------------------
# Payload codecs
# ----------------------------------------------------------------------
def encode_array(array: np.ndarray) -> list:
    """A float array as (nested) JSON lists; exact for IEEE doubles."""
    return np.asarray(array, dtype=float).tolist()


def decode_array(value: Any) -> np.ndarray:
    """Rebuild a float array from :func:`encode_array` output."""
    return np.asarray(value, dtype=float)


def problem_to_payload(problem: EstimationProblem) -> Dict[str, Any]:
    """Serialize an :class:`EstimationProblem` for the ``estimate`` op."""
    return {
        "features": encode_array(problem.features),
        "prior": (None if problem.prior is None
                  else encode_array(problem.prior)),
        "observed_indices": [int(i) for i in problem.observed_indices],
        "observed_values": encode_array(problem.observed_values),
    }


def problem_from_payload(payload: Dict[str, Any]) -> EstimationProblem:
    """Rebuild an :class:`EstimationProblem`; validation happens in its
    constructor, surfacing malformed payloads as ``ValueError``."""
    try:
        prior = payload.get("prior")
        return EstimationProblem(
            features=decode_array(payload["features"]),
            prior=None if prior is None else decode_array(prior),
            observed_indices=np.asarray(payload["observed_indices"],
                                        dtype=int),
            observed_values=decode_array(payload["observed_values"]),
        )
    except KeyError as exc:
        raise RequestRejected(f"problem payload lacks {exc}") from exc


def fingerprint(op: str, payload: Dict[str, Any]) -> str:
    """Content digest used as the request-coalescing key.

    Canonical JSON (sorted keys) over the operation and payload; two
    requests with the same fingerprint are guaranteed to produce the
    same result, so the broker runs one fit and fans the answer out.
    """
    canonical = json.dumps([op, payload], sort_keys=True,
                           separators=(",", ":"), default=_jsonable)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
