"""repro.service: a multi-tenant LEO estimation service.

The paper's amortization argument — "the models are sufficient for
making predictions and LEO does not need to be executed again for the
life of the application under control" (Section 6.7) — only pays off
when fitted models outlive a single process.  This package is the
deployment shape that realizes it: a long-running service that fits
models once, versions them in a :class:`ModelRegistry`, and serves
estimates to any number of tenants.

Layers (see docs/SERVICE.md for the protocol and operational reference):

* :mod:`repro.service.protocol` — the JSON-lines wire protocol (v1),
  typed error hierarchy (:class:`ServiceOverloaded`,
  :class:`DeadlineExceeded`, ...), and :class:`ServiceAddress`.
* :mod:`repro.service.frames` — the length-prefixed binary wire
  protocol (v2): bit-exact float64 frames, CRC-checked, negotiated
  per connection so v1 clients keep working (see docs/SHARDING.md).
* :mod:`repro.service.registry` — :class:`ModelRegistry`, a versioned,
  schema-checked model store layered on
  :class:`repro.runtime.persistence.EstimateStore`.
* :mod:`repro.service.server` — :class:`EstimationService` (op handlers
  + admission control + request coalescing) behind
  :class:`ServiceServer` (asyncio transport) and :class:`ServerThread`
  (background-thread harness for tests and examples).
* :mod:`repro.service.client` — the synchronous :class:`ServiceClient`
  with retry/backoff, and :class:`RemoteEstimator`, an
  :class:`~repro.estimators.base.Estimator` adapter that lets a
  :class:`~repro.runtime.controller.RuntimeController` consume the
  service unchanged.

Quickstart::

    from repro.service import RemoteEstimator, ServerThread, ServiceClient

    with ServerThread() as server:
        client = ServiceClient(server.address)
        controller = RuntimeController(machine, space,
                                       estimator=RemoteEstimator(client),
                                       prior_rates=..., prior_powers=...)
        estimate = controller.calibrate(profile)

or from the shell: ``python -m repro serve`` and ``python -m repro
request ping``.  For the horizontally scaled deployment — N brokers, a
consistent-hash router, registry replication — see :mod:`repro.shard`.
"""

from repro.service.client import RemoteEstimator, ServiceClient
from repro.service.frames import (
    decode_binary_frame,
    encode_binary_frame,
)
from repro.service.protocol import (
    DeadlineExceeded,
    EstimationRejected,
    FrameError,
    ProtocolError,
    RemoteError,
    Request,
    RequestRejected,
    Response,
    ServiceAddress,
    ServiceError,
    ServiceOverloaded,
    ShardUnavailable,
    problem_from_payload,
    problem_to_payload,
)
from repro.service.registry import ModelRecord, ModelRegistry, PriorPool
from repro.service.server import EstimationService, ServerThread, ServiceServer

__all__ = [
    "DeadlineExceeded",
    "EstimationRejected",
    "EstimationService",
    "FrameError",
    "ModelRecord",
    "ModelRegistry",
    "PriorPool",
    "ProtocolError",
    "RemoteError",
    "RemoteEstimator",
    "Request",
    "RequestRejected",
    "Response",
    "ServerThread",
    "ServiceAddress",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceServer",
    "ShardUnavailable",
    "decode_binary_frame",
    "encode_binary_frame",
    "problem_from_payload",
    "problem_to_payload",
]
