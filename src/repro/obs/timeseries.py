"""Fixed-capacity time series: the SLO layer's memory.

An :class:`SloTracker` watches streams that are *dense* — one point per
heartbeat, per quantum, per epoch — over runs that can be arbitrarily
long.  Keeping every point would make the observability layer the
biggest allocation in the process; keeping only summaries would make
windowed queries (the error-budget burn rate over the last N seconds)
impossible.  A :class:`TimeSeries` is the standard compromise: a ring
buffer of ``(timestamp, value)`` points with bounded capacity, O(1)
append, and windowed reads over whatever survives.

Timestamps are whatever clock the caller lives on — the simulated
machine clock for controller streams, wall time for service streams —
and must be non-decreasing per series (ring eviction assumes appends
arrive in order).  Stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

__all__ = ["TimeSeries"]


class TimeSeries:
    """A bounded ring buffer of ``(timestamp, value)`` points.

    Args:
        capacity: Maximum retained points; the oldest point is evicted
            on overflow.  Bounded so an SLO tracker over a million-
            quantum run stays a few kilobytes.
    """

    __slots__ = ("capacity", "_times", "_values", "_head", "_size")

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._times: List[float] = [0.0] * self.capacity
        self._values: List[float] = [0.0] * self.capacity
        self._head = 0  # next write position
        self._size = 0

    def append(self, timestamp: float, value: float) -> None:
        """Record one point; evicts the oldest at capacity.

        Timestamps must be non-decreasing; going backwards would break
        every windowed query silently, so it fails loudly instead.
        """
        timestamp = float(timestamp)
        if self._size and timestamp < self.last_time:
            raise ValueError(
                f"timestamp {timestamp} precedes the last point "
                f"({self.last_time}); series must be appended in order")
        self._times[self._head] = timestamp
        self._values[self._head] = float(value)
        self._head = (self._head + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    # -- reading --------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        """Points oldest-first."""
        start = (self._head - self._size) % self.capacity
        for i in range(self._size):
            j = (start + i) % self.capacity
            yield self._times[j], self._values[j]

    @property
    def last_time(self) -> float:
        """The newest point's timestamp (ValueError when empty)."""
        if not self._size:
            raise ValueError("time series is empty")
        return self._times[(self._head - 1) % self.capacity]

    @property
    def last_value(self) -> float:
        """The newest point's value (ValueError when empty)."""
        if not self._size:
            raise ValueError("time series is empty")
        return self._values[(self._head - 1) % self.capacity]

    def window(self, seconds: Optional[float],
               now: Optional[float] = None) -> List[Tuple[float, float]]:
        """Points with ``timestamp >= now - seconds``, oldest-first.

        ``seconds=None`` returns everything retained; ``now`` defaults
        to the newest timestamp, so a simulated-clock series windows
        itself without a wall clock.
        """
        points = list(self)
        if seconds is None or not points:
            return points
        if now is None:
            now = points[-1][0]
        cutoff = now - float(seconds)
        return [(t, v) for t, v in points if t >= cutoff]

    def values(self, seconds: Optional[float] = None,
               now: Optional[float] = None) -> List[float]:
        """Just the values of :meth:`window`."""
        return [v for _, v in self.window(seconds, now)]
