"""Observability: structured tracing, metrics, and profiling hooks.

A dependency-free subsystem with three pillars (see
docs/OBSERVABILITY.md for the span/metric reference):

* **Tracing** — :class:`Tracer` records nested :class:`Span` objects
  over the runtime loop (``controller.calibrate`` → ``estimator.fit`` →
  ``em.iteration``; ``controller.quantum`` → ``lp.solve``), exportable
  as JSONL via :func:`write_trace` and renderable as an ASCII tree via
  :func:`repro.reporting.render_span_tree`.
* **Metrics** — :class:`MetricsRegistry` owns counters, gauges and
  histograms (``em_iterations_total``, ``lp_resolves_total``,
  ``fit_seconds``, ``sampling_energy_joules``,
  ``constraint_violation_ratio``) with a :meth:`~MetricsRegistry.snapshot`
  export.
* **Profiling** — :func:`start_timer` / :func:`stop_timer` /
  :func:`timed` hooks on the EM, hull, and LP hot paths.

Everything is **off by default**: the ambient context holds null
implementations whose operations are single no-op calls, so the Section
6.7 overhead numbers are unaffected by the instrumentation.  Enable per
block with::

    from repro.obs import Observability, use, write_trace

    ob = Observability.recording()
    with use(ob):
        controller.run(...)
    write_trace("run.jsonl", ob.tracer.spans)
    ob.metrics.write_json("run-metrics.json")

or from the CLI with ``--trace`` / ``--metrics`` / ``--slo`` and inspect
with ``python -m repro obs summarize run.jsonl`` (``slo`` and
``critical-path`` subcommands cover the other artifacts).

Distributed runs (PR 6) add three layers on top, all off by default:

* **Propagation** — :class:`TraceContext` carries ``(trace_id, parent
  span id, baggage)`` across sockets (the service wire protocol) and
  process pools (the harness initializer); receiving tracers number
  spans from disjoint :func:`shard_span_base` blocks, and
  :func:`merge_spans` / :func:`read_shards` fold the shards back into
  one tree.
* **Aggregation** — :meth:`MetricsRegistry.dump` /
  :meth:`~MetricsRegistry.merge` move whole registries between
  processes losslessly (counters add, gauges last-write, histograms
  concatenate raw values); :func:`labeled` encodes per-tenant label
  dimensions into series names.
* **SLOs** — :class:`SloTracker` evaluates latency / deadline-hit-rate
  / energy-overhead objectives with error-budget burn rates over
  :class:`TimeSeries` ring buffers, and counts resilience events.
"""

from repro.obs.collector import merge_spans, orphan_spans, read_shards
from repro.obs.context import (
    NULL_OBSERVABILITY,
    Observability,
    get_metrics,
    get_observability,
    get_slo,
    get_tracer,
    use,
)
from repro.obs.logging_setup import StructuredFormatter, logging_setup
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    labeled,
    parse_labeled,
)
from repro.obs.profiling import start_timer, stop_timer, timed, timer
from repro.obs.propagation import (
    TraceContext,
    current_trace_context,
    new_trace_id,
    shard_span_base,
)
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    NULL_SLO,
    NullSloTracker,
    SloObjective,
    SloStatus,
    SloTracker,
)
from repro.obs.timeseries import TimeSeries
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    read_trace,
    write_trace,
)

__all__ = [
    "Observability",
    "NULL_OBSERVABILITY",
    "get_observability",
    "get_tracer",
    "get_metrics",
    "get_slo",
    "use",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "read_trace",
    "write_trace",
    "TraceContext",
    "current_trace_context",
    "new_trace_id",
    "shard_span_base",
    "merge_spans",
    "read_shards",
    "orphan_spans",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "labeled",
    "parse_labeled",
    "TimeSeries",
    "SloObjective",
    "SloStatus",
    "SloTracker",
    "NullSloTracker",
    "NULL_SLO",
    "DEFAULT_OBJECTIVES",
    "start_timer",
    "stop_timer",
    "timer",
    "timed",
    "StructuredFormatter",
    "logging_setup",
]
