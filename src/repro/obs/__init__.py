"""Observability: structured tracing, metrics, and profiling hooks.

A dependency-free subsystem with three pillars (see
docs/OBSERVABILITY.md for the span/metric reference):

* **Tracing** — :class:`Tracer` records nested :class:`Span` objects
  over the runtime loop (``controller.calibrate`` → ``estimator.fit`` →
  ``em.iteration``; ``controller.quantum`` → ``lp.solve``), exportable
  as JSONL via :func:`write_trace` and renderable as an ASCII tree via
  :func:`repro.reporting.render_span_tree`.
* **Metrics** — :class:`MetricsRegistry` owns counters, gauges and
  histograms (``em_iterations_total``, ``lp_resolves_total``,
  ``fit_seconds``, ``sampling_energy_joules``,
  ``constraint_violation_ratio``) with a :meth:`~MetricsRegistry.snapshot`
  export.
* **Profiling** — :func:`start_timer` / :func:`stop_timer` /
  :func:`timed` hooks on the EM, hull, and LP hot paths.

Everything is **off by default**: the ambient context holds null
implementations whose operations are single no-op calls, so the Section
6.7 overhead numbers are unaffected by the instrumentation.  Enable per
block with::

    from repro.obs import Observability, use, write_trace

    ob = Observability.recording()
    with use(ob):
        controller.run(...)
    write_trace("run.jsonl", ob.tracer.spans)
    ob.metrics.write_json("run-metrics.json")

or from the CLI with ``--trace`` / ``--metrics`` and inspect with
``python -m repro obs summarize run.jsonl``.
"""

from repro.obs.context import (
    NULL_OBSERVABILITY,
    Observability,
    get_metrics,
    get_observability,
    get_tracer,
    use,
)
from repro.obs.logging_setup import StructuredFormatter, logging_setup
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.obs.profiling import start_timer, stop_timer, timed, timer
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    read_trace,
    write_trace,
)

__all__ = [
    "Observability",
    "NULL_OBSERVABILITY",
    "get_observability",
    "get_tracer",
    "get_metrics",
    "use",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "read_trace",
    "write_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "start_timer",
    "stop_timer",
    "timer",
    "timed",
    "StructuredFormatter",
    "logging_setup",
]
