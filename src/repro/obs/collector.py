"""Merging per-process span shards into one coherent trace.

A distributed run leaves spans in several places: the originating
tracer, worker chunks (shipped back through the pool and adopted), and
service servers (per-request tracers, exported to their own JSONL).
The collector folds any combination into a single tree:

* :func:`merge_spans` — concatenate shards, repairing duplicate span
  ids by remapping the later shard's ids (and its internal parent
  references) into fresh space.  Ids are already disjoint by
  construction (:func:`~repro.obs.propagation.shard_span_base`), so
  remapping is the belt to that suspender: a hash collision or a buggy
  exporter degrades to a still-renderable tree, not a cycle.
* :func:`read_shards` — :func:`merge_spans` over JSONL trace files,
  what ``repro obs summarize a.jsonl b.jsonl`` runs.
* :func:`orphan_spans` — spans whose parent is missing from the merged
  set; the acceptance check for "every shard arrived".

Merging never invents parents: a genuinely orphaned span stays orphaned
(and the renderer promotes it to a root), because silently reparenting
would hide exactly the propagation bugs this layer exists to surface.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Iterable, List, Sequence, Union

from repro.obs.tracing import Span, read_trace

PathLike = Union[str, pathlib.Path]

__all__ = ["merge_spans", "read_shards", "orphan_spans"]


def merge_spans(*shards: Iterable[Span]) -> List[Span]:
    """Merge span shards into one list, repairing id collisions.

    Shards are taken in argument order; a span whose id collides with
    one from an *earlier* shard is remapped to a fresh id, and parent
    references inside its own shard follow it.  Within-shard duplicates
    are kept verbatim — they are recorder bugs the renderer must
    tolerate, not repair.  The result is sorted like every other span
    list: by ``(start, span_id)``.
    """
    merged: List[Span] = []
    seen: set = set()
    next_fresh = 0
    for shard in shards:
        shard = list(shard)
        remap: Dict[int, int] = {}
        shard_ids = {span.span_id for span in shard}
        for span in shard:
            if span.span_id in seen and span.span_id not in remap:
                while next_fresh in seen or next_fresh in shard_ids:
                    next_fresh += 1
                remap[span.span_id] = next_fresh
                seen.add(next_fresh)
        for span in shard:
            span_id = remap.get(span.span_id, span.span_id)
            parent_id = span.parent_id
            # Only in-shard parent references follow a remap: the
            # colliding id means something else in the other shard.
            if parent_id is not None and parent_id in remap \
                    and parent_id in shard_ids:
                parent_id = remap[parent_id]
            if span_id != span.span_id or parent_id != span.parent_id:
                span = Span(name=span.name, span_id=span_id,
                            parent_id=parent_id, start=span.start,
                            end=span.end,
                            attributes=dict(span.attributes),
                            trace_id=span.trace_id)
            merged.append(span)
            seen.add(span_id)
        next_fresh = max(seen, default=0) + 1
    return sorted(merged, key=lambda s: (s.start, s.span_id))


def read_shards(paths: Sequence[PathLike]) -> List[Span]:
    """Read several JSONL trace shards and merge them."""
    return merge_spans(*(read_trace(path) for path in paths))


def orphan_spans(spans: Sequence[Span]) -> List[Span]:
    """Spans whose parent id is set but absent from ``spans``.

    An empty result is the distributed-trace acceptance condition:
    every cross-process edge resolved, so the merged tree is whole.
    """
    present = {span.span_id for span in spans}
    return [span for span in spans
            if span.parent_id is not None and span.parent_id not in present]
