"""Trace-context propagation across process and socket boundaries.

PRs 2-5 made the reproduction multi-process — a ProcessPool experiment
harness, an asyncio estimation service, a cluster coordinator — but the
tracer stayed in-process: worker spans and server-side handler spans
were silently dropped.  This module carries a trace across those
boundaries:

* :class:`TraceContext` — the serializable triple ``(trace_id, parent
  span_id, baggage)``.  Small enough to ride in a wire frame's optional
  ``trace`` field or a pool initializer argument; absent entirely when
  tracing is off, so the disabled path adds zero bytes to the wire.
* :func:`current_trace_context` — snapshot the ambient tracer's
  position (innermost open span) for injection into an outgoing
  request or a worker payload.  Returns ``None`` when not recording.
* :func:`shard_span_base` — a per-shard span-id block.  Every remote
  participant numbers its spans from a disjoint 2^32-aligned base
  derived from ``(trace_id, shard name)``, so shards merge without id
  collisions and without any cross-process coordination.

The receiving side builds a :class:`~repro.obs.tracing.Tracer` with
``trace_id=ctx.trace_id, remote_parent=ctx.span_id,
span_id_base=shard_span_base(...)``: its root spans parent under the
remote caller's span, and the collector (:mod:`repro.obs.collector`)
folds the shards into one coherent tree.

Trace ids are 16 hex characters.  :func:`new_trace_id` draws from OS
entropy by default but accepts a seed for deterministic tests; neither
touches numpy's RNG streams, so enabling tracing never perturbs an
experiment's results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from typing import Any, Dict, Optional

__all__ = [
    "TraceContext",
    "current_trace_context",
    "new_trace_id",
    "shard_span_base",
]

#: Shard span-id blocks start here; the originating process allocates
#: ids from 1, so anything below the first block is unambiguously local.
_SHARD_SHIFT = 32


def new_trace_id(seed: Optional[object] = None) -> str:
    """A 16-hex-character trace id.

    ``seed=None`` draws 8 bytes of OS entropy (never numpy's streams);
    any other value derives the id deterministically via SHA-256, which
    is what keeps traced test runs reproducible.
    """
    if seed is None:
        return os.urandom(8).hex()
    digest = hashlib.sha256(repr(seed).encode("utf-8"))
    return digest.hexdigest()[:16]


def shard_span_base(trace_id: str, shard: str) -> int:
    """The span-id block base for one shard of a distributed trace.

    SHA-256 over ``(trace_id, shard)`` picks a 31-bit block number,
    shifted above the 32-bit local-id range — deterministic (the same
    chunk gets the same ids whichever worker runs it), coordination-free,
    and collision-free against the originating process's ids.  Distinct
    shards collide only on a 31-bit hash collision, which the collector
    additionally repairs by remapping (:func:`repro.obs.collector.
    merge_spans`).
    """
    digest = hashlib.sha256(f"{trace_id}/{shard}".encode("utf-8")).digest()
    block = (int.from_bytes(digest[:4], "big") >> 1) | 1
    return block << _SHARD_SHIFT


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """The portable identity of a position inside a distributed trace.

    Attributes:
        trace_id: The trace this position belongs to (16 hex chars).
        span_id: The span the remote work should parent under; ``None``
            makes remote roots top-level (a trace with no open span).
        baggage: Small string-to-string map carried verbatim along the
            call path (tenant names, experiment labels).  Keep it tiny:
            it rides every frame.
    """

    trace_id: str
    span_id: Optional[int] = None
    baggage: Dict[str, str] = dataclasses.field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        """The JSON-ready form carried in a frame's ``trace`` field."""
        wire: Dict[str, Any] = {"trace_id": self.trace_id}
        if self.span_id is not None:
            wire["span_id"] = self.span_id
        if self.baggage:
            wire["baggage"] = dict(self.baggage)
        return wire

    @classmethod
    def from_wire(cls, payload: Any) -> Optional["TraceContext"]:
        """Rebuild a context from a frame; tolerant of malformed input.

        Propagation is best-effort metadata — a bad ``trace`` field
        must degrade to "no context", never fail the request carrying
        it.
        """
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        span_id = payload.get("span_id")
        if span_id is not None:
            try:
                span_id = int(span_id)
            except (TypeError, ValueError):
                span_id = None
        baggage = payload.get("baggage")
        if not isinstance(baggage, dict):
            baggage = {}
        return cls(trace_id=trace_id, span_id=span_id,
                   baggage={str(k): str(v) for k, v in baggage.items()})

    def child(self, span_id: Optional[int]) -> "TraceContext":
        """The same trace, repositioned under ``span_id``."""
        return TraceContext(trace_id=self.trace_id, span_id=span_id,
                            baggage=self.baggage)


def current_trace_context() -> Optional[TraceContext]:
    """Snapshot the ambient tracer's position for propagation.

    ``None`` when the ambient tracer is not recording or carries no
    trace id (a bare local :class:`~repro.obs.tracing.Tracer`), which
    callers treat as "send nothing" — the optional wire field stays
    absent and the disabled path stays zero-cost.
    """
    from repro.obs.context import get_tracer

    tracer = get_tracer()
    if not tracer.is_recording:
        return None
    trace_id = getattr(tracer, "trace_id", None)
    if not trace_id:
        return None
    return TraceContext(trace_id=trace_id, span_id=tracer.current_span_id)
