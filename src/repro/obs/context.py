"""The ambient observability context.

Instrumentation deep in the stack (the EM engine, the LP solver, the
estimator base class) cannot have a tracer threaded through every
constructor without distorting the paper-facing APIs.  Instead, one
:class:`Observability` bundle — a tracer, a metrics registry, and an
SLO tracker — is installed into a :mod:`contextvars` variable, and
instrumented code reads it through :func:`get_observability` /
:func:`get_tracer` / :func:`get_metrics` / :func:`get_slo`::

    from repro.obs import MetricsRegistry, Observability, Tracer, use

    with use(Observability(tracer=Tracer(), metrics=MetricsRegistry())) as ob:
        controller.run(...)
    write_trace("run.jsonl", ob.tracer.spans)

The default context is :data:`NULL_OBSERVABILITY` (null tracer, null
metrics), so uninstrumented runs pay one contextvar lookup plus a no-op
method call per instrumentation site — nothing is allocated and nothing
is recorded.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Any, Iterator, Optional

from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.slo import NULL_SLO, SloTracker
from repro.obs.tracing import NULL_TRACER, Tracer

__all__ = [
    "Observability",
    "NULL_OBSERVABILITY",
    "get_observability",
    "get_tracer",
    "get_metrics",
    "get_slo",
    "use",
]


class Observability:
    """A tracer, a metrics registry, and an SLO tracker travelling
    together.

    Any pillar may be omitted; it defaults to the corresponding null
    implementation, so ``Observability(tracer=Tracer())`` traces without
    collecting metrics or SLO streams, and vice versa.
    """

    __slots__ = ("tracer", "metrics", "slo")

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 slo: Optional[SloTracker] = None) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.slo = slo if slo is not None else NULL_SLO

    @property
    def enabled(self) -> bool:
        """True when any pillar is recording."""
        return (self.tracer.is_recording or self.metrics.is_recording
                or self.slo.is_recording)

    def span(self, name: str, **attributes: Any):
        """Shorthand for ``self.tracer.span(...)``."""
        return self.tracer.span(name, **attributes)

    @classmethod
    def recording(cls, trace_id: Optional[str] = None) -> "Observability":
        """A fresh fully-recording bundle.

        The tracer carries a trace id (freshly drawn unless supplied),
        so spans from this bundle propagate across process and socket
        boundaries; see :mod:`repro.obs.propagation`.
        """
        from repro.obs.propagation import new_trace_id

        return cls(tracer=Tracer(trace_id=trace_id or new_trace_id()),
                   metrics=MetricsRegistry(), slo=SloTracker())


#: The disabled bundle installed by default.
NULL_OBSERVABILITY = Observability()

_STATE: contextvars.ContextVar[Observability] = contextvars.ContextVar(
    "repro_observability", default=NULL_OBSERVABILITY)


def get_observability() -> Observability:
    """The ambient observability bundle (never ``None``)."""
    return _STATE.get()


def get_tracer():
    """The ambient tracer (the null tracer when disabled)."""
    return _STATE.get().tracer


def get_metrics():
    """The ambient metrics registry (the null registry when disabled)."""
    return _STATE.get().metrics


def get_slo():
    """The ambient SLO tracker (the null tracker when disabled)."""
    return _STATE.get().slo


@contextlib.contextmanager
def use(observability: Optional[Observability]) -> Iterator[Observability]:
    """Install ``observability`` as the ambient bundle for the block.

    ``None`` leaves the current bundle in place (handy for optional
    wiring: ``with use(self.observability): ...`` regardless of whether
    the caller configured one).
    """
    if observability is None:
        yield _STATE.get()
        return
    token = _STATE.set(observability)
    try:
        yield observability
    finally:
        _STATE.reset(token)
