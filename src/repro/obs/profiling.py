"""Lightweight ``perf_counter``-based profiling hooks.

The hot paths (the masked-posterior factorization in
:mod:`repro.core.linalg`, the hull construction in
:mod:`repro.optimize.pareto`, the estimator fit) record their wall-clock
cost into histograms of the ambient metrics registry.  The hooks are
written so the disabled path never calls ``perf_counter``:

    started = start_timer()            # None when metrics are disabled
    ...                                # the timed work
    stop_timer("linalg_posterior_seconds", started)

or, for whole functions, the :func:`timed` decorator.
"""

from __future__ import annotations

import contextlib
import functools
import time
from typing import Callable, Iterator, Optional, TypeVar

from repro.obs.context import get_metrics

__all__ = ["start_timer", "stop_timer", "timer", "timed"]

_F = TypeVar("_F", bound=Callable)


def start_timer() -> Optional[float]:
    """``perf_counter()`` if the ambient metrics registry records, else None."""
    if get_metrics().is_recording:
        return time.perf_counter()
    return None


def stop_timer(name: str, started: Optional[float]) -> None:
    """Record the elapsed seconds into histogram ``name``.

    A ``None`` bookmark (metrics were disabled at :func:`start_timer`
    time) is a no-op.
    """
    if started is not None:
        get_metrics().observe(name, time.perf_counter() - started)


@contextlib.contextmanager
def timer(name: str) -> Iterator[None]:
    """Context-manager form: time the block into histogram ``name``."""
    started = start_timer()
    try:
        yield
    finally:
        stop_timer(name, started)


def timed(name: str) -> Callable[[_F], _F]:
    """Decorator form: time every call into histogram ``name``."""
    def decorate(fn: _F) -> _F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            started = start_timer()
            try:
                return fn(*args, **kwargs)
            finally:
                stop_timer(name, started)
        return wrapper  # type: ignore[return-value]
    return decorate
