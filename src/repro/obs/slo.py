"""Service-level objectives over the runtime's observability streams.

LEO's contract is an SLO avant la lettre: *meet the performance
constraint, minimize energy* (PAPER.md Eq. 1).  PRs 3-5 widened the
failure surface — shed requests, degraded estimators, injected faults —
and "did the run stay inside its contract?" stopped being readable off
a single counter.  An :class:`SloTracker` makes it one object:

* **Streams** — bounded :class:`~repro.obs.timeseries.TimeSeries` ring
  buffers over whatever the runtime feeds it: request/fit latencies,
  per-window deadline outcomes, energy-overhead ratios, plus free-form
  named streams (power draw, heartbeat rates) via :meth:`observe`.
* **Objectives** — declarative :class:`SloObjective` targets: a latency
  percentile bound, a deadline-hit-rate floor, an energy-overhead
  ceiling.  :meth:`SloTracker.status` evaluates each over its window
  using the histogram layer's linear-interpolation percentile.
* **Error budgets** — each objective implies a budget (the tolerable
  bad fraction); :class:`SloStatus` reports the burn rate over the
  objective's window *and* over the full retained history, the
  two-window form that distinguishes "burning now" from "burned once".
* **Events** — resilience incidents (circuit-breaker opens, ladder
  demotions, fault injections) are counted by kind, so an SLO report
  carries its own likely root causes.

Like the other pillars, the ambient default is the no-op
:data:`NULL_SLO`; hooks in the controller, coordinator, ladder, and
fault injector cost one method call when disabled and draw no RNG.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.clock import get_clock
from repro.obs.metrics import Histogram, parse_labeled
from repro.obs.timeseries import TimeSeries

__all__ = [
    "SloObjective",
    "SloStatus",
    "SloTracker",
    "NullSloTracker",
    "NULL_SLO",
    "DEFAULT_OBJECTIVES",
]

#: Objective kinds and the stream each evaluates.
KINDS = ("latency", "deadline-hit-rate", "energy-overhead")


@dataclasses.dataclass(frozen=True)
class SloObjective:
    """One declarative service-level objective.

    Attributes:
        name: Report label, e.g. ``"fit-latency-p95"``.
        kind: ``"latency"`` (percentile of the latency stream must stay
            <= target seconds), ``"deadline-hit-rate"`` (fraction of
            met deadlines must stay >= target), or
            ``"energy-overhead"`` (mean overhead ratio must stay <=
            target).
        target: The bound, in the kind's unit (seconds, fraction,
            ratio).
        percentile: Which latency percentile is bounded (latency only).
        window_s: Evaluation window in stream-clock seconds; ``None``
            evaluates over the full retained history.
    """

    name: str
    kind: str
    target: float
    percentile: float = 95.0
    window_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, "
                             f"got {self.kind!r}")
        if self.kind == "deadline-hit-rate" and not 0 < self.target <= 1:
            raise ValueError(f"hit-rate target must be in (0, 1], "
                             f"got {self.target}")
        if self.target <= 0 and self.kind != "energy-overhead":
            raise ValueError(f"target must be positive, got {self.target}")
        if not 0 < self.percentile <= 100:
            raise ValueError(f"percentile must be in (0, 100], "
                             f"got {self.percentile}")


#: Objectives a recording bundle tracks unless told otherwise: generous
#: enough that a healthy run passes all three, tight enough that the
#: chaos plans visibly burn budget.
DEFAULT_OBJECTIVES: Tuple[SloObjective, ...] = (
    SloObjective(name="latency-p95", kind="latency", target=2.0,
                 percentile=95.0),
    SloObjective(name="deadline-hit-rate", kind="deadline-hit-rate",
                 target=0.95),
    SloObjective(name="energy-overhead", kind="energy-overhead",
                 target=0.10),
)


@dataclasses.dataclass
class SloStatus:
    """One objective's evaluation.

    Attributes:
        objective: The objective evaluated.
        samples: Points the evaluation saw (0 → ``met`` is vacuously
            true and ``observed`` is NaN).
        observed: The observed value in the objective's unit.
        met: Whether the objective holds over its window.
        burn_rate: Error-budget burn over the objective's window: 1.0
            means exactly consuming budget at the sustainable rate, >1
            means the budget is shrinking.
        burn_rate_total: Same, over the full retained history — the
            slow window of the classic fast/slow burn-rate alert pair.
        budget_remaining: ``1 - burn_rate_total``, floored at 0: the
            fraction of the total error budget still unspent.
    """

    objective: SloObjective
    samples: int
    observed: float
    met: bool
    burn_rate: float
    burn_rate_total: float
    budget_remaining: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.objective.name,
            "kind": self.objective.kind,
            "target": self.objective.target,
            "percentile": self.objective.percentile,
            "window_s": self.objective.window_s,
            "samples": self.samples,
            "observed": self.observed,
            "met": self.met,
            "burn_rate": self.burn_rate,
            "burn_rate_total": self.burn_rate_total,
            "budget_remaining": self.budget_remaining,
        }


class SloTracker:
    """Collects SLO streams and evaluates objectives against them.

    Args:
        objectives: What to evaluate; defaults to
            :data:`DEFAULT_OBJECTIVES`.
        capacity: Ring-buffer capacity per stream.
        clock: Timestamp source for records that do not bring their own
            ``now`` — any zero-argument callable returning seconds.
            ``None`` (the default) reads the ambient
            :func:`repro.clock.get_clock` per record, so a tracker
            created inside a ``clock.use(VirtualClock())`` block stamps
            its streams in simulated time and day-scale burn-rate
            windows evaluate correctly.  (Records from simulated
            components may still pass their own ``now`` explicitly.)
    """

    is_recording = True

    #: Reserved stream names the typed record_* methods feed.
    LATENCY = "latency"
    DEADLINE = "deadline"
    ENERGY_OVERHEAD = "energy_overhead"

    def __init__(self, objectives: Sequence[SloObjective]
                 = DEFAULT_OBJECTIVES,
                 capacity: int = 4096,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.objectives = tuple(objectives)
        self.capacity = int(capacity)
        self._clock = clock
        self._streams: Dict[str, TimeSeries] = {}
        self.events: Dict[str, int] = {}

    def _now(self) -> float:
        return (self._clock() if self._clock is not None
                else get_clock().now())

    # -- recording ------------------------------------------------------
    def stream(self, name: str) -> TimeSeries:
        """The named stream (created on first use)."""
        if name not in self._streams:
            self._streams[name] = TimeSeries(capacity=self.capacity)
        return self._streams[name]

    def observe(self, stream: str, value: float,
                now: Optional[float] = None) -> None:
        """Append one point to a named stream (power, heartbeats, ...)."""
        self.stream(stream).append(
            self._now() if now is None else now, float(value))

    def record_latency(self, seconds: float,
                       now: Optional[float] = None) -> None:
        """One latency observation (request round trip, fit time)."""
        self.observe(self.LATENCY, seconds, now)

    def record_deadline(self, met: bool,
                        now: Optional[float] = None) -> None:
        """One deadline window's outcome."""
        self.observe(self.DEADLINE, 1.0 if met else 0.0, now)

    def record_energy_overhead(self, ratio: float,
                               now: Optional[float] = None) -> None:
        """One energy-overhead observation (extra/baseline joules)."""
        self.observe(self.ENERGY_OVERHEAD, ratio, now)

    def record_event(self, kind: str) -> None:
        """Count one resilience incident (breaker-open, demotion, ...)."""
        self.events[kind] = self.events.get(kind, 0) + 1

    # -- evaluation -----------------------------------------------------
    def status(self) -> List[SloStatus]:
        """Evaluate every objective; stable order (as configured)."""
        return [self._evaluate(obj) for obj in self.objectives]

    def _evaluate(self, objective: SloObjective) -> SloStatus:
        stream = {
            "latency": self.LATENCY,
            "deadline-hit-rate": self.DEADLINE,
            "energy-overhead": self.ENERGY_OVERHEAD,
        }[objective.kind]
        series = self._streams.get(stream)
        windowed = (series.values(objective.window_s)
                    if series is not None else [])
        everything = series.values(None) if series is not None else []
        observed = self._observe_values(objective, windowed)
        met = (not windowed) or self._holds(objective, observed)
        return SloStatus(
            objective=objective, samples=len(windowed), observed=observed,
            met=met,
            burn_rate=self._burn(objective, windowed),
            burn_rate_total=self._burn(objective, everything),
            budget_remaining=max(
                0.0, 1.0 - self._burn(objective, everything)))

    @staticmethod
    def _observe_values(objective: SloObjective,
                        values: List[float]) -> float:
        if not values:
            return float("nan")
        if objective.kind == "latency":
            histogram = Histogram(objective.name)
            histogram.extend(values)
            return histogram.percentile(objective.percentile, mode="linear")
        return sum(values) / len(values)

    @staticmethod
    def _holds(objective: SloObjective, observed: float) -> bool:
        if objective.kind == "deadline-hit-rate":
            return observed >= objective.target
        return observed <= objective.target

    @staticmethod
    def _burn(objective: SloObjective, values: List[float]) -> float:
        """Error-budget burn rate over one window of values.

        1.0 = consuming budget exactly as fast as the objective allows;
        0 = spotless; >1 = the budget shrinks while this persists.
        """
        if not values:
            return 0.0
        n = len(values)
        if objective.kind == "latency":
            allowed = max(1.0 - objective.percentile / 100.0, 1e-9)
            bad = sum(1 for v in values if v > objective.target) / n
            return bad / allowed
        if objective.kind == "deadline-hit-rate":
            allowed = max(1.0 - objective.target, 1e-9)
            bad = sum(1 for v in values if v < 0.5) / n
            return bad / allowed
        mean = sum(values) / n
        if objective.target <= 0:
            return float("inf") if mean > 0 else 0.0
        return max(mean, 0.0) / objective.target

    # -- export ---------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """The JSON-ready SLO report ``repro obs slo`` renders."""
        return {
            "objectives": [status.to_dict() for status in self.status()],
            "events": dict(sorted(self.events.items())),
            "streams": {
                name: {"points": len(series),
                       "last": series.last_value if len(series) else None}
                for name, series in sorted(self._streams.items())
            },
        }

    # -- offline reconstruction -----------------------------------------
    @classmethod
    def from_metrics(cls, dump: Dict[str, Any],
                     objectives: Sequence[SloObjective]
                     = DEFAULT_OBJECTIVES) -> "SloTracker":
        """Rebuild a tracker from a registry :meth:`~repro.obs.
        MetricsRegistry.dump`, for post-hoc ``repro obs slo`` on a
        metrics file.

        Raw-valued latency histograms (``service_request_seconds``,
        ``fit_seconds``) feed the latency stream; ``*deadline_met_total``
        / ``*deadline_missed_total`` counter pairs (summed across label
        dimensions) rebuild the deadline stream; ``fault_*_total`` and
        ``resilience_*_total`` counters become events.  Points carry
        synthetic index timestamps, so windowed objectives degrade to
        full-history evaluation.
        """
        tracker = cls(objectives=objectives)
        tick = 0
        for name, values in dump.get("histograms", {}).items():
            base, _ = parse_labeled(name)
            if base in ("service_request_seconds", "fit_seconds") \
                    and isinstance(values, list):
                for value in values:
                    tracker.record_latency(float(value), now=tick)
                    tick += 1
        met = missed = 0.0
        for name, value in dump.get("counters", {}).items():
            base, _ = parse_labeled(name)
            if base.endswith("deadline_met_total"):
                met += value
            elif base.endswith("deadline_missed_total"):
                missed += value
            elif base.startswith("fault_") and base.endswith("_total") \
                    and base != "fault_injected_total":
                tracker.events[base[len("fault_"):-len("_total")]] = \
                    int(value)
            elif base == "resilience_demotions_total" and value:
                tracker.events["ladder-demotion"] = int(value)
            elif base == "resilience_promotions_total" and value:
                tracker.events["ladder-promotion"] = int(value)
        for _ in range(int(met)):
            tracker.record_deadline(True, now=tick)
            tick += 1
        for _ in range(int(missed)):
            tracker.record_deadline(False, now=tick)
            tick += 1
        overhead = dump.get("gauges", {}).get("slo_energy_overhead")
        if overhead is not None:
            tracker.record_energy_overhead(float(overhead), now=tick)
        return tracker


class NullSloTracker:
    """The disabled SLO tracker: records nothing, reports nothing."""

    is_recording = False
    events: Dict[str, int] = {}

    def observe(self, stream: str, value: float,
                now: Optional[float] = None) -> None:
        pass

    def record_latency(self, seconds: float,
                       now: Optional[float] = None) -> None:
        pass

    def record_deadline(self, met: bool,
                        now: Optional[float] = None) -> None:
        pass

    def record_energy_overhead(self, ratio: float,
                               now: Optional[float] = None) -> None:
        pass

    def record_event(self, kind: str) -> None:
        pass

    def status(self) -> List[SloStatus]:
        return []

    def report(self) -> Dict[str, Any]:
        """An empty report with the standard shape."""
        return {"objectives": [], "events": {}, "streams": {}}


#: The singleton disabled tracker (the ambient default).
NULL_SLO = NullSloTracker()
