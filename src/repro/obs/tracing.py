"""Structured tracing: nested spans over the LEO runtime loop.

A :class:`Tracer` records :class:`Span` objects — named, timed intervals
with attributes — nested by lexical scope::

    tracer = Tracer()
    with tracer.span("controller.calibrate", estimator="leo"):
        with tracer.span("estimator.fit", quantity="rate") as span:
            ...
            span.set_attribute("iterations", 4)

Span names follow a ``subsystem.operation`` convention; the runtime emits
``controller.calibrate``, ``controller.run``, ``controller.quantum``,
``estimator.fit``, ``em.fit``, ``em.iteration``, ``lp.solve`` and
``experiment.run`` (see docs/OBSERVABILITY.md for the full reference).

Tracing is **off by default**: the ambient tracer is the
:data:`NULL_TRACER` singleton, whose ``span()`` returns a shared no-op
handle without allocating anything, so instrumented hot paths (the EM
iteration, the per-quantum LP re-solve) cost one method call when
disabled.  Traces export as JSONL (:func:`write_trace`) and read back as
spans (:func:`read_trace`) for rendering or offline analysis.

The tracer is intentionally single-threaded (one span stack); the
simulated runtime is synchronous.  Everything here is stdlib-only.

Distributed traces (PR 6) extend, without changing, the local story: a
tracer may carry a ``trace_id``, number its spans from a per-shard
``span_id_base`` (so concurrent processes never collide), and parent
its root spans under a ``remote_parent`` span id received from another
process via :class:`~repro.obs.propagation.TraceContext`.
:meth:`Tracer.adopt` folds span shards recorded elsewhere (workers,
service handlers) into this tracer's finished list, and
:func:`repro.obs.collector.merge_spans` builds the single coherent tree.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

PathLike = Union[str, pathlib.Path]

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "write_trace",
    "read_trace",
]


class Span:
    """One named, timed interval with attributes.

    Spans are created by :meth:`Tracer.span` and double as context
    managers; entering starts the clock, exiting stops it and files the
    span with its tracer.  ``parent_id`` is ``None`` for root spans.
    """

    __slots__ = ("name", "span_id", "parent_id", "start", "end",
                 "attributes", "trace_id", "_tracer")

    def __init__(self, name: str, span_id: int,
                 parent_id: Optional[int] = None,
                 start: float = 0.0, end: float = 0.0,
                 attributes: Optional[Dict[str, Any]] = None,
                 trace_id: Optional[str] = None,
                 _tracer: Optional["Tracer"] = None) -> None:
        if not name:
            raise ValueError("span name must be non-empty")
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.attributes: Dict[str, Any] = attributes if attributes is not None else {}
        self.trace_id = trace_id
        self._tracer = _tracer

    # -- recording ------------------------------------------------------
    def set_attribute(self, key: str, value: Any) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        if self._tracer is None:
            raise RuntimeError("span is detached from its tracer")
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._exit(self)
        return False

    # -- reading --------------------------------------------------------
    @property
    def duration(self) -> float:
        """Wall-clock seconds between enter and exit."""
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (one JSONL line).

        ``trace_id`` appears only when set, so single-process traces
        (and the fixtures asserting on them) keep their PR-1 shape.
        """
        payload = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": self.attributes,
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(name=payload["name"], span_id=int(payload["span_id"]),
                   parent_id=(None if payload.get("parent_id") is None
                              else int(payload["parent_id"])),
                   start=float(payload["start"]), end=float(payload["end"]),
                   attributes=dict(payload.get("attributes", {})),
                   trace_id=payload.get("trace_id"))

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, duration={self.duration:.6f})")


class _NullSpan:
    """The shared no-op span handle; everything about it is free."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    @property
    def attributes(self) -> Dict[str, Any]:
        """Always empty (writes are discarded)."""
        return {}


#: The singleton no-op span every :class:`NullTracer` hands out.
NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: records nothing, allocates nothing."""

    #: Instrumented code can branch on this to skip attribute building.
    is_recording = False

    #: Mirrors :class:`Tracer` so propagation code needs no isinstance.
    trace_id: Optional[str] = None
    current_span_id: Optional[int] = None

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        """Return the shared no-op span handle."""
        return NULL_SPAN

    def adopt(self, spans: Iterable[Span]) -> None:
        """Discard foreign spans (nothing is recorded while disabled)."""

    @property
    def spans(self) -> Sequence[Span]:
        """Always empty."""
        return ()


#: The singleton disabled tracer (the ambient default).
NULL_TRACER = NullTracer()


class Tracer:
    """Records nested spans in completion order.

    Args:
        clock: Monotonic time source; ``time.perf_counter`` by default
            (injectable for deterministic tests).
        trace_id: Optional distributed-trace identity stamped on every
            recorded span; ``None`` (the default) keeps the tracer
            purely local and its spans in the PR-1 shape.
        remote_parent: Span id (from another process's
            :class:`~repro.obs.propagation.TraceContext`) adopted as
            the parent of this tracer's root spans, stitching the shard
            under its caller in the merged tree.
        span_id_base: First span id minus one; remote shards pass
            :func:`~repro.obs.propagation.shard_span_base` output so
            their ids never collide with other processes'.
    """

    is_recording = True

    def __init__(self, clock=time.perf_counter,
                 trace_id: Optional[str] = None,
                 remote_parent: Optional[int] = None,
                 span_id_base: int = 0) -> None:
        self._clock = clock
        self.trace_id = trace_id
        self.remote_parent = remote_parent
        self._finished: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = span_id_base + 1

    def span(self, name: str, **attributes: Any) -> Span:
        """Create a span; enter it (``with``) to start the clock."""
        span = Span(name=name, span_id=self._next_id,
                    attributes=dict(attributes) if attributes else {},
                    trace_id=self.trace_id, _tracer=self)
        self._next_id += 1
        return span

    @property
    def current_span_id(self) -> Optional[int]:
        """The innermost open span's id (what new work parents under).

        Falls back to the remote parent when the local stack is empty,
        so propagation from a just-entered shard still points at the
        right ancestor.
        """
        if self._stack:
            return self._stack[-1].span_id
        return self.remote_parent

    # -- span lifecycle (driven by Span.__enter__/__exit__) -------------
    def _enter(self, span: Span) -> None:
        span.parent_id = (self._stack[-1].span_id if self._stack
                          else self.remote_parent)
        span.start = self._clock()
        self._stack.append(span)

    def _exit(self, span: Span) -> None:
        span.end = self._clock()
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} exited out of order"
            )
        self._stack.pop()
        self._finished.append(span)

    # -- reading --------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """Finished spans sorted by start time (parents before children)."""
        return sorted(self._finished, key=lambda s: (s.start, s.span_id))

    @property
    def num_finished(self) -> int:
        """Finished-span count (cheap bookmark for slicing)."""
        return len(self._finished)

    def finished_since(self, mark: int) -> List[Span]:
        """Spans finished after a :attr:`num_finished` bookmark."""
        return sorted(self._finished[mark:],
                      key=lambda s: (s.start, s.span_id))

    def adopt(self, spans: Iterable[Span]) -> None:
        """Fold finished spans recorded elsewhere into this tracer.

        The collection mechanism for distributed traces: workers and
        service handlers record on their own tracers, ship
        ``[span.to_dict()]`` back, and the originating tracer adopts the
        rebuilt spans so one :func:`write_trace` exports the whole tree.
        Adopted spans keep their ids and parents (shard bases make them
        collision-free); open local spans are unaffected.
        """
        for span in spans:
            if span.end < span.start:
                raise ValueError(
                    f"cannot adopt unfinished span {span.name!r}")
            self._finished.append(span)

    def clear(self) -> None:
        """Drop all finished spans (open spans are unaffected)."""
        self._finished.clear()


# ----------------------------------------------------------------------
# JSONL persistence
# ----------------------------------------------------------------------
def write_trace(path: PathLike, spans: Iterable[Span]) -> pathlib.Path:
    """Write spans as one JSON object per line, sorted by start time."""
    path = pathlib.Path(path)
    ordered = sorted(spans, key=lambda s: (s.start, s.span_id))
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for span in ordered:
            handle.write(json.dumps(span.to_dict(), default=_jsonable))
            handle.write("\n")
    return path


def read_trace(path: PathLike) -> List[Span]:
    """Read a JSONL trace back into spans, sorted by start time."""
    path = pathlib.Path(path)
    spans: List[Span] = []
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                spans.append(Span.from_dict(json.loads(line)))
            except (ValueError, KeyError) as exc:
                raise ValueError(
                    f"malformed trace line {lineno} in {path}: {exc}"
                ) from exc
    return sorted(spans, key=lambda s: (s.start, s.span_id))


def _jsonable(value: Any):
    """Fallback serializer: numpy scalars and arrays degrade gracefully."""
    if hasattr(value, "item"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)
