"""Metrics registry: counters, gauges, and histograms.

The runtime increments a small fixed vocabulary of metrics (see
docs/OBSERVABILITY.md): ``em_iterations_total``, ``lp_resolves_total``,
``fit_seconds``, ``sampling_energy_joules``,
``constraint_violation_ratio``, and the profiling-hook timers.  A
:class:`MetricsRegistry` owns them by name; :meth:`MetricsRegistry.snapshot`
freezes everything into plain dictionaries for JSON/CSV export (see
:mod:`repro.reporting.csv_export`).

Like tracing, metrics are off by default: the ambient registry is the
no-op :data:`NULL_METRICS` singleton, so ``metrics.inc(...)`` on an
uninstrumented run is a single cheap method call.  Stdlib-only.

Cross-process aggregation (PR 6): :meth:`MetricsRegistry.dump` exports
the *full* registry — histograms as raw observation lists, not
summaries — and :meth:`MetricsRegistry.merge` folds such a dump into
another registry: counters add, gauges take the incoming value
(last-write-wins), histograms concatenate raw values so merged
percentiles are exact, not approximations stitched from per-process
summaries.  Workers and the service server dump, the parent merges,
and one snapshot reports fleet-wide truth.

Label dimensions are encoded in the metric name via :func:`labeled`
(``cluster_tenant_epochs_total{tenant=kmeans}``), keeping the registry
a flat name-to-instrument map that dumps, merges, and snapshots without
special cases.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any, Dict, List, Optional, Union

PathLike = Union[str, pathlib.Path]

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "labeled",
    "parse_labeled",
]


def labeled(name: str, **labels: Any) -> str:
    """Encode label dimensions into a metric name.

    ``labeled("cluster_tenant_epochs_total", tenant="kmeans")`` →
    ``"cluster_tenant_epochs_total{tenant=kmeans}"``.  Labels are
    sorted, so the same dimensions always produce the same series name
    in every process — which is what makes labeled series merge
    correctly across registries.
    """
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_labeled(series: str) -> "tuple[str, Dict[str, str]]":
    """Split a :func:`labeled` series name into ``(base, labels)``."""
    if not series.endswith("}") or "{" not in series:
        return series, {}
    base, _, inner = series[:-1].partition("{")
    labels: Dict[str, str] = {}
    for part in inner.split(","):
        key, sep, value = part.partition("=")
        if sep:
            labels[key] = value
    return base, labels


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += float(amount)


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = float("nan")

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """A distribution of observed values with exact percentiles.

    Stores raw observations (the runtime records thousands, not
    millions); percentiles use the nearest-rank method on a sorted copy.
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return math.fsum(self._values)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self._values else float("nan")

    @property
    def min(self) -> float:
        return min(self._values) if self._values else float("nan")

    @property
    def max(self) -> float:
        return max(self._values) if self._values else float("nan")

    @property
    def values(self) -> List[float]:
        """The raw observations, in arrival order (a copy).

        This is what crosses process boundaries in a registry
        :meth:`~MetricsRegistry.dump`: merged histograms concatenate
        raw values, so fleet-wide percentiles are exact.
        """
        return list(self._values)

    def extend(self, values) -> None:
        """Record many observations at once (the merge path)."""
        self._values.extend(float(v) for v in values)

    def percentile(self, q: float, mode: str = "nearest") -> float:
        """Percentile of the recorded values, ``q`` in [0, 100].

        ``mode="nearest"`` (default) is the nearest-rank method: always
        returns an actually-observed value, with ``rank = ceil(q*n/100)``
        computed multiply-first — ``q/100*n`` rounds up spuriously when
        ``q/100`` is inexact (e.g. q=55, n=20 gives 11.000000000000002,
        one rank too high).  ``mode="linear"`` interpolates between the
        two nearest order statistics (numpy's default), which the SLO
        tracker uses so a latency objective's observed percentile moves
        continuously as observations arrive.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if mode not in ("nearest", "linear"):
            raise ValueError(f"mode must be 'nearest' or 'linear', "
                             f"got {mode!r}")
        if not self._values:
            return float("nan")
        ordered = sorted(self._values)
        n = len(ordered)
        if mode == "linear":
            position = q * (n - 1) / 100.0
            lower = int(math.floor(position))
            upper = min(lower + 1, n - 1)
            fraction = position - lower
            return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction
        if q == 0:
            return ordered[0]
        # Clamp below: q*n/100 underflows to 0.0 for subnormal q, and
        # ceil(0.0) would index ordered[-1] (the max) instead of the min.
        rank = max(1, math.ceil(q * n / 100.0))
        return ordered[min(rank, n) - 1]

    def summary(self) -> Dict[str, float]:
        """The export form: count/sum/min/max/mean and p50/p90/p99."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms with a snapshot API."""

    is_recording = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (get-or-create) --------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        self._check_kind(name, self._counters, "counter")
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        self._check_kind(name, self._gauges, "gauge")
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        self._check_kind(name, self._histograms, "histogram")
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def _check_kind(self, name: str, own: Dict[str, Any], kind: str) -> None:
        for other_kind, table in (("counter", self._counters),
                                  ("gauge", self._gauges),
                                  ("histogram", self._histograms)):
            if table is not own and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}, "
                    f"cannot reuse it as a {kind}"
                )

    # -- one-line conveniences (what instrumented code calls) -----------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment the counter ``name``."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        self.histogram(name).observe(value)

    # -- export ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Freeze the registry into plain dictionaries.

        Shape: ``{"counters": {name: value}, "gauges": {name: value},
        "histograms": {name: {count, sum, min, max, mean, p50, p90,
        p99}}}`` — stable, JSON-ready, and what the reporting helpers
        consume.
        """
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.summary()
                           for n, h in sorted(self._histograms.items())},
        }

    def dump(self) -> Dict[str, Dict[str, Any]]:
        """The full lossless export, for cross-process aggregation.

        Unlike :meth:`snapshot`, histograms appear as their raw
        observation lists — the only representation that merges without
        losing percentile exactness.  The result is JSON- and
        pickle-ready (plain dicts, lists, floats).
        """
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.values
                           for n, h in sorted(self._histograms.items())},
        }

    def merge(self, dump: Dict[str, Dict[str, Any]]) -> None:
        """Fold one :meth:`dump` into this registry.

        Counter values add; gauges take the incoming value (last-write
        wins — the dump is the more recent observation); histograms
        concatenate raw values.  Merging a :meth:`snapshot` (summary
        dicts instead of value lists) is rejected loudly rather than
        silently recorded as garbage.
        """
        for name, value in dump.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in dump.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, values in dump.get("histograms", {}).items():
            if isinstance(values, dict):
                raise ValueError(
                    f"histogram {name!r} holds a summary dict; merge() "
                    f"needs raw values — export with dump(), not snapshot()")
            self.histogram(name).extend(values)

    def write_json(self, path: PathLike) -> pathlib.Path:
        """Write :meth:`snapshot` as pretty-printed JSON.

        A ``raw_histograms`` section (the :meth:`dump` representation)
        rides along so post-hoc tools — ``repro obs slo``, cross-run
        merges — can rebuild exact percentiles instead of settling for
        the summary quantiles.
        """
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = dict(self.snapshot(),
                       raw_histograms=self.dump()["histograms"])
        path.write_text(json.dumps(payload, indent=2,
                                   allow_nan=True, default=float) + "\n")
        return path

    def clear(self) -> None:
        """Drop every registered metric."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: every operation is a no-op."""

    is_recording = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """An empty snapshot with the standard shape."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def dump(self) -> Dict[str, Dict[str, Any]]:
        """An empty dump with the standard shape."""
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, dump: Dict[str, Dict[str, Any]]) -> None:
        """Discard the dump (nothing is recorded while disabled)."""


#: The singleton disabled registry (the ambient default).
NULL_METRICS = NullMetrics()
