"""Metrics registry: counters, gauges, and histograms.

The runtime increments a small fixed vocabulary of metrics (see
docs/OBSERVABILITY.md): ``em_iterations_total``, ``lp_resolves_total``,
``fit_seconds``, ``sampling_energy_joules``,
``constraint_violation_ratio``, and the profiling-hook timers.  A
:class:`MetricsRegistry` owns them by name; :meth:`MetricsRegistry.snapshot`
freezes everything into plain dictionaries for JSON/CSV export (see
:mod:`repro.reporting.csv_export`).

Like tracing, metrics are off by default: the ambient registry is the
no-op :data:`NULL_METRICS` singleton, so ``metrics.inc(...)`` on an
uninstrumented run is a single cheap method call.  Stdlib-only.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any, Dict, List, Optional, Union

PathLike = Union[str, pathlib.Path]

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
]


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += float(amount)


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = float("nan")

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """A distribution of observed values with exact percentiles.

    Stores raw observations (the runtime records thousands, not
    millions); percentiles use the nearest-rank method on a sorted copy.
    """

    __slots__ = ("name", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        return math.fsum(self._values)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self._values else float("nan")

    @property
    def min(self) -> float:
        return min(self._values) if self._values else float("nan")

    @property
    def max(self) -> float:
        return max(self._values) if self._values else float("nan")

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in [0, 100]."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self._values:
            return float("nan")
        ordered = sorted(self._values)
        if q == 0:
            return ordered[0]
        rank = math.ceil(q / 100.0 * len(ordered))
        return ordered[rank - 1]

    def summary(self) -> Dict[str, float]:
        """The export form: count/sum/min/max/mean and p50/p90/p99."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Named counters, gauges and histograms with a snapshot API."""

    is_recording = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (get-or-create) --------------------------
    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        self._check_kind(name, self._counters, "counter")
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        self._check_kind(name, self._gauges, "gauge")
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created on first use)."""
        self._check_kind(name, self._histograms, "histogram")
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def _check_kind(self, name: str, own: Dict[str, Any], kind: str) -> None:
        for other_kind, table in (("counter", self._counters),
                                  ("gauge", self._gauges),
                                  ("histogram", self._histograms)):
            if table is not own and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}, "
                    f"cannot reuse it as a {kind}"
                )

    # -- one-line conveniences (what instrumented code calls) -----------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment the counter ``name``."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        self.histogram(name).observe(value)

    # -- export ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Freeze the registry into plain dictionaries.

        Shape: ``{"counters": {name: value}, "gauges": {name: value},
        "histograms": {name: {count, sum, min, max, mean, p50, p90,
        p99}}}`` — stable, JSON-ready, and what the reporting helpers
        consume.
        """
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.summary()
                           for n, h in sorted(self._histograms.items())},
        }

    def write_json(self, path: PathLike) -> pathlib.Path:
        """Write :meth:`snapshot` as pretty-printed JSON."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=2,
                                   allow_nan=True, default=float) + "\n")
        return path

    def clear(self) -> None:
        """Drop every registered metric."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


class _NullInstrument:
    """Shared no-op counter/gauge/histogram."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: every operation is a no-op."""

    is_recording = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """An empty snapshot with the standard shape."""
        return {"counters": {}, "gauges": {}, "histograms": {}}


#: The singleton disabled registry (the ambient default).
NULL_METRICS = NullMetrics()
