"""Structured stdlib-logging configuration for the ``repro`` packages.

Every module logs through ``logging.getLogger(__name__)``; this helper
attaches one stream handler with a structured ``key=value`` formatter to
the ``repro`` root logger, so embedding applications keep full control
(call :func:`logging_setup` for the batteries-included default, or
configure ``logging`` yourself and ignore this module entirely).

Modules attach structured fields via the standard ``extra`` mechanism::

    logger.info("recalibrated", extra={"fields": {"reestimations": 2}})

which renders as::

    2026-08-06 12:00:00 INFO repro.runtime.controller recalibrated reestimations=2
"""

from __future__ import annotations

import logging
import sys
from typing import Any, Dict, Optional, TextIO

__all__ = ["logging_setup", "StructuredFormatter"]

_DEFAULT_FORMAT = "%(asctime)s %(levelname)s %(name)s %(message)s"


class StructuredFormatter(logging.Formatter):
    """Appends ``extra={"fields": {...}}`` dictionaries as ``key=value``."""

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        fields: Optional[Dict[str, Any]] = getattr(record, "fields", None)
        if not fields:
            return base
        rendered = " ".join(f"{key}={_fmt(value)}"
                            for key, value in sorted(fields.items()))
        return f"{base} {rendered}"


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    return repr(text) if " " in text else text


def logging_setup(level: int = logging.INFO,
                  stream: Optional[TextIO] = None,
                  logger_name: str = "repro") -> logging.Logger:
    """Configure structured logging for the ``repro`` logger tree.

    Idempotent: calling it again replaces the handler it previously
    installed rather than stacking duplicates.  Returns the configured
    logger so callers can adjust it further.
    """
    logger = logging.getLogger(logger_name)
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(StructuredFormatter(_DEFAULT_FORMAT))
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    # The repro tree owns its output; don't double-log through the root.
    logger.propagate = False
    return logger
