"""The normal-inverse-Wishart hyperprior of LEO's graphical model.

The top layer of the hierarchy (paper Eq. 2) places a conjugate
normal-inverse-Wishart prior on the shared mean and covariance:

    mu, Sigma ~ N(mu | mu_0, Sigma / pi) * IW(Sigma | nu, Psi)

The paper fixes the hyper-parameters to mu_0 = 0, pi = 1, Psi = I, nu = 1
(Section 5.2).  :class:`NIWPrior` carries them and knows how they enter
the M-step; ``None`` disables the prior entirely, turning EM into pure
maximum likelihood (useful for the monotonicity property tests, since the
exact-ML M-step guarantees the observed-data likelihood never decreases).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

import numpy as np


@dataclasses.dataclass(frozen=True)
class NIWPrior:
    """Normal-inverse-Wishart hyper-parameters.

    Attributes:
        mu0: Prior mean of mu.  A scalar broadcasts across configurations.
        pi: Prior pseudo-count tying mu to mu0 (``pi = 0`` removes the
            pull entirely).
        psi: Prior scale matrix of Sigma.  A scalar s means ``s * I``.
        nu: Prior degrees of freedom of Sigma.
    """

    mu0: Union[float, np.ndarray] = 0.0
    pi: float = 1.0
    psi: Union[float, np.ndarray] = 1.0
    nu: float = 1.0

    def __post_init__(self) -> None:
        if self.pi < 0:
            raise ValueError(f"pi must be >= 0, got {self.pi}")
        if self.nu < 0:
            raise ValueError(f"nu must be >= 0, got {self.nu}")
        if np.isscalar(self.psi):
            if self.psi < 0:
                raise ValueError(f"scalar psi must be >= 0, got {self.psi}")
        else:
            psi = np.asarray(self.psi)
            if psi.ndim != 2 or psi.shape[0] != psi.shape[1]:
                raise ValueError(f"matrix psi must be square, got {psi.shape}")
            if not np.allclose(psi, psi.T):
                raise ValueError("matrix psi must be symmetric")

    @classmethod
    def paper_default(cls) -> "NIWPrior":
        """The paper's hyper-parameters: mu0=0, pi=1, Psi=I, nu=1."""
        return cls(mu0=0.0, pi=1.0, psi=1.0, nu=1.0)

    def mu0_vector(self, n: int) -> np.ndarray:
        """mu0 materialized as a length-``n`` vector."""
        if np.isscalar(self.mu0):
            return np.full(n, float(self.mu0))
        mu0 = np.asarray(self.mu0, dtype=float)
        if mu0.shape != (n,):
            raise ValueError(f"mu0 has shape {mu0.shape}, expected ({n},)")
        return mu0.copy()

    def psi_matrix(self, n: int) -> np.ndarray:
        """Psi materialized as an ``n x n`` matrix."""
        if np.isscalar(self.psi):
            return float(self.psi) * np.eye(n)
        psi = np.asarray(self.psi, dtype=float)
        if psi.shape != (n, n):
            raise ValueError(f"psi has shape {psi.shape}, expected ({n}, {n})")
        return psi.copy()


#: Sentinel meaning "no prior": pure maximum-likelihood EM updates.
ML_PRIOR: Optional[NIWPrior] = None
