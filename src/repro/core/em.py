"""The expectation-maximization engine (paper Section 5.3).

Alternates the E-step (Eq. 3: posterior moments of each application's
latent curve z_i given the current parameters) with the M-step (Eq. 4:
re-estimating theta = {mu, Sigma, sigma}) until the observed-data
log-likelihood stabilizes.  The paper reports convergence in 3-4
iterations on its benchmark set; the engine caps iterations and reports
whether the tolerance was reached.

The M-step follows Eq. (4) with the normal-inverse-Wishart terms placed
inside the normalizer (see DESIGN.md section 2 for why the printed
formula's placement cannot be literal).  Passing ``prior=None`` removes
the NIW terms entirely, giving the exact maximum-likelihood M-step, under
which EM's classic monotonicity guarantee holds and is property-tested.
"""

from __future__ import annotations

import dataclasses
import logging
from typing import List, Optional

import numpy as np

from repro.core.linalg import (
    MaskedPosterior,
    PosteriorCache,
    nearest_psd_jitter,
    symmetrize,
)
from repro.core.observation import ObservationSet
from repro.core.priors import NIWPrior
from repro.errors import ConvergenceError
from repro.faults.context import get_injector
from repro.obs import get_observability

logger = logging.getLogger(__name__)


@dataclasses.dataclass(frozen=True)
class EMConfig:
    """Knobs of the EM engine.

    Attributes:
        max_iterations: Hard cap on EM iterations.
        tol: Relative log-likelihood change below which EM stops.
        min_noise_var: Floor on sigma^2 to keep posteriors well-posed.
        use_woodbury: Use the masked Woodbury E-step (True) or the
            literal dense Eq. (3) inverses (False; for the ablation).
        cache_posteriors: Memoize Woodbury factorizations by exact
            parameter content (see :class:`repro.core.linalg.PosteriorCache`);
            a hit returns the same objects recomputation would, so this
            never changes results.
        posterior_cache_tol: When > 0, additionally reuse a cached
            factorization whose Sigma differs by at most this relative
            max-norm — an explicit approximation for the late-EM plateau,
            off by default.
        raise_on_nonconvergence: Raise :class:`~repro.errors.
            ConvergenceError` when the iteration cap is hit without
            meeting the tolerance, instead of returning
            ``converged=False``.  Off by default: the paper's runtime
            deliberately runs few iterations and accepts the partial
            fit.  A non-finite log-likelihood *always* raises — a
            NaN-poisoned fit is never returned.
    """

    max_iterations: int = 50
    tol: float = 1e-6
    min_noise_var: float = 1e-10
    use_woodbury: bool = True
    cache_posteriors: bool = True
    posterior_cache_tol: float = 0.0
    raise_on_nonconvergence: bool = False

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.tol <= 0:
            raise ValueError(f"tol must be positive, got {self.tol}")
        if self.min_noise_var <= 0:
            raise ValueError(
                f"min_noise_var must be positive, got {self.min_noise_var}"
            )
        if self.posterior_cache_tol < 0:
            raise ValueError(
                f"posterior_cache_tol must be >= 0, got "
                f"{self.posterior_cache_tol}"
            )


@dataclasses.dataclass
class EMResult:
    """Fitted parameters and posterior summaries.

    Attributes:
        mu: Estimated shared mean, shape ``(n,)``.
        sigma_mat: Estimated shared covariance Sigma, shape ``(n, n)``.
        noise_var: Estimated measurement noise sigma^2.
        zhat: Posterior means E(z_i), shape ``(M, n)`` — row M-1 is the
            target application's estimate (paper Section 5.4).
        zvar: Posterior variances diag(Cov(z_i)), shape ``(M, n)``,
            quantifying per-configuration estimation uncertainty.
        loglik_history: Observed-data log-likelihood before each E-step.
        iterations: EM iterations executed.
        converged: Whether the tolerance was met before the cap.
    """

    mu: np.ndarray
    sigma_mat: np.ndarray
    noise_var: float
    zhat: np.ndarray
    zvar: np.ndarray
    loglik_history: List[float]
    iterations: int
    converged: bool


def _default_initialization(obs: ObservationSet):
    """Offline-flavoured initialization (paper Section 5.5).

    mu starts at the per-configuration mean of whatever was observed;
    Sigma at the sample covariance of the fully observed rows (falling
    back to a scaled identity); sigma^2 at one percent of the data
    variance.
    """
    values, mask = obs.values, obs.mask
    counts = mask.sum(axis=0)
    col_sum = values.sum(axis=0)
    global_mean = values[mask].mean()
    mu = np.where(counts > 0, col_sum / np.maximum(counts, 1), global_mean)

    full_rows = mask.all(axis=1)
    data_var = float(values[mask].var())
    if data_var <= 0:
        data_var = 1.0
    if full_rows.sum() >= 2:
        sigma_mat = np.cov(values[full_rows], rowvar=False)
        sigma_mat = nearest_psd_jitter(
            sigma_mat + 0.05 * data_var * np.eye(obs.num_configs))
    else:
        sigma_mat = data_var * np.eye(obs.num_configs)
    noise_var = max(0.01 * data_var, 1e-8)
    return mu, sigma_mat, noise_var


class EMEngine:
    """Runs EM for the hierarchical model on an observation set.

    The engine owns a :class:`~repro.core.linalg.PosteriorCache` shared
    by every :meth:`fit` it performs: E-step groups (and repeated fits)
    presenting bit-identical ``(Sigma, sigma^2, Omega)`` reuse one
    Cholesky factorization.
    """

    def __init__(self, prior: Optional[NIWPrior] = None,
                 config: EMConfig = EMConfig()) -> None:
        self.prior = prior
        self.config = config
        self._posteriors = (
            PosteriorCache(tol=config.posterior_cache_tol)
            if config.cache_posteriors else None)

    def _posterior(self, sigma_mat: np.ndarray, noise_var: float,
                   obs_idx: np.ndarray):
        """A (possibly cached) masked posterior for the given params."""
        if self._posteriors is not None:
            return self._posteriors.get(sigma_mat, noise_var, obs_idx)
        return MaskedPosterior(sigma_mat, noise_var, obs_idx)

    # ------------------------------------------------------------------
    def fit(self, obs: ObservationSet,
            init_mu: Optional[np.ndarray] = None,
            init_sigma: Optional[np.ndarray] = None,
            init_noise_var: Optional[float] = None) -> EMResult:
        """Fit theta = {mu, Sigma, sigma^2} and the posterior curves."""
        n = obs.num_configs
        m = obs.num_applications
        default_mu, default_sigma, default_noise = _default_initialization(obs)
        mu = np.asarray(init_mu, dtype=float) if init_mu is not None else default_mu
        if mu.shape != (n,):
            raise ValueError(f"init_mu shape {mu.shape} != ({n},)")
        sigma_mat = (nearest_psd_jitter(np.asarray(init_sigma, dtype=float))
                     if init_sigma is not None else default_sigma)
        if sigma_mat.shape != (n, n):
            raise ValueError(f"init_sigma shape {sigma_mat.shape} != ({n}, {n})")
        noise_var = (float(init_noise_var) if init_noise_var is not None
                     else default_noise)
        if noise_var <= 0:
            raise ValueError(f"init_noise_var must be positive, got {noise_var}")

        # Fault-injection hook: force the failure modes the numerical
        # guards below exist for.
        for spec in get_injector().fire("em.fit"):
            if spec.kind == "em-nonconvergence":
                raise ConvergenceError(
                    "injected EM non-convergence",
                    iterations=self.config.max_iterations)
            if spec.kind == "singular-covariance":
                if spec.magnitude < 0:
                    sigma_mat = np.full_like(sigma_mat, np.nan)
                else:
                    # A singular starting Sigma: repairable, so this
                    # exercises the jitter-escalation guard; a negative
                    # magnitude poisons it outright, so the guard raises
                    # CovarianceError.
                    sigma_mat = sigma_mat * spec.magnitude
                sigma_mat = nearest_psd_jitter(sigma_mat)

        groups = obs.mask_groups()
        loglik_history: List[float] = []
        zhat = np.zeros((m, n))
        zvar = np.zeros((m, n))
        converged = False
        iterations = 0

        ob = get_observability()
        with ob.tracer.span("em.fit", num_applications=m, num_configs=n,
                            use_woodbury=self.config.use_woodbury) as fit_span:
            for iterations in range(1, self.config.max_iterations + 1):
                with ob.tracer.span("em.iteration",
                                    iteration=iterations) as it_span:
                    # ---------------- E-step (Eq. 3) ----------------
                    # Each mask group is handled as one stacked solve:
                    # the factorization is computed (or fetched from the
                    # posterior cache) once per group and applied to all
                    # matching applications at once.
                    loglik = 0.0
                    sum_cov = np.zeros((n, n))
                    sse_obs = 0.0  # sum over observed entries of (zhat - y)^2
                    trace_obs = 0.0  # sum over observed entries of diag(C)
                    dense_sigma_inv = None
                    if not self.config.use_woodbury:
                        # The literal Eq. (3) needs Sigma^{-1}; it depends
                        # only on the iteration's parameters, not the mask.
                        dense_sigma_inv = np.linalg.inv(
                            nearest_psd_jitter(sigma_mat))
                    for obs_idx, apps in groups:
                        apps_arr = np.asarray(apps)
                        y_rows = obs.values[apps_arr][:, obs_idx]
                        if self.config.use_woodbury:
                            post = self._posterior(sigma_mat, noise_var,
                                                   obs_idx)
                            cov = post.covariance
                            zhat[apps_arr] = post.means(mu, y_rows)
                            loglik += float(post.logliks(mu, y_rows).sum())
                        else:
                            cov, zhat_rows = self._dense_group_posterior(
                                dense_sigma_inv, noise_var, obs_idx, mu,
                                y_rows, n)
                            zhat[apps_arr] = zhat_rows
                            check = self._posterior(sigma_mat, noise_var,
                                                    obs_idx)
                            loglik += float(check.logliks(mu, y_rows).sum())
                        diag_cov = np.diag(cov)
                        zvar[apps_arr] = diag_cov
                        sum_cov += len(apps) * cov
                        trace_obs += len(apps) * float(diag_cov[obs_idx].sum())
                        diffs = zhat[apps_arr][:, obs_idx] - y_rows
                        sse_obs += float(np.einsum("ij,ij->", diffs, diffs))

                    if not np.isfinite(loglik):
                        raise ConvergenceError(
                            f"EM log-likelihood became non-finite "
                            f"({loglik!r}) at iteration {iterations}",
                            iterations=iterations, loglik=loglik)
                    loglik_history.append(loglik)
                    it_span.set_attribute("loglik", loglik)
                    ob.metrics.inc("em_iterations_total")
                    if len(loglik_history) >= 2:
                        prev = loglik_history[-2]
                        it_span.set_attribute("loglik_delta", loglik - prev)
                        if (abs(loglik - prev)
                                <= self.config.tol * (abs(prev) + 1.0)):
                            converged = True

                    if not converged:
                        # ---------------- M-step (Eq. 4) ----------------
                        mu, sigma_mat, noise_var = self._m_step(
                            obs, zhat, sum_cov, sse_obs, trace_obs)
                if converged:
                    break
            fit_span.set_attribute("iterations", iterations)
            fit_span.set_attribute("converged", converged)

        if not converged:
            if self.config.raise_on_nonconvergence:
                raise ConvergenceError(
                    f"EM hit the iteration cap ({iterations}) without "
                    f"reaching tol={self.config.tol}",
                    iterations=iterations,
                    loglik=loglik_history[-1] if loglik_history
                    else float("nan"))
            logger.debug(
                "EM stopped at the iteration cap without converging",
                extra={"fields": {"iterations": iterations,
                                  "tol": self.config.tol}})
        return EMResult(mu=mu, sigma_mat=sigma_mat, noise_var=noise_var,
                        zhat=zhat, zvar=zvar, loglik_history=loglik_history,
                        iterations=iterations, converged=converged)

    # ------------------------------------------------------------------
    @staticmethod
    def _dense_group_posterior(sigma_inv: np.ndarray, noise_var: float,
                               obs_idx: np.ndarray, mu: np.ndarray,
                               y_rows: np.ndarray, n: int):
        """Literal Eq. (3) for one mask group, as a stacked solve.

        Mathematically identical to calling
        :func:`repro.core.linalg.dense_posterior` once per application,
        but the O(n^3) precision inverse is computed once per group and
        the per-application means collapse into a single matrix product.
        Retained for the Woodbury ablation benchmark.
        """
        indicator = np.zeros(n)
        indicator[obs_idx] = 1.0
        precision = np.diag(indicator / noise_var) + sigma_inv
        cov = np.linalg.inv(precision)
        y_full = np.zeros((y_rows.shape[0], n))
        y_full[:, obs_idx] = y_rows
        rhs = indicator * y_full / noise_var + sigma_inv @ mu
        zhat_rows = rhs @ cov.T
        return symmetrize(cov), zhat_rows

    # ------------------------------------------------------------------
    def _m_step(self, obs: ObservationSet, zhat: np.ndarray,
                sum_cov: np.ndarray, sse_obs: float, trace_obs: float):
        m, n = zhat.shape
        prior = self.prior

        if prior is None:
            mu = zhat.mean(axis=0)
        else:
            mu0 = prior.mu0_vector(n)
            mu = (prior.pi * mu0 + zhat.sum(axis=0)) / (m + prior.pi)

        centered = zhat - mu
        scatter = sum_cov + centered.T @ centered
        if prior is None:
            sigma_mat = scatter / m
        else:
            mu0 = prior.mu0_vector(n)
            dev = (mu - mu0).reshape(-1, 1)
            scatter = scatter + prior.psi_matrix(n) + prior.pi * (dev @ dev.T)
            sigma_mat = scatter / (m + prior.nu)
        sigma_mat = nearest_psd_jitter(sigma_mat)

        noise_var = (trace_obs + sse_obs) / obs.total_observations
        noise_var = max(noise_var, self.config.min_noise_var)
        return mu, sigma_mat, noise_var
