"""The expectation-maximization engine (paper Section 5.3).

Alternates the E-step (Eq. 3: posterior moments of each application's
latent curve z_i given the current parameters) with the M-step (Eq. 4:
re-estimating theta = {mu, Sigma, sigma}) until the observed-data
log-likelihood stabilizes.  The paper reports convergence in 3-4
iterations on its benchmark set; the engine caps iterations and reports
whether the tolerance was reached.

The M-step follows Eq. (4) with the normal-inverse-Wishart terms placed
inside the normalizer (see DESIGN.md section 2 for why the printed
formula's placement cannot be literal).  Passing ``prior=None`` removes
the NIW terms entirely, giving the exact maximum-likelihood M-step, under
which EM's classic monotonicity guarantee holds and is property-tested.
"""

from __future__ import annotations

import dataclasses
import logging
from typing import List, Optional

import numpy as np

from repro.core.linalg import MaskedPosterior, dense_posterior, nearest_psd_jitter
from repro.core.observation import ObservationSet
from repro.core.priors import NIWPrior
from repro.obs import get_observability

logger = logging.getLogger(__name__)


@dataclasses.dataclass(frozen=True)
class EMConfig:
    """Knobs of the EM engine.

    Attributes:
        max_iterations: Hard cap on EM iterations.
        tol: Relative log-likelihood change below which EM stops.
        min_noise_var: Floor on sigma^2 to keep posteriors well-posed.
        use_woodbury: Use the masked Woodbury E-step (True) or the
            literal dense Eq. (3) inverses (False; for the ablation).
    """

    max_iterations: int = 50
    tol: float = 1e-6
    min_noise_var: float = 1e-10
    use_woodbury: bool = True

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {self.max_iterations}"
            )
        if self.tol <= 0:
            raise ValueError(f"tol must be positive, got {self.tol}")
        if self.min_noise_var <= 0:
            raise ValueError(
                f"min_noise_var must be positive, got {self.min_noise_var}"
            )


@dataclasses.dataclass
class EMResult:
    """Fitted parameters and posterior summaries.

    Attributes:
        mu: Estimated shared mean, shape ``(n,)``.
        sigma_mat: Estimated shared covariance Sigma, shape ``(n, n)``.
        noise_var: Estimated measurement noise sigma^2.
        zhat: Posterior means E(z_i), shape ``(M, n)`` — row M-1 is the
            target application's estimate (paper Section 5.4).
        zvar: Posterior variances diag(Cov(z_i)), shape ``(M, n)``,
            quantifying per-configuration estimation uncertainty.
        loglik_history: Observed-data log-likelihood before each E-step.
        iterations: EM iterations executed.
        converged: Whether the tolerance was met before the cap.
    """

    mu: np.ndarray
    sigma_mat: np.ndarray
    noise_var: float
    zhat: np.ndarray
    zvar: np.ndarray
    loglik_history: List[float]
    iterations: int
    converged: bool


def _default_initialization(obs: ObservationSet):
    """Offline-flavoured initialization (paper Section 5.5).

    mu starts at the per-configuration mean of whatever was observed;
    Sigma at the sample covariance of the fully observed rows (falling
    back to a scaled identity); sigma^2 at one percent of the data
    variance.
    """
    values, mask = obs.values, obs.mask
    counts = mask.sum(axis=0)
    col_sum = values.sum(axis=0)
    global_mean = values[mask].mean()
    mu = np.where(counts > 0, col_sum / np.maximum(counts, 1), global_mean)

    full_rows = mask.all(axis=1)
    data_var = float(values[mask].var())
    if data_var <= 0:
        data_var = 1.0
    if full_rows.sum() >= 2:
        sigma_mat = np.cov(values[full_rows], rowvar=False)
        sigma_mat = nearest_psd_jitter(
            sigma_mat + 0.05 * data_var * np.eye(obs.num_configs))
    else:
        sigma_mat = data_var * np.eye(obs.num_configs)
    noise_var = max(0.01 * data_var, 1e-8)
    return mu, sigma_mat, noise_var


class EMEngine:
    """Runs EM for the hierarchical model on an observation set."""

    def __init__(self, prior: Optional[NIWPrior] = None,
                 config: EMConfig = EMConfig()) -> None:
        self.prior = prior
        self.config = config

    # ------------------------------------------------------------------
    def fit(self, obs: ObservationSet,
            init_mu: Optional[np.ndarray] = None,
            init_sigma: Optional[np.ndarray] = None,
            init_noise_var: Optional[float] = None) -> EMResult:
        """Fit theta = {mu, Sigma, sigma^2} and the posterior curves."""
        n = obs.num_configs
        m = obs.num_applications
        default_mu, default_sigma, default_noise = _default_initialization(obs)
        mu = np.asarray(init_mu, dtype=float) if init_mu is not None else default_mu
        if mu.shape != (n,):
            raise ValueError(f"init_mu shape {mu.shape} != ({n},)")
        sigma_mat = (nearest_psd_jitter(np.asarray(init_sigma, dtype=float))
                     if init_sigma is not None else default_sigma)
        if sigma_mat.shape != (n, n):
            raise ValueError(f"init_sigma shape {sigma_mat.shape} != ({n}, {n})")
        noise_var = (float(init_noise_var) if init_noise_var is not None
                     else default_noise)
        if noise_var <= 0:
            raise ValueError(f"init_noise_var must be positive, got {noise_var}")

        groups = obs.mask_groups()
        loglik_history: List[float] = []
        zhat = np.zeros((m, n))
        zvar = np.zeros((m, n))
        converged = False
        iterations = 0

        ob = get_observability()
        with ob.tracer.span("em.fit", num_applications=m, num_configs=n,
                            use_woodbury=self.config.use_woodbury) as fit_span:
            for iterations in range(1, self.config.max_iterations + 1):
                with ob.tracer.span("em.iteration",
                                    iteration=iterations) as it_span:
                    # ---------------- E-step (Eq. 3) ----------------
                    loglik = 0.0
                    sum_cov = np.zeros((n, n))
                    sse_obs = 0.0  # sum over observed entries of (zhat - y)^2
                    trace_obs = 0.0  # sum over observed entries of diag(C)
                    for obs_idx, apps in groups:
                        if self.config.use_woodbury:
                            post = MaskedPosterior(sigma_mat, noise_var,
                                                   obs_idx)
                            cov = post.covariance
                            y_rows = obs.values[np.asarray(apps)][:, obs_idx]
                            zhat[apps] = post.means(mu, y_rows)
                            loglik += float(post.logliks(mu, y_rows).sum())
                        else:
                            post = None
                            cov = None
                            for i in apps:
                                y_obs = obs.values[i, obs_idx]
                                zhat[i], cov_i = dense_posterior(
                                    sigma_mat, noise_var, obs_idx, mu, y_obs)
                                cov = cov_i  # identical across the group
                                check = MaskedPosterior(sigma_mat, noise_var,
                                                        obs_idx)
                                loglik += check.observed_loglik(mu, y_obs)
                        for i in apps:
                            zvar[i] = np.diag(cov)
                        sum_cov += len(apps) * cov
                        cov_trace_obs = float(np.diag(cov)[obs_idx].sum())
                        for i in apps:
                            diff = zhat[i, obs_idx] - obs.values[i, obs_idx]
                            sse_obs += float(diff @ diff)
                            trace_obs += cov_trace_obs

                    loglik_history.append(loglik)
                    it_span.set_attribute("loglik", loglik)
                    ob.metrics.inc("em_iterations_total")
                    if len(loglik_history) >= 2:
                        prev = loglik_history[-2]
                        it_span.set_attribute("loglik_delta", loglik - prev)
                        if (abs(loglik - prev)
                                <= self.config.tol * (abs(prev) + 1.0)):
                            converged = True

                    if not converged:
                        # ---------------- M-step (Eq. 4) ----------------
                        mu, sigma_mat, noise_var = self._m_step(
                            obs, zhat, sum_cov, sse_obs, trace_obs)
                if converged:
                    break
            fit_span.set_attribute("iterations", iterations)
            fit_span.set_attribute("converged", converged)

        if not converged:
            logger.debug(
                "EM stopped at the iteration cap without converging",
                extra={"fields": {"iterations": iterations,
                                  "tol": self.config.tol}})
        return EMResult(mu=mu, sigma_mat=sigma_mat, noise_var=noise_var,
                        zhat=zhat, zvar=zvar, loglik_history=loglik_history,
                        iterations=iterations, converged=converged)

    # ------------------------------------------------------------------
    def _m_step(self, obs: ObservationSet, zhat: np.ndarray,
                sum_cov: np.ndarray, sse_obs: float, trace_obs: float):
        m, n = zhat.shape
        prior = self.prior

        if prior is None:
            mu = zhat.mean(axis=0)
        else:
            mu0 = prior.mu0_vector(n)
            mu = (prior.pi * mu0 + zhat.sum(axis=0)) / (m + prior.pi)

        centered = zhat - mu
        scatter = sum_cov + centered.T @ centered
        if prior is None:
            sigma_mat = scatter / m
        else:
            mu0 = prior.mu0_vector(n)
            dev = (mu - mu0).reshape(-1, 1)
            scatter = scatter + prior.psi_matrix(n) + prior.pi * (dev @ dev.T)
            sigma_mat = scatter / (m + prior.nu)
        sigma_mat = nearest_psd_jitter(sigma_mat)

        noise_var = (trace_obs + sse_obs) / obs.total_observations
        noise_var = max(noise_var, self.config.min_noise_var)
        return mu, sigma_mat, noise_var
