"""Numerical linear algebra for the EM engine.

Two concerns live here:

* **Stability** — covariance iterates must stay symmetric positive
  definite through hundreds of floating-point updates
  (:func:`symmetrize`, :func:`nearest_psd_jitter`).
* **Efficiency** — the E-step posterior (paper Eq. 3)

      Cov(z_i) = (diag(L_i)/sigma^2 + Sigma^{-1})^{-1}

  is an n x n inverse per application if computed naively.  Rewriting it
  with the Woodbury identity over the k = |Omega_i| observed coordinates,

      Cov(z_i) = Sigma - Sigma[:, O] (Sigma[O, O] + sigma^2 I)^{-1} Sigma[O, :],
      E(z_i)   = mu + Sigma[:, O] (Sigma[O, O] + sigma^2 I)^{-1} (y[O] - mu[O]),

  costs O(n^2 k + k^3) and — crucially — the covariance depends only on
  the *mask*, so applications sharing a mask (all M-1 fully observed
  priors) share one factorization (:class:`MaskedPosterior`).
"""

from __future__ import annotations

import collections
import hashlib
from typing import Optional, Tuple

import numpy as np
from scipy import linalg as sla

from repro.errors import CovarianceError
from repro.obs import get_metrics, start_timer, stop_timer


def symmetrize(a: np.ndarray) -> np.ndarray:
    """The symmetric part ``(A + A') / 2``."""
    return 0.5 * (a + a.T)


def nearest_psd_jitter(a: np.ndarray, max_tries: int = 12) -> np.ndarray:
    """Return ``a`` with just enough diagonal jitter to be Cholesky-able.

    Starts from a relative jitter of 1e-12 of the mean diagonal and grows
    by 10x per failed attempt.  Raises :class:`~repro.errors.
    CovarianceError` (a ``np.linalg.LinAlgError`` subclass, so legacy
    handlers keep working) when the matrix contains non-finite entries
    or cannot be repaired within ``max_tries`` escalations — either
    indicates a genuinely broken update, not roundoff.  Escalations past
    the first attempt are counted on the ambient metrics registry
    (``linalg_jitter_escalations_total``).
    """
    a = symmetrize(np.asarray(a, dtype=float))
    if not np.all(np.isfinite(a)):
        raise CovarianceError(
            "covariance matrix contains non-finite entries")
    scale = float(np.mean(np.diag(a)))
    if scale <= 0 or not np.isfinite(scale):
        scale = 1.0
    jitter = 0.0
    for attempt in range(max_tries):
        try:
            np.linalg.cholesky(a + jitter * np.eye(a.shape[0]))
            break
        except np.linalg.LinAlgError:
            jitter = scale * 10.0 ** (attempt - 12)
            if attempt:
                get_metrics().inc("linalg_jitter_escalations_total")
    else:
        raise CovarianceError(
            "matrix is not repairable to positive definite"
        )
    if jitter:
        a = a + jitter * np.eye(a.shape[0])
    return a


def cholesky_logdet(chol_lower: np.ndarray) -> float:
    """``log det(A)`` from A's lower Cholesky factor."""
    return 2.0 * float(np.sum(np.log(np.diag(chol_lower))))


class MaskedPosterior:
    """Posterior of z given observations at a fixed index subset.

    Precomputes everything that depends only on (Sigma, sigma^2, Omega)
    so that the per-application mean is a cheap matrix-vector product.

    Args:
        sigma_mat: Prior covariance Sigma, ``(n, n)``, SPD.
        noise_var: Observation noise sigma^2 (> 0).
        obs_idx: Sorted observed configuration indices Omega.
    """

    def __init__(self, sigma_mat: np.ndarray, noise_var: float,
                 obs_idx: np.ndarray) -> None:
        if noise_var <= 0:
            raise ValueError(f"noise_var must be positive, got {noise_var}")
        obs_idx = np.asarray(obs_idx, dtype=int)
        if obs_idx.ndim != 1 or obs_idx.size == 0:
            raise ValueError("obs_idx must be a non-empty 1-D index array")
        n = sigma_mat.shape[0]
        if sigma_mat.shape != (n, n):
            raise ValueError(f"Sigma must be square, got {sigma_mat.shape}")
        self.obs_idx = obs_idx
        self.noise_var = float(noise_var)

        started = start_timer()
        if obs_idx.size == n and np.array_equal(obs_idx, np.arange(n)):
            # Fully observed fast path (the M-1 offline applications):
            # with S = Sigma + noise I and K = S^{-1},
            #   Cov(z) = noise I - noise^2 K   and   G = I - noise K,
            # so one Cholesky inverse replaces three O(n^3) products.
            s_full = symmetrize(sigma_mat + noise_var * np.eye(n))
            self._chol = sla.cho_factor(s_full, lower=True,
                                        check_finite=False)
            k_inv = self._cholesky_inverse(self._chol[0])
            self._gain = np.eye(n) - noise_var * k_inv
            self._cov = symmetrize(
                noise_var * np.eye(n) - noise_var ** 2 * k_inv)
        else:
            s_no = sigma_mat[:, obs_idx]                   # (n, k)
            s_oo = s_no[obs_idx, :] + noise_var * np.eye(obs_idx.size)
            s_oo = symmetrize(s_oo)
            self._chol = sla.cho_factor(s_oo, lower=True, check_finite=False)
            # Gain G = Sigma[:, O] (Sigma[O, O] + noise I)^{-1}, (n, k).
            self._gain = sla.cho_solve(self._chol, s_no.T,
                                       check_finite=False).T
            self._cov = symmetrize(sigma_mat - self._gain @ s_no.T)
        get_metrics().inc("linalg_posterior_factorizations_total")
        stop_timer("linalg_posterior_seconds", started)

    @staticmethod
    def _cholesky_inverse(chol_lower: np.ndarray) -> np.ndarray:
        """Full inverse from a lower Cholesky factor via LAPACK potri."""
        inv_tri, info = sla.lapack.dpotri(chol_lower, lower=1)
        if info != 0:
            raise np.linalg.LinAlgError(f"dpotri failed with info={info}")
        # potri fills only the lower triangle; mirror it.
        return np.tril(inv_tri) + np.tril(inv_tri, -1).T

    @property
    def covariance(self) -> np.ndarray:
        """Cov(z_i), identical for every application with this mask."""
        return self._cov

    def mean(self, mu: np.ndarray, y_obs: np.ndarray) -> np.ndarray:
        """E(z_i) for one application's observed values ``y_obs``.

        ``y_obs`` must be ordered like ``obs_idx``.
        """
        if y_obs.shape != self.obs_idx.shape:
            raise ValueError(
                f"y_obs shape {y_obs.shape} != obs count {self.obs_idx.shape}"
            )
        residual = y_obs - mu[self.obs_idx]
        return mu + self._gain @ residual

    def means(self, mu: np.ndarray, y_obs_rows: np.ndarray) -> np.ndarray:
        """E(z_i) for a batch of applications sharing this mask.

        ``y_obs_rows`` has shape ``(m, k)``; returns ``(m, n)``.  One
        matrix product replaces m matrix-vector products.
        """
        if y_obs_rows.ndim != 2 or y_obs_rows.shape[1] != self.obs_idx.size:
            raise ValueError(
                f"y_obs_rows must be (m, {self.obs_idx.size}), "
                f"got {y_obs_rows.shape}"
            )
        residuals = y_obs_rows - mu[self.obs_idx]
        return mu + residuals @ self._gain.T

    def logliks(self, mu: np.ndarray, y_obs_rows: np.ndarray) -> np.ndarray:
        """Observed-data log-likelihood of each application in a batch."""
        if y_obs_rows.ndim != 2 or y_obs_rows.shape[1] != self.obs_idx.size:
            raise ValueError(
                f"y_obs_rows must be (m, {self.obs_idx.size}), "
                f"got {y_obs_rows.shape}"
            )
        residuals = y_obs_rows - mu[self.obs_idx]
        alphas = sla.cho_solve(self._chol, residuals.T, check_finite=False)
        quads = np.einsum("km,km->m", residuals.T, alphas)
        k = self.obs_idx.size
        logdet = cholesky_logdet(self._chol[0])
        return -0.5 * (quads + logdet + k * np.log(2 * np.pi))

    def observed_loglik(self, mu: np.ndarray, y_obs: np.ndarray) -> float:
        """Log N(y_obs | mu[O], Sigma[O, O] + sigma^2 I).

        This is one application's contribution to the observed-data
        log-likelihood at the current parameters.
        """
        residual = y_obs - mu[self.obs_idx]
        alpha = sla.cho_solve(self._chol, residual, check_finite=False)
        k = self.obs_idx.size
        logdet = cholesky_logdet(self._chol[0])
        return float(-0.5 * (residual @ alpha + logdet + k * np.log(2 * np.pi)))


def dense_posterior(sigma_mat: np.ndarray, noise_var: float,
                    obs_idx: np.ndarray, mu: np.ndarray,
                    y_obs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Literal Eq. (3): the dense-inverse form of the posterior.

    Computes ``C = (diag(L)/sigma^2 + Sigma^{-1})^{-1}`` and
    ``zhat = C (diag(L) y / sigma^2 + Sigma^{-1} mu)`` by direct solves.
    Mathematically identical to :class:`MaskedPosterior` but O(n^3) per
    call; retained for the correctness cross-check and the Woodbury
    ablation benchmark.
    """
    started = start_timer()
    n = sigma_mat.shape[0]
    indicator = np.zeros(n)
    indicator[np.asarray(obs_idx, dtype=int)] = 1.0
    y_full = np.zeros(n)
    y_full[np.asarray(obs_idx, dtype=int)] = y_obs

    sigma_inv = np.linalg.inv(nearest_psd_jitter(sigma_mat))
    precision = np.diag(indicator / noise_var) + sigma_inv
    cov = np.linalg.inv(precision)
    zhat = cov @ (indicator * y_full / noise_var + sigma_inv @ mu)
    stop_timer("linalg_dense_posterior_seconds", started)
    return zhat, symmetrize(cov)


class PosteriorCache:
    """Memoizes :class:`MaskedPosterior` factorizations across E-steps.

    Keyed on a content digest of ``(Sigma, sigma^2, Omega)``: two E-step
    groups — or two EM iterations, or two fits — presenting bit-identical
    parameters share one Cholesky factorization, so a cache hit is
    numerically indistinguishable from recomputation (this is what the
    golden-regression suite relies on).

    With ``tol > 0`` the cache additionally reuses the most recently
    inserted entry whose mask matches when Sigma has moved by at most
    ``tol`` (relative max-norm) and the noise is unchanged — an explicit
    approximation for the late-EM plateau where Sigma is numerically
    frozen but not bit-identical.  It is off (``0.0``) by default because
    it trades a bounded perturbation of the posterior for the skipped
    O(k^3) factorization.

    The cache keeps references to the Sigma arrays it has seen; callers
    must treat covariance iterates as immutable (the EM engine rebinds a
    fresh array every M-step, it never mutates in place).

    Args:
        maxsize: Entries retained (LRU eviction).
        tol: Relative Sigma drift accepted for approximate reuse.
    """

    def __init__(self, maxsize: int = 8, tol: float = 0.0) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if tol < 0:
            raise ValueError(f"tol must be >= 0, got {tol}")
        self.maxsize = maxsize
        self.tol = float(tol)
        self._entries: "collections.OrderedDict[bytes, tuple]" = (
            collections.OrderedDict())
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(sigma_mat: np.ndarray, noise_var: float,
             obs_idx: np.ndarray) -> bytes:
        digest = hashlib.sha1()
        digest.update(repr(sigma_mat.shape).encode())
        digest.update(np.ascontiguousarray(sigma_mat, dtype=float).tobytes())
        digest.update(np.float64(noise_var).tobytes())
        digest.update(np.ascontiguousarray(obs_idx, dtype=np.int64).tobytes())
        return digest.digest()

    def get(self, sigma_mat: np.ndarray, noise_var: float,
            obs_idx: np.ndarray) -> MaskedPosterior:
        """The memoized posterior for ``(Sigma, sigma^2, Omega)``."""
        obs_idx = np.asarray(obs_idx, dtype=int)
        key = self._key(sigma_mat, noise_var, obs_idx)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self._record_hit()
            return entry[1]
        if self.tol > 0:
            approx = self._approximate_match(sigma_mat, noise_var, obs_idx)
            if approx is not None:
                self._record_hit()
                return approx
        self.misses += 1
        posterior = MaskedPosterior(sigma_mat, noise_var, obs_idx)
        self._entries[key] = (sigma_mat, posterior)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return posterior

    def _approximate_match(self, sigma_mat: np.ndarray, noise_var: float,
                           obs_idx: np.ndarray) -> Optional[MaskedPosterior]:
        scale = max(float(np.max(np.abs(sigma_mat))), 1e-300)
        for stored_sigma, posterior in reversed(self._entries.values()):
            if (posterior.noise_var == noise_var
                    and np.array_equal(posterior.obs_idx, obs_idx)
                    and stored_sigma.shape == sigma_mat.shape
                    and float(np.max(np.abs(stored_sigma - sigma_mat)))
                    <= self.tol * scale):
                return posterior
        return None

    def _record_hit(self) -> None:
        self.hits += 1
        get_metrics().inc("linalg_posterior_cache_hits_total")

    def clear(self) -> None:
        """Drop every cached factorization."""
        self._entries.clear()
