"""Estimation-quality metrics, headlined by the paper's Eq. (5).

The paper scores every estimator with

    accuracy(yhat, y) = max(1 - ||yhat - y||^2 / ||y - ybar||^2, 0),

i.e. the coefficient of determination (R^2) clipped at zero — an
estimator no better than predicting the mean scores 0, a perfect
estimator scores 1.  Companion metrics (RMSE, MAPE) are provided for the
extended analyses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _as_aligned(y_hat: Sequence[float], y_true: Sequence[float]):
    yh = np.asarray(y_hat, dtype=float).ravel()
    yt = np.asarray(y_true, dtype=float).ravel()
    if yh.shape != yt.shape:
        raise ValueError(f"shape mismatch: {yh.shape} vs {yt.shape}")
    if yh.size == 0:
        raise ValueError("metrics need at least one point")
    if not (np.all(np.isfinite(yh)) and np.all(np.isfinite(yt))):
        raise ValueError("metrics need finite inputs")
    return yh, yt


def accuracy(y_hat: Sequence[float], y_true: Sequence[float]) -> float:
    """Paper Eq. (5): clipped R^2 of the estimate against the truth.

    Degenerate truth (zero variance) scores 1.0 for an exact match and
    0.0 otherwise.
    """
    yh, yt = _as_aligned(y_hat, y_true)
    sse = float(np.sum((yh - yt) ** 2))
    sst = float(np.sum((yt - yt.mean()) ** 2))
    if sst == 0.0:
        return 1.0 if sse == 0.0 else 0.0
    return max(1.0 - sse / sst, 0.0)


def rmse(y_hat: Sequence[float], y_true: Sequence[float]) -> float:
    """Root-mean-square error."""
    yh, yt = _as_aligned(y_hat, y_true)
    return float(np.sqrt(np.mean((yh - yt) ** 2)))


def mape(y_hat: Sequence[float], y_true: Sequence[float]) -> float:
    """Mean absolute percentage error; requires nonzero truth entries."""
    yh, yt = _as_aligned(y_hat, y_true)
    if np.any(yt == 0):
        raise ValueError("MAPE undefined when the truth contains zeros")
    return float(np.mean(np.abs((yh - yt) / yt)))


def normalized_to(values: Sequence[float], reference: float) -> np.ndarray:
    """``values / reference`` with validation (e.g. energy vs optimal)."""
    if reference <= 0:
        raise ValueError(f"reference must be positive, got {reference}")
    v = np.asarray(values, dtype=float)
    return v / reference
