"""Cross-platform transfer priors for the hierarchical Bayesian model.

The paper pools every prior application into one matrix-normal layer,
which is only sound when all priors were observed on the *same* platform.
When prior applications come from different machines (a homogeneous Xeon
box feeding estimates for a new big.LITTLE node, say), naive pooling
injects curves whose shape reflects the wrong hardware.  Following REOH's
probabilistic treatment of heterogeneous devices, this module makes the
platform of origin explicit:

* :class:`PlatformSignature` — a numeric descriptor of a platform
  (derived from :meth:`HeteroTopology.signature`);
* :func:`platform_similarity` — an RBF kernel over signatures;
* :func:`alignment_features` / :func:`map_indices` — map curves between
  configuration spaces of different platforms by nearest physical
  configuration (relative core share, delivered relative frequency, …);
* :class:`TransferPrior` — assembles prior applications from many
  platforms into one effective prior table for a target platform: each
  foreign block is aligned onto the target space and shrunk toward its
  own per-application mean by the platform-similarity weight, and the
  per-platform covariance blocks feed a matrix-``Psi``
  :class:`~repro.core.priors.NIWPrior` instead of the identity.

Degeneracy guarantee: blocks whose platform signature matches the target
exactly (distance 0) and whose space is the target space pass through
untouched — no floating-point transformation — so a same-platform
transfer prior is bit-identical to naive pooling, and ``psi_blend=0``
reproduces the paper's ``Psi = I`` exactly.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.priors import NIWPrior
from repro.platform.config_space import Configuration, ConfigurationSpace
from repro.platform.dvfs import NOMINAL_GHZ
from repro.platform.hetero import HeteroConfiguration, HeteroTopology
from repro.platform.topology import Topology

#: Typical magnitude of each signature dimension, used to normalize
#: before the RBF kernel (cores, threads, controllers, min/max GHz,
#: perf/power scale, total TDP, offload speedup).
_SIGNATURE_SCALE = np.array([16.0, 32.0, 2.0, 1.2, 2.9, 1.0, 1.0,
                             270.0, 8.0])


@dataclasses.dataclass(frozen=True)
class PlatformSignature:
    """A named numeric descriptor of one platform."""

    name: str
    features: np.ndarray

    def __post_init__(self) -> None:
        features = np.asarray(self.features, dtype=float)
        if features.ndim != 1 or features.size != _SIGNATURE_SCALE.size:
            raise ValueError(
                f"signature features must be a length-"
                f"{_SIGNATURE_SCALE.size} vector, got shape "
                f"{features.shape}")
        object.__setattr__(self, "features", features)


PlatformLike = Union[PlatformSignature, HeteroTopology, Topology]


def signature_of(platform: PlatformLike,
                 name: Optional[str] = None) -> PlatformSignature:
    """Coerce a topology (plain or hetero) to a :class:`PlatformSignature`."""
    if isinstance(platform, PlatformSignature):
        return platform
    if isinstance(platform, HeteroTopology):
        label = name or repr(platform)
        return PlatformSignature(label, platform.signature())
    if isinstance(platform, Topology):
        hetero = HeteroTopology.from_topology(platform)
        label = name or (f"{platform.sockets}x{platform.cores_per_socket}"
                         f"core")
        return PlatformSignature(label, hetero.signature())
    raise TypeError(f"cannot build a platform signature from "
                    f"{type(platform).__name__}")


def platform_distance(a: PlatformLike, b: PlatformLike) -> float:
    """Root-mean-square distance between normalized signatures."""
    fa = signature_of(a).features / _SIGNATURE_SCALE
    fb = signature_of(b).features / _SIGNATURE_SCALE
    return float(np.sqrt(np.mean((fa - fb) ** 2)))


def platform_similarity(a: PlatformLike, b: PlatformLike,
                        length_scale: float = 0.5) -> float:
    """RBF kernel over platform signatures, in (0, 1].

    Identical platforms score exactly 1.0; the ``length_scale`` sets how
    quickly trust in a foreign platform's curves decays with distance.
    """
    if length_scale <= 0:
        raise ValueError(f"length_scale must be positive, "
                         f"got {length_scale}")
    d = platform_distance(a, b)
    if d == 0.0:
        return 1.0
    return float(np.exp(-0.5 * (d / length_scale) ** 2))


def alignment_features(space: ConfigurationSpace) -> np.ndarray:
    """Physical (platform-relative) coordinates of every configuration.

    Columns: core share, thread share, controller share, delivered
    relative per-core speed, offload flag.  These are comparable across
    platforms with different ladder lengths and cluster structure, which
    raw knob indices are not.
    """
    topology = space.topology
    total_cores = topology.total_cores
    total_threads = getattr(topology, "total_threads", total_cores)
    max_mem = topology.memory_controllers
    rows = np.empty((len(space), 5))
    for i, config in enumerate(space):
        if isinstance(config, HeteroConfiguration) \
                and isinstance(topology, HeteroTopology):
            weighted = 0.0
            for k, c in config.active_clusters():
                cluster = topology.clusters[k]
                ghz = config.cluster_speeds[k].effective_ghz(c, cluster.cores)
                weighted += c * cluster.perf_scale * (ghz / NOMINAL_GHZ)
            speed = weighted / config.cores
            offload = 1.0 if config.offload else 0.0
        else:
            speed = config.effective_ghz(total_cores) / NOMINAL_GHZ
            offload = 0.0
        rows[i] = (config.cores / total_cores,
                   config.threads / total_threads,
                   config.memory_controllers / max_mem,
                   speed, offload)
    return rows


def map_indices(source_space: ConfigurationSpace,
                target_space: ConfigurationSpace) -> np.ndarray:
    """For each target configuration, the nearest source configuration.

    Nearest in the physical coordinates of :func:`alignment_features`;
    returns an integer array of length ``len(target_space)`` indexing
    into ``source_space``.
    """
    src = alignment_features(source_space)
    tgt = alignment_features(target_space)
    # (n_tgt, n_src) squared distances, chunked to bound memory.
    out = np.empty(len(tgt), dtype=int)
    chunk = max(1, 8_000_000 // max(len(src), 1))
    for start in range(0, len(tgt), chunk):
        block = tgt[start:start + chunk]
        d2 = ((block[:, None, :] - src[None, :, :]) ** 2).sum(axis=2)
        out[start:start + chunk] = np.argmin(d2, axis=1)
    return out


@dataclasses.dataclass(frozen=True)
class PlatformBlock:
    """Prior applications observed on one platform."""

    signature: PlatformSignature
    space: ConfigurationSpace
    rates: np.ndarray
    powers: np.ndarray
    names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        rates = np.asarray(self.rates, dtype=float)
        powers = np.asarray(self.powers, dtype=float)
        n = len(self.space)
        if rates.ndim != 2 or rates.shape[1] != n:
            raise ValueError(f"rates must be (apps, {n}), "
                             f"got {rates.shape}")
        if powers.shape != rates.shape:
            raise ValueError(f"powers shape {powers.shape} must match "
                             f"rates shape {rates.shape}")
        object.__setattr__(self, "rates", rates)
        object.__setattr__(self, "powers", powers)


@dataclasses.dataclass(frozen=True)
class TransferredPrior:
    """The effective prior tables for a target platform.

    ``blocks`` carries ``(start, stop, weight)`` row spans per source
    platform — the structure :func:`block_psi` and
    :class:`~repro.estimators.transfer.TransferAwareLEO` use to build
    per-platform covariance blocks.
    """

    rates: np.ndarray
    powers: np.ndarray
    blocks: Tuple[Tuple[int, int, float], ...]
    names: Tuple[str, ...]

    @property
    def weights(self) -> np.ndarray:
        """Per-row platform-similarity weight."""
        out = np.empty(self.rates.shape[0])
        for start, stop, w in self.blocks:
            out[start:stop] = w
        return out


class TransferPrior:
    """Assemble prior applications from many platforms for a target.

    Usage::

        prior = TransferPrior(length_scale=0.5)
        prior.add_platform(xeon_topology, xeon_space, rates, powers)
        prior.add_platform(old_node, old_space, rates2, powers2)
        transferred = prior.build(big_little, hetero_space(big_little))
    """

    def __init__(self, length_scale: float = 0.5) -> None:
        if length_scale <= 0:
            raise ValueError(f"length_scale must be positive, "
                             f"got {length_scale}")
        self.length_scale = length_scale
        self._blocks: List[PlatformBlock] = []

    def add_platform(self, platform: PlatformLike,
                     space: ConfigurationSpace,
                     rates: np.ndarray, powers: np.ndarray,
                     names: Sequence[str] = ()) -> None:
        """Register prior applications observed on ``platform``."""
        self._blocks.append(PlatformBlock(
            signature=signature_of(platform), space=space,
            rates=np.asarray(rates, dtype=float),
            powers=np.asarray(powers, dtype=float),
            names=tuple(names)))

    @property
    def num_platforms(self) -> int:
        return len(self._blocks)

    @property
    def num_applications(self) -> int:
        return sum(block.rates.shape[0] for block in self._blocks)

    def build(self, platform: PlatformLike,
              target_space: ConfigurationSpace) -> TransferredPrior:
        """The effective prior tables on ``target_space``.

        Same-platform blocks (signature distance exactly 0 on the target
        space) pass through untouched.  Foreign blocks are aligned by
        nearest physical configuration and shrunk toward their own
        per-application mean by the similarity weight, so a distant
        platform contributes mostly its scale, not its shape.
        """
        if not self._blocks:
            raise ValueError("no platforms registered; call "
                             "add_platform() first")
        target = signature_of(platform)
        rate_rows: List[np.ndarray] = []
        power_rows: List[np.ndarray] = []
        spans: List[Tuple[int, int, float]] = []
        names: List[str] = []
        start = 0
        for block in self._blocks:
            weight = platform_similarity(block.signature, target,
                                         self.length_scale)
            native = (platform_distance(block.signature, target) == 0.0
                      and len(block.space) == len(target_space))
            if native:
                rates, powers = block.rates, block.powers
            else:
                idx = map_indices(block.space, target_space)
                rates, powers = _offload_response(
                    block.rates[:, idx], block.powers[:, idx],
                    block.space, idx, target_space,
                    getattr(platform, "offload", None))
                rates = self._shrink(rates, weight)
                powers = self._shrink(powers, weight)
            rate_rows.append(rates)
            power_rows.append(powers)
            stop = start + rates.shape[0]
            spans.append((start, stop, weight))
            names.extend(block.names or
                         [f"{block.signature.name}/{i}"
                          for i in range(rates.shape[0])])
            start = stop
        return TransferredPrior(
            rates=np.vstack(rate_rows), powers=np.vstack(power_rows),
            blocks=tuple(spans), names=tuple(names))

    @staticmethod
    def _shrink(aligned: np.ndarray, weight: float) -> np.ndarray:
        mean = aligned.mean(axis=1, keepdims=True)
        return weight * aligned + (1.0 - weight) * mean


def _offload_response(rates: np.ndarray, powers: np.ndarray,
                      source_space: ConfigurationSpace, idx: np.ndarray,
                      target_space: ConfigurationSpace,
                      device) -> Tuple[np.ndarray, np.ndarray]:
    """Pass aligned foreign curves through the target's offload device.

    A source platform without the device has no configurations that
    offload, so an offloading target column maps to a CPU-only source
    configuration and would inherit its CPU rate — wildly wrong when
    the per-heartbeat transfer overhead dominates.  Apply the device's
    analytic response instead: the fixed-function speedup saturated by
    the transfer time (``1 / (1/(speedup*r) + transfer)``) and the
    device's active power on top of the aligned wall power, matching
    :class:`repro.platform.hetero.HeteroPowerModel`.
    """
    if device is None:
        return rates, powers
    cols = [j for j, config in enumerate(target_space)
            if getattr(config, "offload", False)
            and not getattr(source_space[int(idx[j])], "offload", False)]
    if not cols:
        return rates, powers
    rates = np.array(rates, dtype=float)
    powers = np.array(powers, dtype=float)
    r = rates[:, cols]
    rates[:, cols] = 1.0 / (1.0 / (device.speedup * r)
                            + device.transfer_seconds)
    powers[:, cols] = powers[:, cols] + device.active_watts
    return rates, powers


def block_psi(std_prior: np.ndarray,
              blocks: Sequence[Tuple[int, int, float]],
              blend: float) -> Union[float, np.ndarray]:
    """Per-platform covariance blocks blended with the identity.

    ``std_prior`` is the prior table in the estimator's standardized
    space.  Each platform block contributes its own empirical
    configuration covariance, weighted by its similarity to the target;
    the result is ``(1-blend) * I + blend * S`` — symmetric positive
    semi-definite, and exactly the scalar ``1.0`` (the paper's
    ``Psi = I``) when ``blend == 0``.
    """
    if not 0.0 <= blend <= 1.0:
        raise ValueError(f"blend must be in [0, 1], got {blend}")
    if blend == 0.0:
        return 1.0
    n = std_prior.shape[1]
    acc = np.zeros((n, n))
    weight_rows = 0.0
    for start, stop, weight in blocks:
        rows = std_prior[start:stop]
        if rows.shape[0] == 0:
            continue
        centered = rows - rows.mean(axis=0)
        acc += weight * (centered.T @ centered)
        weight_rows += weight * rows.shape[0]
    if weight_rows <= 0.0:
        return 1.0
    scatter = acc / weight_rows
    scatter = 0.5 * (scatter + scatter.T)
    return (1.0 - blend) * np.eye(n) + blend * scatter
