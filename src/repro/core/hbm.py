"""The hierarchical Bayesian model (paper Section 5.2), as a user API.

:class:`HierarchicalBayesianModel` owns a hyperprior and EM settings and
turns an :class:`~repro.core.observation.ObservationSet` into a
:class:`FittedModel`, from which per-application curves and uncertainty
bands can be read.  The target application's estimate is the posterior
mean of its latent curve, ``E(z_M)`` (paper Section 5.4: "LEO estimates
z_M, ... which is an unbiased estimator for y_M").
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.core.em import EMConfig, EMEngine, EMResult
from repro.core.observation import ObservationSet
from repro.core.priors import NIWPrior


@dataclasses.dataclass(frozen=True)
class FittedModel:
    """A fitted hierarchy bound to the observations that produced it."""

    observations: ObservationSet
    result: EMResult

    def curve(self, app: int) -> np.ndarray:
        """Posterior mean curve E(z_i) of application ``app``, shape (n,)."""
        return self.result.zhat[app].copy()

    def target_curve(self) -> np.ndarray:
        """The target application's estimated curve (last row)."""
        return self.curve(self.observations.target_row)

    def credible_band(self, app: int, stddevs: float = 2.0
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Pointwise ``(lower, upper)`` band of ``stddevs`` posterior SDs."""
        if stddevs < 0:
            raise ValueError(f"stddevs must be >= 0, got {stddevs}")
        mean = self.result.zhat[app]
        sd = np.sqrt(np.maximum(self.result.zvar[app], 0.0))
        return mean - stddevs * sd, mean + stddevs * sd

    def configuration_correlations(self) -> np.ndarray:
        """Correlation matrix between configurations, from Sigma.

        This is the structure the paper's Figure 4 illustrates: Sigma
        "captures the correlation between different configurations", and
        it is what lets an observation at one configuration inform the
        estimate at another.  Entries lie in [-1, 1] with a unit
        diagonal.
        """
        sigma = self.result.sigma_mat
        stddev = np.sqrt(np.clip(np.diag(sigma), 1e-300, None))
        corr = sigma / np.outer(stddev, stddev)
        return np.clip(corr, -1.0, 1.0)

    @property
    def loglik(self) -> float:
        """Final observed-data log-likelihood."""
        return self.result.loglik_history[-1]

    @property
    def converged(self) -> bool:
        return self.result.converged

    @property
    def iterations(self) -> int:
        return self.result.iterations


class HierarchicalBayesianModel:
    """LEO's probabilistic graphical model.

    Args:
        prior: Normal-inverse-Wishart hyperprior; the paper's defaults
            unless overridden.  ``None`` gives pure maximum likelihood.
        em_config: EM iteration/convergence settings.
    """

    def __init__(self, prior: Optional[NIWPrior] = None,
                 em_config: EMConfig = EMConfig(),
                 use_paper_prior: bool = True) -> None:
        if prior is None and use_paper_prior:
            prior = NIWPrior.paper_default()
        self.prior = prior
        self.em_config = em_config
        self._engine = EMEngine(prior=self.prior, config=em_config)

    def fit(self, observations: ObservationSet,
            init_mu: Optional[np.ndarray] = None,
            init_sigma: Optional[np.ndarray] = None) -> FittedModel:
        """Run EM on ``observations`` and return the fitted hierarchy.

        ``init_mu`` follows the paper's Section 5.5 advice: seeding the
        mean with the offline (or online) estimate improves accuracy
        over random initialization.  When omitted, the engine derives an
        offline-flavoured initialization from the observations.
        """
        result = self._engine.fit(observations, init_mu=init_mu,
                                  init_sigma=init_sigma)
        return FittedModel(observations=observations, result=result)
