"""Observation sets: the data matrix Y and the indicator matrix L.

The model's data is a matrix of per-configuration measurements for M
applications, where the first M-1 rows (the offline-profiled priors) are
fully observed and the last row (the target application) is observed only
at the small sampled subset Omega_M (paper Sections 5.2 and 5.4).  The
indicator L marks which entries exist: ``L[i, j] = 1`` iff application i
was observed in configuration j.

:class:`ObservationSet` stores exactly that, supports any missingness
pattern (not just the fully-observed-priors special case), and exposes
the mask groupings the EM engine exploits: applications sharing a mask
share their posterior covariance, so the E-step cost is paid once per
*unique* mask rather than once per application.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


class ObservationSet:
    """Partially observed measurements of M applications in n configs.

    Args:
        values: ``(M, n)`` array; entries where ``mask`` is False are
            ignored (they may be NaN).
        mask: ``(M, n)`` boolean array, True where observed.
    """

    def __init__(self, values: np.ndarray, mask: np.ndarray) -> None:
        values = np.asarray(values, dtype=float)
        mask = np.asarray(mask, dtype=bool)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D, got shape {values.shape}")
        if mask.shape != values.shape:
            raise ValueError(
                f"mask shape {mask.shape} != values shape {values.shape}"
            )
        if not mask.any(axis=1).all():
            empty = int(np.where(~mask.any(axis=1))[0][0])
            raise ValueError(f"application {empty} has no observations")
        if not np.all(np.isfinite(values[mask])):
            raise ValueError("observed entries must be finite")
        self._values = np.where(mask, values, 0.0)
        self._mask = mask

    # ------------------------------------------------------------------
    # Shape and access
    # ------------------------------------------------------------------
    @property
    def num_applications(self) -> int:
        """M: number of applications (rows)."""
        return self._values.shape[0]

    @property
    def num_configs(self) -> int:
        """n: number of configurations (columns)."""
        return self._values.shape[1]

    @property
    def values(self) -> np.ndarray:
        """``(M, n)`` values with unobserved entries zeroed."""
        return self._values

    @property
    def mask(self) -> np.ndarray:
        """``(M, n)`` boolean indicator (the paper's L, rows per app)."""
        return self._mask

    @property
    def total_observations(self) -> int:
        """``||L||_F^2``: the total number of observed entries."""
        return int(self._mask.sum())

    def observed_indices(self, app: int) -> np.ndarray:
        """Omega_i: sorted configuration indices observed for ``app``."""
        return np.where(self._mask[app])[0]

    def observed_values(self, app: int) -> np.ndarray:
        """The measurements of ``app`` at its observed indices."""
        return self._values[app, self._mask[app]]

    # ------------------------------------------------------------------
    # Mask grouping for the EM engine
    # ------------------------------------------------------------------
    def mask_groups(self) -> List[Tuple[np.ndarray, List[int]]]:
        """Applications grouped by identical observation mask.

        Returns a list of ``(observed_indices, app_indices)`` pairs.  In
        the paper's setting this has two groups: the fully observed
        priors and the sparsely observed target.
        """
        groups: Dict[bytes, List[int]] = {}
        for i in range(self.num_applications):
            groups.setdefault(self._mask[i].tobytes(), []).append(i)
        result = []
        for apps in groups.values():
            result.append((self.observed_indices(apps[0]), apps))
        return result

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_prior_and_target(cls, prior: np.ndarray,
                              target_indices: Sequence[int],
                              target_values: Sequence[float],
                              num_configs: int = 0) -> "ObservationSet":
        """The paper's layout: M-1 full rows plus a sparse target row.

        Args:
            prior: ``(M-1, n)`` fully observed offline table.  May be
                empty (shape ``(0, n)``) for the online-only setting.
            target_indices: Omega_M, the sampled configuration indices.
            target_values: Measurements at those indices.
            num_configs: Required when ``prior`` is empty to fix n.
        """
        prior = np.asarray(prior, dtype=float)
        if prior.ndim != 2:
            raise ValueError(f"prior must be 2-D, got shape {prior.shape}")
        n = prior.shape[1] if prior.size or prior.shape[1] else num_configs
        if n == 0:
            n = num_configs
        if n <= 0:
            raise ValueError("cannot infer the number of configurations")
        idx = np.asarray(target_indices, dtype=int)
        vals = np.asarray(target_values, dtype=float)
        if idx.shape != vals.shape or idx.ndim != 1:
            raise ValueError("target indices and values must be equal-length 1-D")
        if idx.size == 0:
            raise ValueError("the target needs at least one observation")
        if len(np.unique(idx)) != idx.size:
            raise ValueError("target indices must be unique")
        if idx.min() < 0 or idx.max() >= n:
            raise ValueError(f"target indices must lie in [0, {n})")

        m = prior.shape[0] + 1
        values = np.zeros((m, n))
        mask = np.zeros((m, n), dtype=bool)
        if prior.shape[0]:
            values[:-1] = prior
            mask[:-1] = True
        values[-1, idx] = vals
        mask[-1, idx] = True
        return cls(values, mask)

    @property
    def target_row(self) -> int:
        """Index of the last row, the target application by convention."""
        return self.num_applications - 1
