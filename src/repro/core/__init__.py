"""LEO's core: the hierarchical Bayesian model and its EM machinery."""

from repro.core.accuracy import accuracy, mape, normalized_to, rmse
from repro.core.em import EMConfig, EMEngine, EMResult
from repro.core.hbm import FittedModel, HierarchicalBayesianModel
from repro.core.linalg import (
    MaskedPosterior,
    dense_posterior,
    nearest_psd_jitter,
    symmetrize,
)
from repro.core.observation import ObservationSet
from repro.core.priors import ML_PRIOR, NIWPrior

__all__ = [
    "accuracy",
    "mape",
    "normalized_to",
    "rmse",
    "EMConfig",
    "EMEngine",
    "EMResult",
    "FittedModel",
    "HierarchicalBayesianModel",
    "MaskedPosterior",
    "dense_posterior",
    "nearest_psd_jitter",
    "symmetrize",
    "ObservationSet",
    "ML_PRIOR",
    "NIWPrior",
]
