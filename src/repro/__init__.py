"""LEO: probabilistic graphical model-based energy minimization.

A full reproduction of Mishra, Zhang, Lafferty & Hoffmann, "A
Probabilistic Graphical Model-based Approach for Minimizing Energy Under
Performance Constraints" (ASPLOS 2015), including the simulated test
platform, the 25-benchmark workload suite, all comparison estimators, the
energy-minimization runtime, and one experiment module per paper figure
and table.

Quickstart::

    from repro import EnergyManager, get_benchmark

    manager = EnergyManager(estimator="leo")
    report = manager.optimize(get_benchmark("kmeans"), utilization=0.5)
    print(report.energy, report.met_target)

See README.md for the architecture overview and DESIGN.md for the
system inventory and per-experiment index.
"""

from repro.clock import (
    Clock,
    VirtualClock,
    WallClock,
    get_clock,
)
from repro.clock import use as use_clock
from repro.cluster import (
    ClusterCoordinator,
    ClusterReport,
    PartitionedMachine,
    PowerCapAllocator,
    Tenant,
)
from repro.core import (
    EMConfig,
    HierarchicalBayesianModel,
    NIWPrior,
    ObservationSet,
    accuracy,
)
from repro.errors import ReproError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    default_plan,
    get_plan,
)
from repro.faults import use as use_faults
from repro.obs import (
    MetricsRegistry,
    Observability,
    Span,
    Tracer,
    logging_setup,
)
from repro.obs import use as use_observability
from repro.estimators import (
    EstimationProblem,
    Estimator,
    ExhaustiveOracle,
    InsufficientSamplesError,
    LEOEstimator,
    OfflineEstimator,
    OnlineEstimator,
    available_estimators,
    create_estimator,
    register_estimator,
)
from repro.optimize import EnergyMinimizer, Schedule, Slot, TradeoffFrontier
from repro.platform import Configuration, ConfigurationSpace, Machine, Topology
from repro.runtime import (
    ActiveCalibrator,
    CheckpointManager,
    EnergyManager,
    RaceToIdleController,
    RunReport,
    RuntimeController,
    TradeoffEstimate,
)
from repro.workloads import (
    ApplicationProfile,
    OfflineDataset,
    PhasedWorkload,
    ProfileGenerator,
    benchmark_names,
    get_benchmark,
    paper_suite,
)

__version__ = "1.0.0"

__all__ = [
    "Clock",
    "VirtualClock",
    "WallClock",
    "get_clock",
    "use_clock",
    "ClusterCoordinator",
    "ClusterReport",
    "PartitionedMachine",
    "PowerCapAllocator",
    "Tenant",
    "EMConfig",
    "HierarchicalBayesianModel",
    "NIWPrior",
    "ObservationSet",
    "accuracy",
    "EstimationProblem",
    "Estimator",
    "ExhaustiveOracle",
    "InsufficientSamplesError",
    "LEOEstimator",
    "OfflineEstimator",
    "OnlineEstimator",
    "available_estimators",
    "create_estimator",
    "register_estimator",
    "EnergyMinimizer",
    "Schedule",
    "Slot",
    "TradeoffFrontier",
    "Configuration",
    "ConfigurationSpace",
    "Machine",
    "Topology",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Tracer",
    "logging_setup",
    "use_observability",
    "ReproError",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "default_plan",
    "get_plan",
    "use_faults",
    "ActiveCalibrator",
    "CheckpointManager",
    "EnergyManager",
    "RaceToIdleController",
    "RunReport",
    "RuntimeController",
    "TradeoffEstimate",
    "ApplicationProfile",
    "OfflineDataset",
    "PhasedWorkload",
    "ProfileGenerator",
    "benchmark_names",
    "get_benchmark",
    "paper_suite",
    "__version__",
]
