"""Phased fault plans for long-horizon soak runs.

A chaos run (:mod:`repro.experiments.chaos`) compresses every fault
class into one short workload.  A *soak* spreads them out: the horizon
is divided into simulated days, and each day carries a fixed rota of
**incidents** — named, windowed outbreaks of one failure class — with
healthy recovery gaps between them.  The windows are positioned on the
soak's virtual-clock timeline (the :class:`~repro.faults.injector.
FaultInjector` carries the clock), so an incident scheduled for hour 12
of day 3 strikes exactly the cluster bursts and fleet probes that run
inside that window, every time, for a given seed.

Alongside the scheduled incidents, a low-probability **background** of
sensor and meter noise runs for the whole horizon.  Machine-facing
faults are windowed in each machine's *local* clock (machines pass
their own clock to the injector), which spans only seconds per tenant —
so background specs are always-on rather than day-phased.

The incident list is the unit of accounting: the harness reports MTTR,
availability, and energy regret *per incident*, which needs to know
when each incident started and cleared — :class:`SoakPlan` carries both
the injectable :class:`~repro.faults.plan.FaultPlan` and the schedule.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Tuple

from repro.errors import FaultPlanError
from repro.faults.plan import FaultPlan, FaultSpec

__all__ = [
    "DAY_S",
    "Incident",
    "SoakPlan",
    "soak_plan",
    "soak_plan_names",
]

#: One simulated day, the soak's phasing unit.
DAY_S = 86400.0


@dataclasses.dataclass(frozen=True)
class Incident:
    """One named, windowed outbreak on the soak timeline.

    Attributes:
        name: ``"day{d}/{template}"`` — stable across runs, the key the
            harness reports MTTR and energy regret under.
        kinds: Fault kinds active during the window.
        start: Window start in simulated seconds from soak start.
        end: Window end (exclusive), simulated seconds.
    """

    name: str
    kinds: Tuple[str, ...]
    start: float
    end: float

    @property
    def duration_s(self) -> float:
        return self.end - self.start

    def overlaps(self, start: float, end: float) -> bool:
        """Whether ``[start, end)`` intersects this incident's window."""
        return start < self.end and end > self.start


@dataclasses.dataclass(frozen=True)
class SoakPlan:
    """A fault plan plus the incident schedule that produced it.

    Attributes:
        name: Profile name (``"default"``, ``"quiet"``, ...).
        horizon_s: Simulated seconds the plan covers.
        plan: The injectable plan (background + incident specs).
        incidents: The scheduled incidents, chronological.
    """

    name: str
    horizon_s: float
    plan: FaultPlan
    incidents: Tuple[Incident, ...]


# Each template: (name, start day-fraction, end day-fraction,
# [(kind, probability, magnitude), ...]).  Fractions keep the rota
# identical on every day; windows are long (10 % of a day) so any
# segment cadence of a few hours is guaranteed to sample each window.
_INCIDENT_TEMPLATES: Tuple[Tuple[str, float, float,
                                 Tuple[Tuple[str, float, float], ...]],
                           ...] = (
    ("estimator-storm", 0.05, 0.15, (
        ("em-nonconvergence", 0.35, 1.0),
        ("singular-covariance", 0.20, 0.0),
        ("estimator-crash", 0.35, 1.0),
    )),
    ("brownout", 0.20, 0.30, (
        ("cap-transient", 1.0, 0.7),
    )),
    ("network-flap", 0.35, 0.45, (
        ("connection-drop", 0.5, 1.0),
        ("service-timeout", 0.25, 1.0),
    )),
    ("shard-outage", 0.50, 0.60, (
        ("broker-crash", 1.0, 1.0),
    )),
    ("storage-decay", 0.65, 0.75, (
        ("partial-write", 0.8, 0.5),
    )),
    ("tenant-churn", 0.80, 0.90, (
        ("tenant-crash", 0.25, 1.0),
    )),
)

#: Always-on machine/meter noise (machine-local clocks, see module doc).
_BACKGROUND_SPECS: Tuple[Tuple[str, float, float], ...] = (
    ("sensor-dropout", 0.02, 1.0),
    ("sensor-bias", 0.05, 0.10),
    ("meter-dropout", 0.02, 1.0),
)

#: Probability multiplier per profile; ``None`` drops the incidents.
_PROFILES = {
    "none": None,
    "quiet": 0.0,
    "default": 1.0,
    "heavy": 1.6,
}


def soak_plan_names() -> List[str]:
    """The shipped soak profiles, sorted."""
    return sorted(_PROFILES)


def soak_plan(profile: str = "default", horizon_s: float = 2 * DAY_S,
              seed: int = 0) -> SoakPlan:
    """Build the phased plan for one soak.

    Args:
        profile: ``"none"`` (no faults at all), ``"quiet"`` (background
            noise only, no incidents), ``"default"`` (the daily rota),
            or ``"heavy"`` (the rota at 1.6x firing probability).
        horizon_s: Simulated soak length; incidents repeat daily and
            are clipped to the horizon.
        seed: Plan seed (drives every spec's firing stream).
    """
    if profile not in _PROFILES:
        raise FaultPlanError(
            f"unknown soak profile {profile!r}; "
            f"shipped profiles: {soak_plan_names()}")
    if horizon_s <= 0:
        raise FaultPlanError(f"horizon_s must be positive, got {horizon_s}")
    scale = _PROFILES[profile]
    specs: List[FaultSpec] = []
    incidents: List[Incident] = []
    if scale is not None:
        for kind, probability, magnitude in _BACKGROUND_SPECS:
            specs.append(FaultSpec(kind, probability=probability,
                                   magnitude=magnitude))
        days = int(math.ceil(horizon_s / DAY_S))
        for day in range(days):
            base = day * DAY_S
            for name, f0, f1, faults in _INCIDENT_TEMPLATES:
                start = base + f0 * DAY_S
                end = min(base + f1 * DAY_S, horizon_s)
                if start >= horizon_s or scale == 0.0:
                    continue
                for kind, probability, magnitude in faults:
                    specs.append(FaultSpec(
                        kind, start=start, end=end,
                        probability=min(probability * scale, 1.0),
                        magnitude=magnitude))
                incidents.append(Incident(
                    name=f"day{day}/{name}",
                    kinds=tuple(kind for kind, _, _ in faults),
                    start=start, end=end))
    return SoakPlan(
        name=profile, horizon_s=float(horizon_s),
        plan=FaultPlan(name=f"soak-{profile}", seed=seed,
                       specs=tuple(specs)),
        incidents=tuple(incidents))
