"""The long-horizon chaos soak harness.

A soak answers the question a chaos run cannot: does the *whole* system
— multi-tenant cluster, estimator ladder, sharded service fleet,
checkpoints, metrics — stay inside its contracts over **days** of
simulated operation under recurring incidents?  Wall time stays in
seconds because every loop runs on one shared
:class:`~repro.clock.VirtualClock`: activity advances the clock through
the machine anchors the runtime threads through its loops, and the idle
hours between activity bursts are fast-forwarded in one jump.

The timeline is divided into **segments**, one every few simulated
hours.  Each segment runs, in order:

1. A fault-free **baseline twin** of the segment's cluster burst (own
   seeds, no clock, null observability) — the denominator for energy
   regret.
2. The **canary**: one long-lived LEO
   :class:`~repro.runtime.controller.RuntimeController` driven through
   back-to-back deadline windows on the virtual clock.  Its degradation
   ladder and *time-based* circuit breaker live across the whole soak,
   so "the breaker re-closes after the storm" is measured in simulated
   hours, not quanta.
3. A **cluster burst**: a fresh multi-tenant
   :class:`~repro.cluster.coordinator.ClusterCoordinator` (offline
   estimators + priors) with staggered arrivals under the node power
   cap — arrival/departure churn, clock-coupled so the day's phased
   incidents strike the bursts that overlap their windows.
4. **Fleet probes** against a real :class:`~repro.shard.fleet.
   ShardFleet` through a :class:`~repro.shard.client.
   ShardedServiceClient` (seeded backoff jitter) — the typed-shedding
   invariant's subject.  A health-check loop readmits shards that went
   down, modelling recovery.
5. Periodically, a **crash-resume probe**: a checkpointed run replayed
   by a fresh controller must be bit-equal — even while torn-write
   faults are active.

Invariants (:mod:`repro.soak.invariants`) are evaluated continuously;
the report carries MTTR, availability, and energy regret per scheduled
incident, and a deterministic fingerprint — two soaks with the same
config hash identically, which is how the CI smoke job asserts
reproducibility.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import pathlib
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import clock as clockmod
from repro.clock import VirtualClock
from repro.cluster.coordinator import ClusterCoordinator, Tenant
from repro.errors import InsufficientSamplesError, ReproError
from repro.experiments.harness import ExperimentContext, default_context
from repro.faults import FaultInjector
from repro.faults import use as use_faults
from repro.faults.injector import stable_seed
from repro.obs import (
    MetricsRegistry,
    Observability,
    SloObjective,
    SloTracker,
)
from repro.obs import use as use_observability
from repro.runtime.persistence import CheckpointManager
from repro.shard.client import ShardedServiceClient
from repro.shard.fleet import ShardFleet
from repro.soak.invariants import (
    InvariantViolation,
    check_cap,
    check_memory_growth,
    check_probe_error,
    check_resume_pair,
)
from repro.soak.plans import DAY_S, Incident, SoakPlan, soak_plan

logger = logging.getLogger(__name__)

__all__ = ["SoakConfig", "SegmentRecord", "IncidentReport", "SoakReport",
           "SoakHarness", "soak_run"]

#: Extra series the registry may legitimately gain after the first
#: quarter (a fault kind that first fires late creates its counter).
_MEMORY_SLACK_SERIES = 12


@dataclasses.dataclass
class SoakConfig:
    """Everything one soak run depends on (the fingerprint's domain).

    Attributes:
        horizon_s: Simulated soak length (default two days).
        tenants: Cluster tenants per burst (≤ the node's core count).
        seed: Master seed; every stream derives from it stably.
        plan: Soak fault profile (:func:`repro.soak.plans.soak_plan`).
        segment_interval_s: Simulated seconds between segment starts.
        cap_watts: Node power cap for every cluster burst.  Must clear
            the degenerate-budget floor (every tenant pinned to its
            cheapest configuration) *plus* worst-case sensor-bias
            inflation of the measured peaks, or the cap invariant is
            unsatisfiable by construction.
        cap_margin: Allocator headroom fraction (absorbs offline-prior
            estimation error under contention).
        tenant_deadline_s: Per-tenant deadline within a burst.
        utilization: Tenant demand as a fraction of its *slowest*
            configuration's rate — conservative, so a healthy burst
            meets every deadline.
        sample_count: Calibration samples per tenant (small partitions).
        canary_benchmark: The long-lived controller's workload.
        canary_estimator: Its configured (tier-0) estimator.
        canary_windows: Deadline windows the canary runs per segment.
        canary_deadline_s: Seconds per canary window.
        canary_utilization: Canary demand fraction of its peak rate.
        promotion_cooldown_s: The canary breaker's open→half-open
            cooldown in *simulated seconds* (the time-based mode).
        recovery_budget_s: Simulated seconds after an estimator
            incident clears within which the ladder must re-close.
        resume_every: Run the crash-resume probe every N segments
            (0 disables).
        fleet_shards: Brokers in the service fleet.
        fleet_probes: Ping probes per segment through the shard client.
        slo_target: Deadline-hit-rate floor for the SLO objectives.
        slo_window_s: The day-scale SLO evaluation window.
        space_kind: Experiment context space (``"cores"`` keeps bursts
            fast).
    """

    horizon_s: float = 2 * DAY_S
    tenants: int = 16
    seed: int = 0
    plan: str = "default"
    segment_interval_s: float = 7200.0
    cap_watts: float = 800.0
    cap_margin: float = 0.15
    tenant_deadline_s: float = 30.0
    utilization: float = 0.5
    sample_count: int = 4
    canary_benchmark: str = "kmeans"
    canary_estimator: str = "leo"
    canary_windows: int = 2
    canary_deadline_s: float = 25.0
    canary_utilization: float = 0.5
    promotion_cooldown_s: float = 1800.0
    recovery_budget_s: float = 4 * 7200.0
    resume_every: int = 4
    fleet_shards: int = 2
    fleet_probes: int = 4
    slo_target: float = 0.9
    slo_window_s: float = DAY_S
    space_kind: str = "cores"

    def validate(self) -> None:
        if self.horizon_s <= 0:
            raise ValueError(f"horizon_s must be positive, "
                             f"got {self.horizon_s}")
        if self.segment_interval_s <= 0:
            raise ValueError(f"segment_interval_s must be positive, "
                             f"got {self.segment_interval_s}")
        if self.tenants < 1:
            raise ValueError(f"tenants must be >= 1, got {self.tenants}")
        if self.fleet_shards < 1:
            raise ValueError(f"fleet_shards must be >= 1, "
                             f"got {self.fleet_shards}")
        if not 0 < self.utilization <= 1:
            raise ValueError(f"utilization must be in (0, 1], "
                             f"got {self.utilization}")
        if self.num_segments < 1:
            raise ValueError(
                f"horizon {self.horizon_s}s holds no segment at an "
                f"interval of {self.segment_interval_s}s")

    @property
    def num_segments(self) -> int:
        return int(self.horizon_s // self.segment_interval_s)

    def segment_start(self, index: int) -> float:
        return index * self.segment_interval_s

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class SegmentRecord:
    """What one segment did and how healthy it ended."""

    index: int
    start_s: float
    end_s: float
    energy_j: float
    baseline_energy_j: float
    deadlines_met: int
    deadlines_total: int
    cap_ok: bool
    probes_ok: int
    probes_shed: int
    probes_failed: int
    canary_tier_index: int
    canary_tier: str

    @property
    def healthy(self) -> bool:
        """All green: cap held, every deadline met, every probe served,
        canary back on its configured estimator."""
        return (self.cap_ok
                and self.deadlines_met == self.deadlines_total
                and self.probes_shed == 0 and self.probes_failed == 0
                and self.canary_tier_index == 0)

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["healthy"] = self.healthy
        return data


@dataclasses.dataclass
class IncidentReport:
    """One scheduled incident's measured cost and recovery.

    Attributes:
        name: The incident's stable name (``"day0/brownout"``).
        kinds: Fault kinds the incident injected.
        start_s: Window start (simulated seconds).
        end_s: Window end.
        segments: Segments whose activity overlapped the window.
        energy_regret_j: Summed (faulted − baseline-twin) burst energy
            over the overlapping segments — what the incident cost.
        mttr_s: Time from incident start to the end of the first fully
            healthy segment after the window cleared; ``None`` when the
            soak ended before recovery was observed.
        recovered: Whether such a segment exists.
    """

    name: str
    kinds: Tuple[str, ...]
    start_s: float
    end_s: float
    segments: int
    energy_regret_j: float
    mttr_s: Optional[float]
    recovered: bool

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["kinds"] = list(self.kinds)
        return data


@dataclasses.dataclass
class SoakReport:
    """Outcome of one soak: health, accounting, and the fingerprint.

    ``wall_s`` and ``sim_per_wall`` are measured on the host and are
    the only nondeterministic fields; :meth:`fingerprint` excludes
    them, so two runs of the same config must hash identically.
    """

    plan: str
    seed: int
    horizon_s: float
    tenants: int
    segments_run: int
    simulated_s: float
    wall_s: float
    total_energy_j: float
    baseline_energy_j: float
    energy_regret_j: float
    deadline_hit_rate: float
    availability: float
    probes_ok: int
    probes_shed: int
    probes_failed: int
    resume_probes: int
    canary_demotions: int
    canary_promotions: int
    canary_final_tier: str
    fault_counts: Dict[str, int]
    metrics_series: int
    slo: Dict[str, Any]
    incidents: List[IncidentReport]
    violations: List[InvariantViolation]
    segments: List[SegmentRecord]

    @property
    def passed(self) -> bool:
        """Whether every invariant held for the whole horizon."""
        return not self.violations

    @property
    def sim_per_wall(self) -> float:
        """Soak throughput: simulated seconds per wall second."""
        return self.simulated_s / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self, with_wall: bool = True) -> Dict[str, Any]:
        data = {
            "plan": self.plan,
            "seed": self.seed,
            "horizon_s": self.horizon_s,
            "tenants": self.tenants,
            "segments_run": self.segments_run,
            "simulated_s": self.simulated_s,
            "total_energy_j": self.total_energy_j,
            "baseline_energy_j": self.baseline_energy_j,
            "energy_regret_j": self.energy_regret_j,
            "deadline_hit_rate": self.deadline_hit_rate,
            "availability": self.availability,
            "probes_ok": self.probes_ok,
            "probes_shed": self.probes_shed,
            "probes_failed": self.probes_failed,
            "resume_probes": self.resume_probes,
            "canary_demotions": self.canary_demotions,
            "canary_promotions": self.canary_promotions,
            "canary_final_tier": self.canary_final_tier,
            "fault_counts": dict(sorted(self.fault_counts.items())),
            "metrics_series": self.metrics_series,
            "slo": self.slo,
            "incidents": [i.to_dict() for i in self.incidents],
            "violations": [v.to_dict() for v in self.violations],
            "segments": [s.to_dict() for s in self.segments],
            "passed": self.passed,
        }
        if with_wall:
            data["wall_s"] = self.wall_s
            data["sim_per_wall"] = self.sim_per_wall
        return data

    @property
    def fingerprint(self) -> str:
        """SHA-256 over the canonical wall-free report JSON."""
        canonical = json.dumps(self.to_dict(with_wall=False),
                               sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class SoakHarness:
    """Drives one soak; see the module docstring for the segment shape.

    Args:
        config: The soak configuration (validated on construction).
        ctx: Optional shared experiment context (the CLI and smoke
            benchmark pass the cached one); ``None`` builds/caches the
            default for ``config.space_kind``.
    """

    def __init__(self, config: SoakConfig,
                 ctx: Optional[ExperimentContext] = None) -> None:
        config.validate()
        self.config = config
        self.ctx = (ctx if ctx is not None else
                    default_context(space_kind=config.space_kind,
                                    seed=config.seed))
        if config.tenants > self.ctx.space.topology.total_cores:
            raise ValueError(
                f"{config.tenants} tenants exceed the node's "
                f"{self.ctx.space.topology.total_cores} cores")
        self._views: Dict[str, Tuple] = {}
        self._canary_estimate = None

    # -- building blocks ------------------------------------------------
    def _view(self, benchmark: str):
        """Cached (profile, priors view, slowest true rate, peak rate)."""
        cached = self._views.get(benchmark)
        if cached is None:
            profile = self.ctx.profile(benchmark)
            view = self.ctx.dataset.leave_one_out(benchmark)
            truth = self.ctx.truth.leave_one_out(benchmark)
            cached = (profile, view, float(truth.true_rates.min()),
                      float(truth.true_rates.max()))
            self._views[benchmark] = cached
        return cached

    def _build_canary(self, vclock: VirtualClock):
        from repro.estimators.registry import create_estimator
        from repro.runtime.controller import RuntimeController
        from repro.runtime.sampling import RandomSampler

        cfg = self.config
        _, view, _, peak = self._view(cfg.canary_benchmark)
        controller = RuntimeController(
            machine=self.ctx.machine(seed_offset=cfg.seed + 1),
            space=self.ctx.space,
            estimator=create_estimator(cfg.canary_estimator),
            prior_rates=view.prior_rates,
            prior_powers=view.prior_powers,
            sampler=RandomSampler(seed=cfg.seed),
            promotion_cooldown_s=cfg.promotion_cooldown_s,
            clock=vclock,
        )
        work = cfg.canary_utilization * peak * cfg.canary_deadline_s
        return controller, work

    def _cluster_burst(self, index: int, seed: int, clock,
                       observability) -> Any:
        """One multi-tenant burst; benchmarks rotate with the segment
        index while tenant *names* are recycled (bounded label
        cardinality — the memory invariant depends on it)."""
        cfg = self.config
        names = self.ctx.benchmark_names
        coordinator = ClusterCoordinator(
            self.ctx.space, cap_watts=cfg.cap_watts, policy="joint",
            sample_count=cfg.sample_count, cap_margin=cfg.cap_margin,
            seed=seed, clock=clock, observability=observability)
        for i in range(cfg.tenants):
            benchmark = names[(i + index) % len(names)]
            profile, view, slowest, _ = self._view(benchmark)
            coordinator.admit(Tenant(
                name=f"t{i:02d}", workload=profile,
                work=cfg.utilization * slowest * cfg.tenant_deadline_s,
                deadline=cfg.tenant_deadline_s,
                estimator="offline",
                prior_rates=view.prior_rates,
                prior_powers=view.prior_powers,
                arrival=float(i % 4)))
        return coordinator.run()

    def _canary_segment(self, canary, work: float, vclock: VirtualClock,
                        violations: List[InvariantViolation]) -> None:
        """The canary's windows for one segment (keep-previous on a
        calibration that lost every sample; any escaping exception is a
        survival violation)."""
        cfg = self.config
        profile, _, _, _ = self._view(cfg.canary_benchmark)
        for _ in range(cfg.canary_windows):
            try:
                try:
                    self._canary_estimate = canary.calibrate(profile)
                except InsufficientSamplesError:
                    if self._canary_estimate is None:
                        continue
                canary.run(profile, work, cfg.canary_deadline_s,
                           self._canary_estimate, adapt=True)
            except Exception as exc:  # noqa: BLE001 — survival check
                violations.append(InvariantViolation(
                    "soak-survives", vclock.now(),
                    f"canary window escaped with "
                    f"{type(exc).__name__}: {exc}"))
                return

    def _resume_probe(self, index: int, directory: pathlib.Path,
                      vclock: VirtualClock) -> List[InvariantViolation]:
        """Crash-resume bit-equality, probed under the live fault plan.

        Two fresh controllers with identical seeds: one runs to
        completion while checkpointing through a real
        :class:`CheckpointManager` (torn-write faults and all); the
        other resumes from whatever landed on disk.  A torn checkpoint
        that *loads* as ``None`` is the protocol working (detected,
        fresh fallback) — only a loaded state that resumes to a
        different report violates the invariant.
        """
        from repro.estimators.registry import create_estimator
        from repro.runtime.controller import RuntimeController
        from repro.runtime.sampling import RandomSampler

        cfg = self.config
        profile, view, _, peak = self._view(cfg.canary_benchmark)
        seed = stable_seed("soak-resume", cfg.seed, index) % (2 ** 31)

        def build():
            return RuntimeController(
                machine=self.ctx.machine(seed_offset=seed + 1),
                space=self.ctx.space,
                estimator=create_estimator("offline"),
                prior_rates=view.prior_rates,
                prior_powers=view.prior_powers,
                sampler=RandomSampler(seed=seed))

        manager = CheckpointManager(
            directory / f"segment-{index}.ckpt", every_quanta=5)
        deadline = cfg.canary_deadline_s
        work = cfg.canary_utilization * peak * deadline
        try:
            first = build()
            estimate = first.calibrate(profile)
            full = first.run(profile, work, deadline, estimate,
                             adapt=True, checkpointer=manager)
        except ReproError:
            return []  # the probe itself was shot down by a fault
        state = manager.load()
        manager.clear()
        if state is None:
            return []  # torn write detected and skipped — correct
        try:
            resumed = build().resume(state, profile)
        except ReproError as exc:
            return [InvariantViolation(
                "crash-resume-bit-equal", vclock.now(),
                f"resume from a CRC-valid checkpoint failed with "
                f"{type(exc).__name__}: {exc}")]
        violation = check_resume_pair(full, resumed, vclock.now())
        return [violation] if violation is not None else []

    # -- the soak loop --------------------------------------------------
    def run(self) -> SoakReport:
        cfg = self.config
        wall_start = time.perf_counter()
        vclock = VirtualClock()
        schedule = soak_plan(cfg.plan, cfg.horizon_s, seed=cfg.seed)
        injector = FaultInjector(schedule.plan, clock=vclock)
        slo = SloTracker(objectives=(
            SloObjective(name="deadline-hit-rate-window",
                         kind="deadline-hit-rate", target=cfg.slo_target,
                         window_s=cfg.slo_window_s),
            SloObjective(name="deadline-hit-rate-total",
                         kind="deadline-hit-rate", target=cfg.slo_target),
        ))
        observability = Observability(metrics=MetricsRegistry(), slo=slo)
        violations: List[InvariantViolation] = []
        segments: List[SegmentRecord] = []
        resume_probes = 0
        early_series: Optional[int] = None
        quarter = max(1, cfg.num_segments // 4)
        with clockmod.use(vclock), use_observability(observability), \
                tempfile.TemporaryDirectory(prefix="repro-soak-") as tmp:
            tmpdir = pathlib.Path(tmp)
            fleet = ShardFleet(num_shards=cfg.fleet_shards,
                               registry_root=tmpdir / "fleet")
            fleet.start()
            client = ShardedServiceClient(
                fleet.addresses, jitter_seed=cfg.seed,
                timeout=5.0, retries=1, backoff=0.05)
            canary, canary_work = self._build_canary(vclock)
            try:
                for index in range(cfg.num_segments):
                    start = cfg.segment_start(index)
                    if vclock.now() < start:
                        vclock.advance_to(start)
                    record = self._segment(index, start, vclock, injector,
                                           canary, canary_work, client,
                                           tmpdir, violations)
                    if (cfg.resume_every
                            and index % cfg.resume_every
                            == cfg.resume_every - 1):
                        with use_faults(injector):
                            violations.extend(self._resume_probe(
                                index, tmpdir, vclock))
                        resume_probes += 1
                    segments.append(record)
                    if index + 1 == quarter:
                        early_series = _series_count(observability.metrics)
                if vclock.now() < cfg.horizon_s:  # the idle tail
                    vclock.advance_to(cfg.horizon_s)
            finally:
                client.close()
                fleet.stop()
            simulated = vclock.now()
            late_series = _series_count(observability.metrics)
            slo_report = _slo_summary(slo)
        if early_series is not None:
            growth = check_memory_growth(
                "metrics series", early_series, late_series,
                _MEMORY_SLACK_SERIES, simulated)
            if growth is not None:
                violations.append(growth)
        violations.extend(self._check_breaker_recovery(
            schedule, segments, simulated))
        ladder = canary._ladder
        incidents = self._incident_reports(schedule, segments)
        met = sum(s.deadlines_met for s in segments)
        total = sum(s.deadlines_total for s in segments)
        probes_ok = sum(s.probes_ok for s in segments)
        probes_shed = sum(s.probes_shed for s in segments)
        probes_failed = sum(s.probes_failed for s in segments)
        served = met + probes_ok
        demanded = total + probes_ok + probes_shed + probes_failed
        return SoakReport(
            plan=cfg.plan, seed=cfg.seed, horizon_s=cfg.horizon_s,
            tenants=cfg.tenants, segments_run=len(segments),
            simulated_s=simulated,
            wall_s=time.perf_counter() - wall_start,
            total_energy_j=sum(s.energy_j for s in segments),
            baseline_energy_j=sum(s.baseline_energy_j for s in segments),
            energy_regret_j=sum(s.energy_j - s.baseline_energy_j
                                for s in segments),
            deadline_hit_rate=(met / total if total else 1.0),
            availability=(served / demanded if demanded else 1.0),
            probes_ok=probes_ok, probes_shed=probes_shed,
            probes_failed=probes_failed, resume_probes=resume_probes,
            canary_demotions=ladder.demotions if ladder else 0,
            canary_promotions=ladder.promotions if ladder else 0,
            canary_final_tier=(ladder.current.name if ladder
                               else cfg.canary_estimator),
            fault_counts=dict(injector.fired_counts),
            metrics_series=late_series,
            slo=slo_report,
            incidents=incidents,
            violations=violations,
            segments=segments)

    def _segment(self, index: int, start: float, vclock: VirtualClock,
                 injector: FaultInjector, canary, canary_work: float,
                 client: ShardedServiceClient, tmpdir: pathlib.Path,
                 violations: List[InvariantViolation]) -> SegmentRecord:
        cfg = self.config
        seed = stable_seed("soak-segment", cfg.seed, index) % (2 ** 31)

        # Health-check loop: readmit shards that went down (the
        # explicit mark_up recovery the router documents).  call_shard
        # bypasses fault routing, so this observes the broker's *real*
        # liveness, not the injected outage.
        for shard in client.router.down:
            try:
                client.call_shard(shard, "ping")
            except (ReproError, OSError):
                continue
            client.router.mark_up(shard)

        # Fault-free baseline twin: same seed and tenants, no clock
        # coupling (it must not advance the soak timeline), null
        # observability (it must not pollute the soak's streams).
        baseline = self._cluster_burst(index, seed, clock=None,
                                       observability=Observability())

        energy = baseline.node_energy
        met = sum(1 for r in baseline.tenants.values() if r.met_deadline)
        total = len(baseline.tenants)
        cap_ok = True
        probes_ok = probes_shed = probes_failed = 0
        with use_faults(injector):
            self._canary_segment(canary, canary_work, vclock, violations)
            try:
                report = self._cluster_burst(index, seed, clock=vclock,
                                             observability=None)
            except Exception as exc:  # noqa: BLE001 — survival check
                violations.append(InvariantViolation(
                    "soak-survives", vclock.now(),
                    f"cluster burst {index} escaped with "
                    f"{type(exc).__name__}: {exc}"))
                report = None
            if report is not None:
                violations.extend(check_cap(
                    cfg.cap_watts, report.epoch_peak_watts, vclock.now()))
                cap_ok = report.cap_respected
                energy = report.node_energy
                met = sum(1 for r in report.tenants.values()
                          if r.met_deadline)
                total = len(report.tenants)
            for probe in range(cfg.fleet_probes):
                key = f"t{probe % cfg.tenants:02d}"
                try:
                    client.ping(echo=probe, tenant_key=key)
                except ReproError:
                    probes_shed += 1
                except Exception as exc:  # noqa: BLE001 — typed check
                    probes_failed += 1
                    violation = check_probe_error(exc, vclock.now())
                    if violation is not None:
                        violations.append(violation)
                else:
                    probes_ok += 1
        ladder = canary._ladder
        tier_index = ladder.tier_index if ladder is not None else 0
        tier = (ladder.current.name if ladder is not None
                else cfg.canary_estimator)
        return SegmentRecord(
            index=index, start_s=start, end_s=vclock.now(),
            energy_j=energy, baseline_energy_j=baseline.node_energy,
            deadlines_met=met, deadlines_total=total, cap_ok=cap_ok,
            probes_ok=probes_ok, probes_shed=probes_shed,
            probes_failed=probes_failed,
            canary_tier_index=tier_index, canary_tier=tier)

    # -- post-processing ------------------------------------------------
    def _check_breaker_recovery(self, schedule: SoakPlan,
                                segments: List[SegmentRecord],
                                simulated: float
                                ) -> List[InvariantViolation]:
        """``breaker-recloses``: after each estimator incident clears,
        the canary must be back at tier 0 within the recovery budget
        (storms that never demoted pass trivially); and the soak must
        *end* at tier 0."""
        cfg = self.config
        out: List[InvariantViolation] = []
        storms = [i for i in schedule.incidents
                  if "estimator-crash" in i.kinds
                  or "em-nonconvergence" in i.kinds]
        for storm in storms:
            degraded = [s for s in segments
                        if storm.overlaps(s.start_s, s.end_s)
                        and s.canary_tier_index > 0]
            if not degraded:
                continue
            deadline = storm.end + cfg.recovery_budget_s
            if deadline > simulated:
                continue  # the soak ended inside the budget; judged
                # by the final-tier check below if it never recovered
            recovered = any(s.canary_tier_index == 0
                            for s in segments
                            if storm.end <= s.start_s <= deadline)
            if not recovered:
                out.append(InvariantViolation(
                    "breaker-recloses", deadline,
                    f"canary still degraded "
                    f"{cfg.recovery_budget_s:.0f}s after {storm.name} "
                    f"cleared"))
        if segments and segments[-1].canary_tier_index > 0:
            out.append(InvariantViolation(
                "breaker-recloses", simulated,
                f"soak ended with the canary degraded to tier "
                f"{segments[-1].canary_tier!r}"))
        return out

    def _incident_reports(self, schedule: SoakPlan,
                          segments: List[SegmentRecord]
                          ) -> List[IncidentReport]:
        out = []
        for incident in schedule.incidents:
            overlapping = [s for s in segments
                           if incident.overlaps(s.start_s, s.end_s)]
            regret = sum(s.energy_j - s.baseline_energy_j
                         for s in overlapping)
            first_healthy = next(
                (s for s in segments
                 if s.start_s >= incident.end and s.healthy), None)
            out.append(IncidentReport(
                name=incident.name, kinds=incident.kinds,
                start_s=incident.start, end_s=incident.end,
                segments=len(overlapping), energy_regret_j=regret,
                mttr_s=(first_healthy.end_s - incident.start
                        if first_healthy is not None else None),
                recovered=first_healthy is not None))
        return out


def _series_count(metrics: MetricsRegistry) -> int:
    dump = metrics.dump()
    return sum(len(dump.get(kind, {}))
               for kind in ("counters", "gauges", "histograms"))


def _slo_summary(slo: SloTracker) -> Dict[str, Any]:
    """The deterministic slice of the SLO report: objective statuses
    (deadline streams are 0/1 in simulated time), event counts, and
    stream point counts — but not raw latency values, which are wall
    measurements."""
    return {
        "objectives": [status.to_dict() for status in slo.status()],
        "events": dict(sorted(slo.events.items())),
        "streams": {name: len(slo.stream(name))
                    for name in sorted(slo._streams)},
    }


def soak_run(config: Optional[SoakConfig] = None,
             ctx: Optional[ExperimentContext] = None,
             **overrides: Any) -> SoakReport:
    """Run one soak; keyword overrides patch the default config."""
    if config is None:
        config = SoakConfig(**overrides)
    elif overrides:
        config = dataclasses.replace(config, **overrides)
    return SoakHarness(config, ctx=ctx).run()
