"""The soak harness's invariant catalog.

A soak is not judged on throughput — it is judged on what *never*
happened over days of simulated chaos.  Each invariant is a named,
machine-checkable property; a violation is a typed record carrying the
simulated time and enough detail to reproduce.  The harness evaluates
them continuously (per segment) and the soak passes only when the
violation list is empty — the property the CI soak-smoke job and the
``repro soak`` exit code both key on.

The catalog (see docs/SOAK.md for the full semantics):

``cap-never-exceeded``
    No cluster epoch's conservative peak draw exceeds the nominal node
    cap — under brown-outs the *effective* cap is lower still, so this
    is the weakest bound every epoch must clear.
``typed-errors-only``
    Every failed fleet request surfaces a :class:`~repro.errors.
    ReproError` subclass (:class:`~repro.errors.ShardUnavailable` and
    friends) — shedding is part of the API, stack traces are not.
``crash-resume-bit-equal``
    A run checkpointed mid-flight and resumed by a fresh controller
    yields the same :class:`~repro.runtime.controller.RunReport`,
    field for field, as the uninterrupted run — even while torn-write
    faults are active (a torn checkpoint must be *detected*, never
    resumed from).
``breaker-recloses``
    After the last estimator incident clears, the canary's degradation
    ladder returns to tier 0 (configured estimator, breaker closed)
    within a bounded recovery budget — degradation is always temporary.
``bounded-memory``
    The metrics registry's series count and the SLO tracker's stream
    count stop growing once every code path has run: day N must not
    hold more series than day 1 plus slack.  (Tenant names and label
    dimensions are recycled across segments precisely so that this
    holds.)
``soak-survives``
    No segment activity — canary window, cluster burst, fleet probe —
    escapes with an unhandled exception.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "INVARIANTS",
    "InvariantViolation",
    "check_cap",
    "check_memory_growth",
    "check_probe_error",
    "check_resume_pair",
]

#: Every invariant the harness evaluates, in report order.
INVARIANTS: Tuple[str, ...] = (
    "cap-never-exceeded",
    "typed-errors-only",
    "crash-resume-bit-equal",
    "breaker-recloses",
    "bounded-memory",
    "soak-survives",
)


@dataclasses.dataclass(frozen=True)
class InvariantViolation:
    """One observed breach of a named invariant.

    Attributes:
        invariant: The catalog name (one of :data:`INVARIANTS`).
        at_s: Simulated time of the observation.
        detail: Human-readable evidence, stable across runs.
    """

    invariant: str
    at_s: float
    detail: str

    def to_dict(self) -> dict:
        return {"invariant": self.invariant, "at_s": self.at_s,
                "detail": self.detail}


def check_cap(cap_watts: float, epoch_peaks: List[float],
              at_s: float) -> List[InvariantViolation]:
    """``cap-never-exceeded`` over one cluster burst's epoch peaks."""
    return [
        InvariantViolation(
            "cap-never-exceeded", at_s,
            f"epoch {index} peaked at {peak:.1f} W over the "
            f"{cap_watts:.0f} W cap")
        for index, peak in enumerate(epoch_peaks)
        if peak > cap_watts * (1.0 + 1e-6)
    ]


def check_probe_error(exc: BaseException,
                      at_s: float) -> Optional[InvariantViolation]:
    """``typed-errors-only`` for one failed fleet request.

    A :class:`ReproError` (shedding, overload, shard loss) is the
    contract working as designed — not a violation.  Anything else
    leaking out of the client is.
    """
    if isinstance(exc, ReproError):
        return None
    return InvariantViolation(
        "typed-errors-only", at_s,
        f"fleet probe escaped with untyped "
        f"{type(exc).__name__}: {exc}")


def check_resume_pair(full, resumed,
                      at_s: float) -> Optional[InvariantViolation]:
    """``crash-resume-bit-equal`` for one (full, resumed) report pair.

    Both are :class:`~repro.runtime.controller.RunReport` dataclasses;
    equality is field-wise and exact (no tolerance) — the checkpoint
    protocol promises bit-equality, not approximation.
    """
    if resumed == full:
        return None
    fields = [f.name for f in dataclasses.fields(full)
              if getattr(full, f.name) != getattr(resumed, f.name)]
    return InvariantViolation(
        "crash-resume-bit-equal", at_s,
        f"resumed report diverged from the uninterrupted run "
        f"in fields {fields}")


def check_memory_growth(label: str, early: int, late: int, slack: int,
                        at_s: float) -> Optional[InvariantViolation]:
    """``bounded-memory``: ``late`` must not exceed ``early`` + slack.

    ``early`` is the cardinality once every code path has run (the end
    of the soak's first quarter); ``late`` is the cardinality at soak
    end.  Growth beyond ``slack`` means something allocates per segment
    — the leak class a long soak exists to catch.
    """
    if late <= early + slack:
        return None
    return InvariantViolation(
        "bounded-memory", at_s,
        f"{label} grew from {early} to {late} "
        f"(slack {slack}) between the first quarter and soak end")
