"""Long-horizon chaos soak testing on the virtual clock.

The soak subsystem answers the durability questions short chaos runs
cannot: over *days* of simulated operation — tenant churn, phased
incidents, shard outages, torn checkpoints — do the system's contracts
ever break?  It has three layers:

* :mod:`repro.soak.plans` — phased fault schedules: a daily rota of
  named incidents (estimator storms, brownouts, network flaps, shard
  outages, storage decay, tenant churn) over always-on background
  noise, positioned on the virtual-clock timeline.
* :mod:`repro.soak.invariants` — the named, machine-checkable
  properties a soak must never violate, and their check functions.
* :mod:`repro.soak.harness` — the driver: segments the horizon,
  runs the canary controller / multi-tenant bursts / fleet probes /
  crash-resume probes under the plan, and reports MTTR, availability,
  and energy regret per incident plus a deterministic fingerprint.

Quickstart::

    from repro.soak import soak_run

    report = soak_run(plan="default", horizon_s=2 * 86400.0)
    assert report.passed, report.violations
    print(report.fingerprint, report.sim_per_wall)

See docs/SOAK.md for the invariant catalog and operational recipes.
"""

from repro.soak.harness import (
    SegmentRecord,
    SoakConfig,
    SoakHarness,
    SoakReport,
    IncidentReport,
    soak_run,
)
from repro.soak.invariants import INVARIANTS, InvariantViolation
from repro.soak.plans import (
    DAY_S,
    Incident,
    SoakPlan,
    soak_plan,
    soak_plan_names,
)

__all__ = [
    "DAY_S",
    "INVARIANTS",
    "Incident",
    "IncidentReport",
    "InvariantViolation",
    "SegmentRecord",
    "SoakConfig",
    "SoakHarness",
    "SoakPlan",
    "SoakReport",
    "soak_plan",
    "soak_plan_names",
    "soak_run",
]
