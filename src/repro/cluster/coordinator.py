"""The node coordinator: admit, calibrate, allocate, execute, adapt.

:class:`ClusterCoordinator` runs N tenant applications concurrently on
one simulated node under a global power cap.  Its epoch loop composes
the layers the single-application runtime already provides:

1. **Admit / depart** — tenants join at their arrival time and leave at
   their deadline (or on request).  Every membership change
   re-partitions the node (:class:`~repro.cluster.partition.
   PartitionedMachine`) and re-calibrates the survivors, whose share of
   the floor power and whose contention environment both changed.
2. **Calibrate** — each tenant's curve is estimated over its partition
   by any registered estimator (``"leo"``, ``"online"``, ``"offline"``,
   ``"knn"``, or a :class:`~repro.service.client.RemoteEstimator`
   instance leaning on the shared service's warm priors).  Calibration
   is staggered — one tenant samples while the others idle — so it is
   the one activity *outside* the per-epoch cap guarantee; execution
   epochs are guarded by construction (below).
3. **Allocate** — the allocator divides the cap into per-tenant
   instantaneous budgets from the stacked learned curves.  The
   coordinator enforces a budget by *filtering* the tenant's
   configuration space to configurations whose estimated power fits,
   so every configuration a controller can apply — including during
   inline re-calibration — keeps the summed estimated draw under the
   cap.  Allocations are sticky: they are recomputed only when a
   tenant arrives or departs, a phase change fires, or a tenant's
   demand drifts beyond its granted rate.
4. **Execute** — each tenant runs one epoch of its deadline through an
   unmodified :class:`~repro.runtime.controller.RuntimeController`
   (or a race-to-idle loop under the ``"race"`` policy), with measured
   feedback and, under the ``"joint"`` policy, phase detection and
   inline re-calibration within the budget-filtered space.

Everything is observable: nested ``cluster.run`` → ``cluster.epoch`` →
``cluster.calibrate`` / ``cluster.allocate`` / ``cluster.tenant_epoch``
spans, and ``cluster_*`` counters/gauges/histograms through
:mod:`repro.obs` (see docs/CLUSTER.md for the reference).
"""

from __future__ import annotations

import contextlib
import dataclasses
import logging
import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.allocator import (
    Allocation,
    PowerCapAllocator,
    StaticAllocator,
    TenantAllocation,
    TenantDemand,
)
from repro.cluster.partition import (
    DEFAULT_CONTENTION_KAPPA,
    PartitionedMachine,
    TenantMachine,
    TenantSpace,
)
from repro.errors import InsufficientSamplesError, SensorReadError
from repro.estimators.base import Estimator
from repro.estimators.registry import create_estimator
from repro.experiments.parallel import cell_seed
from repro.faults.context import get_injector
from repro.obs import Observability, get_observability, labeled
from repro.obs import use as use_observability
from repro.runtime.resilience import RECOVERABLE_EXCEPTIONS
from repro.platform.config_space import ConfigurationSpace
from repro.platform.topology import Topology
from repro.runtime.controller import RuntimeController, TradeoffEstimate
from repro.runtime.phase_detector import PhaseDetector
from repro.runtime.sampling import RandomSampler
from repro.workloads.phases import PhasedWorkload
from repro.workloads.profile import ApplicationProfile

logger = logging.getLogger(__name__)

#: Allocation policies the coordinator implements.
POLICIES = ("joint", "static", "race")

#: Relative demand drift that triggers re-allocation under sticky budgets.
_DRIFT_TOLERANCE = 0.02


@dataclasses.dataclass
class Tenant:
    """One application requesting admission to the shared node.

    Attributes:
        name: Unique tenant identifier (also its partition name).
        workload: What it runs — a fixed :class:`ApplicationProfile` or
            a :class:`PhasedWorkload` whose behaviour changes over time.
        work: Heartbeats to complete between arrival and deadline.
        deadline: Seconds after arrival by which the work is due — the
            tenant's performance constraint.
        cores: Physical cores requested; ``None`` shares the cores left
            over after explicit requests equally.
        threads: Hardware thread contexts requested; ``None`` takes
            both hyperthread contexts of every owned core.
        estimator: Registry name (e.g. ``"leo"``) or a ready
            :class:`~repro.estimators.base.Estimator` instance (e.g. a
            ``RemoteEstimator`` bound to the shared service).
        prior_rates: Optional ``(M-1, n)`` offline rate table over the
            *node-wide* space; sliced to the tenant's partition.
        prior_powers: Optional matching power table.
        arrival: Node time at which the tenant arrives (0 = at start).
    """

    name: str
    workload: Union[ApplicationProfile, PhasedWorkload]
    work: float
    deadline: float
    cores: Optional[int] = None
    threads: Optional[int] = None
    estimator: Union[str, Estimator] = "leo"
    prior_rates: Optional[np.ndarray] = None
    prior_powers: Optional[np.ndarray] = None
    arrival: float = 0.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"tenant name must be a non-empty string, "
                             f"got {self.name!r}")
        if self.work <= 0:
            raise ValueError(f"tenant {self.name!r}: work must be positive, "
                             f"got {self.work}")
        if self.deadline <= 0:
            raise ValueError(f"tenant {self.name!r}: deadline must be "
                             f"positive, got {self.deadline}")
        if self.cores is not None and self.cores < 1:
            raise ValueError(f"tenant {self.name!r}: cores must be >= 1 or "
                             f"None, got {self.cores}")
        if self.arrival < 0:
            raise ValueError(f"tenant {self.name!r}: arrival must be >= 0, "
                             f"got {self.arrival}")

    def profile_at(self, elapsed: float) -> ApplicationProfile:
        """The behaviour ``elapsed`` seconds after this tenant arrived."""
        if isinstance(self.workload, ApplicationProfile):
            return self.workload
        boundary = 0.0
        for phase in self.workload.phases:
            boundary += phase.duration
            if elapsed < boundary:
                return phase.profile
        return self.workload.phases[-1].profile


@dataclasses.dataclass
class TenantReport:
    """Outcome of one tenant's stay on the node.

    Attributes:
        name: Tenant identifier.
        energy: Joules charged to the tenant's view (its fair share of
            shared draws plus everything it caused), calibration
            included.
        work_done: Heartbeats completed by departure.
        work_target: Heartbeats demanded.
        deadline: The tenant's deadline (seconds after arrival).
        met_deadline: Whether the demand was met by the deadline
            (within the runtime's 1 % measurement tolerance).
        reestimations: Phase-change re-calibrations fired inline.
        calibrations: Total calibrations (initial + membership-driven +
            inline).
        epochs: Execution epochs the tenant participated in.
        budget_trace: Power budget granted in each epoch (W).
    """

    name: str
    energy: float
    work_done: float
    work_target: float
    deadline: float
    met_deadline: bool
    reestimations: int
    calibrations: int
    epochs: int
    budget_trace: List[float]


@dataclasses.dataclass
class ClusterReport:
    """Outcome of one coordinated run.

    Attributes:
        tenants: Per-tenant reports, in admission order.
        cap_watts: The global power cap in force.
        policy: Allocation policy used.
        epochs: Execution epochs run.
        epoch_peak_watts: Conservative node peak power of each epoch —
            the sum over tenants of each tenant's worst quantum, an
            upper bound on the true instantaneous peak.
        reallocations: Times the allocator was (re-)invoked.
        node_energy: Total node energy (J) across live and departed
            tenants, calibration included.
    """

    tenants: Dict[str, TenantReport]
    cap_watts: float
    policy: str
    epochs: int
    epoch_peak_watts: List[float]
    reallocations: int
    node_energy: float

    @property
    def cap_respected(self) -> bool:
        """Whether every execution epoch stayed under the cap."""
        return all(p <= self.cap_watts * (1.0 + 1e-6)
                   for p in self.epoch_peak_watts)

    @property
    def all_deadlines_met(self) -> bool:
        """Whether every tenant met its performance constraint."""
        return all(t.met_deadline for t in self.tenants.values())

    @property
    def total_energy(self) -> float:
        """Alias for :attr:`node_energy` (the experiment's objective)."""
        return self.node_energy


@dataclasses.dataclass
class _TenantState:
    """Coordinator-internal bookkeeping for one live tenant."""

    tenant: Tenant
    estimator_obj: Estimator
    remaining_work: float
    machine: Optional[TenantMachine] = None
    tspace: Optional[TenantSpace] = None
    admit_clock: Optional[float] = None
    estimate: Optional[TradeoffEstimate] = None
    detector: PhaseDetector = dataclasses.field(default_factory=PhaseDetector)
    prior_rates_t: Optional[np.ndarray] = None
    prior_powers_t: Optional[np.ndarray] = None
    budget_trace: List[float] = dataclasses.field(default_factory=list)
    reestimations: int = 0
    calibrations: int = 0
    epochs: int = 0
    phase_fired: bool = False

    @property
    def elapsed(self) -> float:
        return self.machine.clock - self.admit_clock

    @property
    def remaining_time(self) -> float:
        return self.tenant.deadline - self.elapsed


class ClusterCoordinator:
    """Co-schedules tenants on one node under a global power cap.

    Args:
        space: Node-wide configuration space tenants choose from.
        cap_watts: Global instantaneous power cap (W) for the node.
        policy: ``"joint"`` (water-filled budgets, phase adaptation),
            ``"static"`` (equal budgets, no adaptation — the
            per-app-static-cap baseline), or ``"race"`` (equal budgets,
            race-to-idle within each — the heuristic baseline).
        topology: Node topology; defaults to the space's.
        epoch_fraction: Epoch length as a fraction of the shortest live
            tenant's deadline.
        sample_count: Configurations measured per calibration.
        sample_window: Seconds per calibration sample.
        quantum_fraction: Controller quantum as a fraction of its epoch.
        cap_margin: Fraction of the cap withheld from the allocator as
            headroom for estimation error and measurement noise.
        contention_kappa: Shared-memory contention coupling
            (see :mod:`repro.cluster.partition`).
        seed: Base seed; all machine noise and sampling streams derive
            from it stably, so runs are reproducible.
        observability: Optional tracer/metrics bundle installed for the
            whole run; ``None`` inherits the ambient context.
    """

    def __init__(self, space: ConfigurationSpace, cap_watts: float,
                 policy: str = "joint",
                 topology: Optional[Topology] = None,
                 epoch_fraction: float = 0.1,
                 sample_count: int = 12,
                 sample_window: float = 0.5,
                 quantum_fraction: float = 0.05,
                 cap_margin: float = 0.05,
                 contention_kappa: float = DEFAULT_CONTENTION_KAPPA,
                 seed: int = 0,
                 observability: Optional[Observability] = None,
                 clock=None) -> None:
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, "
                             f"got {policy!r}")
        if cap_watts <= 0:
            raise ValueError(f"cap_watts must be positive, got {cap_watts}")
        if not 0 < epoch_fraction <= 1:
            raise ValueError(f"epoch_fraction must be in (0, 1], "
                             f"got {epoch_fraction}")
        self.space = space
        self.topology = topology if topology is not None else space.topology
        self.cap_watts = float(cap_watts)
        self.policy = policy
        self.epoch_fraction = float(epoch_fraction)
        self.sample_count = int(sample_count)
        self.sample_window = float(sample_window)
        self.quantum_fraction = float(quantum_fraction)
        self.contention_kappa = float(contention_kappa)
        self.seed = int(seed)
        self.observability = observability
        #: Optional :class:`~repro.clock.Clock`.  A *virtual* clock is
        #: advanced in lockstep with the node's simulated clock at every
        #: epoch boundary, and fault positions are reported in *its*
        #: timeline — so a soak harness phasing faults across simulated
        #: days sees cluster epochs land inside the right windows.
        #: ``None`` (the default) changes nothing.
        self.clock = clock
        allocator_cls = (PowerCapAllocator if policy == "joint"
                         else StaticAllocator)
        self.allocator = allocator_cls(cap_watts, margin=cap_margin)
        self.cap_margin = float(cap_margin)
        self._allocator_cls = allocator_cls
        self._cap_scale = 1.0
        self.node: Optional[PartitionedMachine] = None
        self._pending: List[Tenant] = []
        self._departures: set = set()
        self._states: Dict[str, _TenantState] = {}
        self._estimators: Dict[str, Estimator] = {}

    # ------------------------------------------------------------------
    # Membership API
    # ------------------------------------------------------------------
    def admit(self, tenant: Tenant) -> None:
        """Register a tenant; it joins at ``tenant.arrival`` node time."""
        known = set(self._states) | {t.name for t in self._pending}
        if tenant.name in known:
            raise ValueError(f"tenant {tenant.name!r} already admitted")
        estimator = (tenant.estimator
                     if isinstance(tenant.estimator, Estimator)
                     else create_estimator(tenant.estimator))
        self._pending.append(tenant)
        self._estimators[tenant.name] = estimator

    def depart(self, name: str) -> None:
        """Request a tenant's removal at the next epoch boundary."""
        if name not in self._states and all(t.name != name
                                            for t in self._pending):
            raise KeyError(f"unknown tenant {name!r}")
        self._pending = [t for t in self._pending if t.name != name]
        if name in self._states:
            self._departures.add(name)

    # ------------------------------------------------------------------
    # The epoch loop
    # ------------------------------------------------------------------
    def run(self) -> ClusterReport:
        """Drive all admitted tenants to their deadlines; see module doc."""
        if not self._pending and not self._states:
            raise ValueError("no tenants admitted; call admit() first")
        scope = (use_observability(self.observability)
                 if self.observability is not None
                 else contextlib.nullcontext())
        with scope:
            return self._run()

    def _run(self) -> ClusterReport:
        ob = get_observability()
        injector = get_injector()
        reports: Dict[str, TenantReport] = {}
        epoch_peaks: List[float] = []
        reallocations = 0
        allocation: Optional[Allocation] = None
        realloc_next = True
        epoch = 0
        now = 0.0
        max_epochs = self._max_epochs()
        # Virtual-time coupling: node-local epoch time ``now`` maps onto
        # the attached virtual clock's timeline at a fixed origin, so
        # fault positions and clock advancement agree to the epoch.
        vclock = (self.clock if self.clock is not None
                  and self.clock.is_virtual else None)
        v_origin = vclock.now() if vclock is not None else 0.0

        def fault_pos(local: float) -> float:
            return v_origin + local if vclock is not None else local

        def sync_vclock(local: float) -> None:
            if vclock is not None:
                vclock.advance_to(v_origin + local)
        with ob.tracer.span("cluster.run", policy=self.policy,
                            cap_watts=self.cap_watts) as run_span:
            while True:
                # Fault-injection hook: a tenant crashes at an epoch
                # boundary — it departs like any other leaver (its
                # report records the incomplete work) and the node
                # repartitions around it.
                for spec in injector.fire("cluster.tenant",
                                          clock=fault_pos(now)):
                    if spec.kind != "tenant-crash" or not self._states:
                        continue
                    victim = (spec.target
                              if spec.target in self._states
                              else sorted(self._states)[0])
                    self._departures.add(victim)
                    ob.metrics.inc("cluster_tenant_crashes_total")
                    logger.warning("tenant crashed",
                                   extra={"fields": {"tenant": victim}})
                changed = self._apply_membership(now, reports, ob)
                if not self._states:
                    if self._pending:
                        now = min(t.arrival for t in self._pending)
                        sync_vclock(now)
                        continue
                    break
                if changed:
                    for state in self._states.values():
                        self._calibrate(state, ob)
                    self.node.sync_clocks()
                    allocation = None
                    realloc_next = True
                now = self.node.node_clock
                sync_vclock(now)

                # Fault-injection hook: a cap transient (facility
                # brown-out) scales the node cap for a window.  Entering
                # or leaving the window rebuilds the allocator at the
                # effective cap and forces a re-allocation.
                scale = 1.0
                for spec in injector.active("cluster.cap",
                                            clock=fault_pos(now)):
                    scale = min(scale, max(spec.magnitude, 0.05))
                if scale != self._cap_scale:
                    self._cap_scale = scale
                    self.allocator = self._allocator_cls(
                        self.cap_watts * scale, margin=self.cap_margin)
                    realloc_next = True
                    if scale < 1.0:
                        ob.metrics.inc("cluster_cap_transients_total")
                    logger.warning(
                        "power cap scaled",
                        extra={"fields": {"scale": scale,
                                          "cap_watts":
                                          self.cap_watts * scale}})

                demands = [self._demand(state)
                           for state in self._states.values()]
                if allocation is not None and not realloc_next:
                    realloc_next = self._demand_drifted(allocation, demands)
                if realloc_next or allocation is None:
                    with ob.tracer.span("cluster.allocate",
                                        tenants=len(demands)) as aspan:
                        allocation = self.allocator.allocate(demands)
                        aspan.set_attribute("mode", allocation.mode)
                        aspan.set_attribute("total_budget_watts",
                                            allocation.total_budget_watts)
                    reallocations += 1
                    ob.metrics.inc("cluster_reallocations_total")
                    realloc_next = False
                    if not allocation.all_feasible:
                        logger.info(
                            "allocation degraded",
                            extra={"fields": {
                                "mode": allocation.mode,
                                "infeasible": [t.name for t in
                                               allocation.tenants
                                               if not t.feasible]}})

                epoch += 1
                step = self._epoch_step()
                with ob.tracer.span("cluster.epoch", index=epoch,
                                    step=step) as espan:
                    # Contention depends on what everyone runs this
                    # epoch; refresh before any tenant executes so the
                    # epoch is order-independent.
                    for name, state in self._states.items():
                        self.node.set_profile(
                            name, state.tenant.profile_at(state.elapsed))
                    peak = 0.0
                    for name, state in self._states.items():
                        try:
                            peak += self._run_tenant_epoch(
                                state, allocation.tenant(name), step, ob)
                        except RECOVERABLE_EXCEPTIONS as exc:
                            # The tenant's epoch failed mid-flight: it
                            # forfeits this epoch (sync_clocks levels
                            # its clock) but stays admitted with its
                            # previous estimate, so one faulty epoch
                            # never takes down the node.
                            peak += state.machine.idle_power()
                            ob.metrics.inc("cluster_epoch_faults_total")
                            logger.warning(
                                "tenant epoch fault; idling tenant",
                                extra={"fields": {
                                    "tenant": name,
                                    "error": f"{type(exc).__name__}: "
                                             f"{exc}"}})
                    self.node.sync_clocks()
                    espan.set_attribute("peak_watts", peak)
                epoch_peaks.append(peak)
                ob.metrics.inc("cluster_epochs_total")
                ob.metrics.set_gauge("cluster_live_tenants",
                                     len(self._states))
                ob.metrics.set_gauge("cluster_power_budget_watts",
                                     allocation.total_budget_watts)
                ob.metrics.set_gauge("cluster_power_peak_watts", peak)
                ob.metrics.observe("cluster_epoch_peak_watts", peak)
                if peak > self.cap_watts * (1.0 + 1e-6):
                    ob.metrics.inc("cluster_cap_violations_total")
                    ob.slo.record_event("cap-violation")
                    logger.warning("power cap exceeded",
                                   extra={"fields": {"epoch": epoch,
                                                     "peak_watts": peak}})

                if any(state.phase_fired
                       for state in self._states.values()):
                    realloc_next = True
                    for state in self._states.values():
                        state.phase_fired = False

                now = self.node.node_clock
                sync_vclock(now)
                for name, state in self._states.items():
                    if state.remaining_time <= 1e-6 * state.tenant.deadline:
                        self._departures.add(name)
                if epoch > max_epochs:
                    raise RuntimeError(
                        f"cluster run exceeded {max_epochs} epochs without "
                        f"retiring all tenants (epoch_fraction too small, "
                        f"or a deadline is unreachable)")
            run_span.set_attribute("epochs", epoch)
            run_span.set_attribute("reallocations", reallocations)
        return ClusterReport(
            tenants=reports, cap_watts=self.cap_watts, policy=self.policy,
            epochs=epoch, epoch_peak_watts=epoch_peaks,
            reallocations=reallocations,
            node_energy=self.node.node_energy if self.node else 0.0)

    def _max_epochs(self) -> int:
        horizon = sum(t.arrival + t.deadline for t in self._pending) + sum(
            s.tenant.deadline for s in self._states.values())
        shortest = min([t.deadline for t in self._pending]
                       + [s.tenant.deadline for s in self._states.values()])
        return 16 + 4 * int(math.ceil(
            horizon / max(self.epoch_fraction * shortest, 1e-9)))

    # ------------------------------------------------------------------
    # Membership mechanics
    # ------------------------------------------------------------------
    def _apply_membership(self, now: float,
                          reports: Dict[str, TenantReport],
                          ob) -> bool:
        changed = False
        for name in sorted(self._departures):
            state = self._states.pop(name, None)
            if state is not None:
                reports[name] = self._finalize(state, ob)
                changed = True
                ob.metrics.inc("cluster_departures_total")
        self._departures.clear()
        due = [t for t in self._pending if t.arrival <= now + 1e-9]
        for tenant in due:
            self._pending.remove(tenant)
            self._states[tenant.name] = _TenantState(
                tenant=tenant,
                estimator_obj=self._estimators[tenant.name],
                remaining_work=float(tenant.work))
            changed = True
            ob.metrics.inc("cluster_admissions_total")
        if not changed:
            return False

        if self.node is None:
            self.node = PartitionedMachine(
                self.space, [], topology=self.topology, seed=self.seed,
                contention_kappa=self.contention_kappa)
        requests = self._partition_requests()
        with ob.tracer.span("cluster.repartition",
                            tenants=len(requests)):
            self.node.repartition(requests, clock=now)
        for name, state in self._states.items():
            state.machine = self.node.view(name)
            state.tspace = self.node.space_for(name)
            if state.admit_clock is None:
                state.admit_clock = state.machine.clock
            tenant = state.tenant
            state.prior_rates_t = (state.tspace.slice_table(tenant.prior_rates)
                                   if tenant.prior_rates is not None
                                   else None)
            state.prior_powers_t = (state.tspace.slice_table(tenant.prior_powers)
                                    if tenant.prior_powers is not None
                                    else None)
            # The partition, floor share, and co-runners all changed:
            # the old estimate no longer describes this view.
            state.estimate = None
            self.node.set_profile(name, tenant.profile_at(
                max(state.elapsed, 0.0)))
        return True

    def _partition_requests(self) -> List[Tuple[str, int, int]]:
        explicit = sum(s.tenant.cores for s in self._states.values()
                       if s.tenant.cores is not None)
        autos = [s.tenant.name for s in self._states.values()
                 if s.tenant.cores is None]
        leftover = self.topology.total_cores - explicit
        if autos and leftover < len(autos):
            raise ValueError(
                f"cannot fit tenants: {explicit} cores claimed explicitly "
                f"leave {leftover} for {len(autos)} unsized tenants")
        share, spare = (divmod(leftover, len(autos)) if autos else (0, 0))
        requests = []
        auto_index = 0
        for state in self._states.values():
            tenant = state.tenant
            if tenant.cores is not None:
                cores = tenant.cores
            else:
                cores = share + (1 if auto_index < spare else 0)
                auto_index += 1
            threads = (tenant.threads if tenant.threads is not None
                       else self.topology.threads_per_core * cores)
            requests.append((tenant.name, cores, threads))
        return requests

    def _finalize(self, state: _TenantState, ob=None) -> TenantReport:
        tenant = state.tenant
        work_done = tenant.work - state.remaining_work
        met = work_done >= 0.99 * tenant.work
        if ob is None:
            ob = get_observability()
        # Per-tenant label dimension on the outcome counters: a
        # fleet-wide merge can still answer "which tenant burned the
        # deadline budget" (parse_labeled recovers the tenant name).
        ob.metrics.inc(labeled("cluster_deadline_met_total"
                               if met else "cluster_deadline_missed_total",
                               tenant=tenant.name))
        ob.metrics.inc(labeled("cluster_tenant_energy_joules_total",
                               tenant=tenant.name),
                       state.machine.total_energy if state.machine else 0.0)
        ob.slo.record_deadline(met)
        return TenantReport(
            name=tenant.name,
            energy=state.machine.total_energy if state.machine else 0.0,
            work_done=work_done, work_target=tenant.work,
            deadline=tenant.deadline,
            met_deadline=met,
            reestimations=state.reestimations,
            calibrations=state.calibrations,
            epochs=state.epochs,
            budget_trace=list(state.budget_trace))

    # ------------------------------------------------------------------
    # Calibration and demands
    # ------------------------------------------------------------------
    def _calibrate(self, state: _TenantState, ob,
                   _retry: bool = True) -> None:
        tenant = state.tenant
        profile = tenant.profile_at(max(state.elapsed, 0.0))
        state.calibrations += 1
        sampler = RandomSampler(seed=cell_seed(
            self.seed, tenant.name, "calibrate", state.calibrations))
        controller = RuntimeController(
            machine=state.machine, space=state.tspace.space,
            estimator=state.estimator_obj,
            prior_rates=state.prior_rates_t,
            prior_powers=state.prior_powers_t,
            sampler=sampler,
            sample_count=min(self.sample_count, len(state.tspace)),
            sample_window=self.sample_window,
            quantum_fraction=self.quantum_fraction)
        with ob.tracer.span("cluster.calibrate", tenant=tenant.name,
                            estimator=state.estimator_obj.name):
            try:
                estimate = controller.calibrate(profile)
            except InsufficientSamplesError as exc:
                # Estimator degradation is handled inside the
                # controller's ladder; reaching here means even the
                # samples were lost (e.g. total sensor dropout).  Keep
                # a previous estimate when there is one, retry once
                # with a fresh sampler stream otherwise.
                ob.metrics.inc("cluster_calibration_faults_total")
                logger.warning(
                    "tenant calibration failed",
                    extra={"fields": {"tenant": tenant.name,
                                      "error": str(exc)}})
                if state.estimate is not None:
                    return
                if _retry:
                    self._calibrate(state, ob, _retry=False)
                    return
                raise
        state.estimate = estimate
        # The application progresses while being sampled.
        state.remaining_work = max(
            state.remaining_work - estimate.sampling_heartbeats, 0.0)
        ob.metrics.inc("cluster_calibrations_total")

    def _demand(self, state: _TenantState) -> TenantDemand:
        remaining_time = max(state.remaining_time, 1e-9)
        required = max(state.remaining_work, 0.0) / remaining_time
        return TenantDemand(
            name=state.tenant.name,
            rates=state.estimate.rates, powers=state.estimate.powers,
            idle_power=state.machine.idle_power(),
            required_rate=required)

    @staticmethod
    def _demand_drifted(allocation: Allocation,
                        demands: Sequence[TenantDemand]) -> bool:
        for demand in demands:
            granted = allocation.tenant(demand.name)
            if (demand.required_rate
                    > granted.target_rate * (1.0 + _DRIFT_TOLERANCE)):
                return True
        return False

    def _epoch_step(self) -> float:
        base = self.epoch_fraction * min(
            s.tenant.deadline for s in self._states.values())
        remaining = [s.remaining_time for s in self._states.values()
                     if s.remaining_time > 1e-9]
        step = min([base] + remaining)
        now = self.node.node_clock
        for tenant in self._pending:
            if tenant.arrival > now + 1e-9:
                step = min(step, tenant.arrival - now)
        return max(step, 1e-6)

    # ------------------------------------------------------------------
    # One tenant, one epoch
    # ------------------------------------------------------------------
    def _affordable_view(self, state: _TenantState, budget: float):
        """The budget-filtered space/estimate/priors for one epoch.

        Filtering is the cap-enforcement mechanism: a controller over
        the filtered space can only apply configurations whose
        estimated power fits the budget.
        """
        estimate = state.estimate
        mask = estimate.powers <= budget * (1.0 + 1e-9)
        if not mask.any():
            # Degenerate budget (proportional mode can pinch hard):
            # keep the single cheapest configuration runnable.
            mask = np.zeros(estimate.powers.size, dtype=bool)
            mask[int(np.argmin(estimate.powers))] = True
        idx = np.flatnonzero(mask)
        fspace = state.tspace.space.subspace([int(i) for i in idx])
        festimate = TradeoffEstimate(
            rates=estimate.rates[idx], powers=estimate.powers[idx],
            estimator_name=estimate.estimator_name)
        prior_r = (state.prior_rates_t[:, idx]
                   if state.prior_rates_t is not None else None)
        prior_p = (state.prior_powers_t[:, idx]
                   if state.prior_powers_t is not None else None)
        return fspace, festimate, prior_r, prior_p, idx

    def _run_tenant_epoch(self, state: _TenantState,
                          granted: TenantAllocation, step: float,
                          ob) -> float:
        """Run one tenant for one epoch; returns its peak draw (W)."""
        budget = granted.budget_watts
        state.budget_trace.append(budget)
        state.epochs += 1
        ob.metrics.inc(labeled("cluster_tenant_epochs_total",
                               tenant=state.tenant.name))
        ob.metrics.observe(labeled("cluster_tenant_budget_watts",
                                   tenant=state.tenant.name), budget)
        machine = state.machine
        if state.remaining_work <= 1e-9 * max(state.tenant.work, 1.0):
            machine.idle_for(step)
            return machine.idle_power()
        remaining_time = max(state.remaining_time, 1e-9)
        profile = state.tenant.profile_at(state.elapsed)
        work = state.remaining_work * min(step / remaining_time, 1.0)
        if remaining_time <= step * (1.0 + 1e-9):
            work = state.remaining_work

        fspace, festimate, prior_r, prior_p, idx = self._affordable_view(
            state, budget)
        with ob.tracer.span("cluster.tenant_epoch",
                            tenant=state.tenant.name,
                            budget_watts=budget, work=work,
                            step=step) as tspan:
            if self.policy == "race":
                peak, work_done = self._race_epoch(
                    machine, fspace, festimate, profile, work, step)
                state.remaining_work = max(
                    state.remaining_work - work_done, 0.0)
                tspan.set_attribute("work_done", work_done)
                return peak
            controller = RuntimeController(
                machine=machine, space=fspace,
                estimator=state.estimator_obj,
                prior_rates=prior_r, prior_powers=prior_p,
                sampler=RandomSampler(seed=cell_seed(
                    self.seed, state.tenant.name, "inline", state.epochs)),
                sample_count=min(self.sample_count, len(fspace)),
                sample_window=self.sample_window,
                quantum_fraction=self.quantum_fraction)
            report = controller.run(
                profile, work, step, festimate,
                adapt=(self.policy == "joint"), detector=state.detector)
            tspan.set_attribute("work_done", report.work_done)
        state.remaining_work = max(
            state.remaining_work - report.work_done, 0.0)
        if report.reestimations:
            state.reestimations += report.reestimations
            state.calibrations += report.reestimations
            state.phase_fired = True
            # Fold the inline re-calibration (done on the filtered
            # space) back into the partition-wide estimate.
            last = controller.last_estimate
            rates = state.estimate.rates.copy()
            powers = state.estimate.powers.copy()
            rates[idx] = last.rates
            powers[idx] = last.powers
            state.estimate = TradeoffEstimate(
                rates=rates, powers=powers,
                estimator_name=state.estimate.estimator_name)
        if report.power_trace:
            return max(report.power_trace)
        return machine.idle_power()

    def _race_epoch(self, machine: TenantMachine,
                    fspace: ConfigurationSpace,
                    festimate: TradeoffEstimate,
                    profile: ApplicationProfile, work: float,
                    step: float) -> Tuple[float, float]:
        """Race-to-idle within the budget: fastest config, then idle."""
        machine.load(profile)
        fastest = int(np.argmax(festimate.rates))
        config = fspace[fastest]
        believed_power = float(festimate.powers[fastest])
        quantum = max(step * self.quantum_fraction, 1e-6)
        time_left = step
        work_left = work
        peak = 0.0
        while time_left > 1e-9 * step:
            slice_s = min(quantum, time_left)
            if work_left <= 1e-9 * max(work, 1.0):
                machine.idle_for(slice_s)
                peak = max(peak, machine.idle_power())
            else:
                machine.apply(config)
                try:
                    measurement = machine.run_for(slice_s)
                except SensorReadError:
                    # Observation lost: credit no work, account the
                    # believed draw so the epoch peak stays honest.
                    peak = max(peak, believed_power)
                else:
                    work_left -= measurement.heartbeats
                    peak = max(peak, measurement.system_power)
            time_left -= slice_s
        return peak, work - max(work_left, 0.0)
