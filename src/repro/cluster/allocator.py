"""Dividing a global power cap across tenants' learned tradeoff curves.

Each tenant arrives with an estimated (rate, power) curve — its
:class:`~repro.runtime.controller.TradeoffEstimate` restricted to its
partition — and a required heartbeat rate (remaining work over
remaining time).  The allocator solves

    minimize    sum_i  E_i(b_i)
    subject to  sum_i  b_i  <=  cap * (1 - margin)
                b_i  >=  b_min_i

where ``b_i`` is tenant *i*'s **instantaneous power budget** and
``E_i(b)`` is the minimal average power at which tenant *i* can sustain
its required rate using only configurations whose estimated power is at
most ``b`` — evaluated by :class:`~repro.optimize.lp.EnergyMinimizer`
as the inner oracle (the paper's Eq. 1 LP per tenant).  Budgets bound
*peak* draw, not average draw: the coordinator enforces them by
filtering each tenant's configuration space to configurations under
budget, so any configuration a tenant's controller applies keeps the
node under the cap by construction.

``E_i`` is a piecewise-constant, non-increasing function of ``b`` whose
breakpoints are the Pareto-optimal configurations' power levels, so the
solver is a greedy water-filling: start every tenant at its minimal
feasible budget and repeatedly grant the budget raise with the best
energy-saved-per-watt ratio until the headroom is spent.  The result is
additionally compared against the equal-split allocation and the better
of the two is returned, so the joint allocation is never worse than the
static baseline *under the same estimates*.

Degradation ladder (each rung is observable in the returned
:class:`Allocation`):

1. **joint** — every tenant's requirement fits; budgets water-filled.
2. **clamped tenant** — a tenant's requirement exceeds its own curve's
   capacity (the inner oracle raises
   :class:`~repro.optimize.lp.InfeasibleConstraintError`); its target
   is clamped to the attached ``max_rate`` and allocation proceeds.
3. **proportional** — the minimal feasible budgets alone exceed the
   usable cap; every tenant gets a proportional share of the usable
   cap instead, and best-effort targets are re-derived from what each
   share affords.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.optimize.lp import EnergyMinimizer, InfeasibleConstraintError
from repro.optimize.pareto import pareto_optimal_mask

#: Horizon (s) over which the inner oracle's energy is read as average
#: watts; the LP is scale-invariant in the horizon, so any value works.
_HORIZON = 1.0

_REL_TOL = 1e-9


@dataclasses.dataclass(frozen=True)
class TenantDemand:
    """One tenant's estimated curve and rate requirement.

    Attributes:
        name: Tenant identifier (stable across epochs).
        rates: Estimated heartbeat rates over the tenant's space.
        powers: Estimated powers (W) over the tenant's space.
        idle_power: The tenant view's idle draw (its fair share of the
            node idle), the rate-0 anchor of its frontier.
        required_rate: Heartbeats/s the tenant needs to meet its
            deadline (remaining work over remaining time).
    """

    name: str
    rates: np.ndarray
    powers: np.ndarray
    idle_power: float
    required_rate: float

    def __post_init__(self) -> None:
        rates = np.asarray(self.rates, dtype=float)
        powers = np.asarray(self.powers, dtype=float)
        object.__setattr__(self, "rates", rates)
        object.__setattr__(self, "powers", powers)
        if rates.shape != powers.shape or rates.ndim != 1 or rates.size == 0:
            raise ValueError(
                f"tenant {self.name!r}: rates and powers must be equal-length "
                f"non-empty 1-D arrays")
        if self.required_rate < 0:
            raise ValueError(
                f"tenant {self.name!r}: required_rate must be >= 0, "
                f"got {self.required_rate}")


@dataclasses.dataclass(frozen=True)
class TenantAllocation:
    """The allocator's decision for one tenant.

    Attributes:
        name: Tenant identifier.
        budget_watts: Instantaneous power budget granted.
        target_rate: Rate the tenant is asked to sustain — the required
            rate, or less when the allocator degraded.
        required_rate: The rate the tenant asked for.
        feasible: Whether ``target_rate`` covers ``required_rate``.
        estimated_watts: Average power of the tenant's optimal plan for
            ``target_rate`` within the budget, under its estimates.
    """

    name: str
    budget_watts: float
    target_rate: float
    required_rate: float
    feasible: bool
    estimated_watts: float


@dataclasses.dataclass(frozen=True)
class Allocation:
    """A complete division of the cap across the live tenants.

    Attributes:
        tenants: Per-tenant decisions, in demand order.
        cap_watts: The global cap the allocation respects.
        usable_watts: ``cap * (1 - margin)``, what was actually divided.
        mode: Which rung of the degradation ladder produced the
            budgets: ``"joint"`` (water-filled), ``"equal"`` (the
            equal-split candidate won), ``"static"`` (equal split by
            policy), or ``"proportional"`` (requirements did not fit).
    """

    tenants: Tuple[TenantAllocation, ...]
    cap_watts: float
    usable_watts: float
    mode: str

    @property
    def total_budget_watts(self) -> float:
        """Sum of granted budgets; ``<= usable_watts`` by construction."""
        return sum(t.budget_watts for t in self.tenants)

    @property
    def estimated_watts(self) -> float:
        """Estimated average node power under the allocation."""
        return sum(t.estimated_watts for t in self.tenants)

    @property
    def all_feasible(self) -> bool:
        """Whether every tenant's requirement was granted in full."""
        return all(t.feasible for t in self.tenants)

    def budget(self, name: str) -> float:
        """The named tenant's budget; ``KeyError`` if absent."""
        for t in self.tenants:
            if t.name == name:
                return t.budget_watts
        raise KeyError(f"no allocation for tenant {name!r}")

    def tenant(self, name: str) -> TenantAllocation:
        """The named tenant's full decision; ``KeyError`` if absent."""
        for t in self.tenants:
            if t.name == name:
                return t
        raise KeyError(f"no allocation for tenant {name!r}")


# ----------------------------------------------------------------------
# The inner oracle
# ----------------------------------------------------------------------
def _affordable(demand: TenantDemand, budget: float) -> np.ndarray:
    """Boolean mask of configurations within the instantaneous budget."""
    return demand.powers <= budget * (1.0 + _REL_TOL)


def _tenant_plan(demand: TenantDemand, budget: float,
                 target: float) -> Tuple[float, float]:
    """``(achieved_rate, average_watts)`` of the best plan under budget.

    Restricts the tenant's curve to affordable configurations and asks
    :class:`EnergyMinimizer` for the cheapest schedule sustaining
    ``target`` — or the fastest affordable rate when the target is out
    of reach within the budget.
    """
    mask = _affordable(demand, budget)
    if not mask.any():
        return 0.0, demand.idle_power
    minimizer = EnergyMinimizer(demand.rates[mask], demand.powers[mask],
                                demand.idle_power)
    achieved = min(target, minimizer.max_rate)
    watts = minimizer.min_energy(achieved * _HORIZON, _HORIZON) / _HORIZON
    return achieved, watts


def _min_budget(demand: TenantDemand, target: float) -> float:
    """Smallest budget whose affordable set can sustain ``target``."""
    capable = demand.rates >= target * (1.0 - _REL_TOL)
    if not capable.any():
        # The caller clamps targets to the curve's capacity first, so
        # this only triggers on pathological float edge cases.
        capable = demand.rates >= float(np.max(demand.rates))
    return max(float(np.min(demand.powers[capable])), demand.idle_power)


def _clamp_target(demand: TenantDemand) -> Tuple[float, bool]:
    """The tenant's target rate, clamped to its curve's capacity.

    Probes the inner oracle with the raw requirement; an
    :class:`InfeasibleConstraintError` carries the achievable
    ``max_rate``, which becomes the degraded target (ladder rung 2).
    """
    minimizer = EnergyMinimizer(demand.rates, demand.powers,
                                demand.idle_power)
    try:
        minimizer.solve(demand.required_rate * _HORIZON, _HORIZON)
    except InfeasibleConstraintError as exc:
        return exc.max_rate, False
    return demand.required_rate, True


# ----------------------------------------------------------------------
# Allocators
# ----------------------------------------------------------------------
class PowerCapAllocator:
    """Water-filling joint allocator over the tenants' learned hulls.

    Args:
        cap_watts: Global instantaneous power cap for the node.
        margin: Fraction of the cap held back as headroom for
            estimation error (budgets bound *estimated* peak power;
            the margin absorbs the estimate-vs-truth gap).

    Deterministic: ties in the water-filling are broken by demand
    order, then by ascending budget level.
    """

    mode_family = "joint"

    def __init__(self, cap_watts: float, margin: float = 0.05) -> None:
        if cap_watts <= 0:
            raise ValueError(f"cap_watts must be positive, got {cap_watts}")
        if not 0 <= margin < 1:
            raise ValueError(f"margin must be in [0, 1), got {margin}")
        self.cap_watts = float(cap_watts)
        self.margin = float(margin)

    @property
    def usable_watts(self) -> float:
        return self.cap_watts * (1.0 - self.margin)

    def allocate(self, demands: Sequence[TenantDemand]) -> Allocation:
        """Divide the cap; never exceeds ``usable_watts`` in any mode."""
        demands = _check_demands(demands)
        usable = self.usable_watts
        clamped = [_clamp_target(d) for d in demands]
        targets = [t for t, _ in clamped]
        mins = [_min_budget(d, t) for d, t in zip(demands, targets)]

        if sum(mins) > usable * (1.0 + _REL_TOL):
            # Rung 3: requirements do not fit together; shrink every
            # minimal budget proportionally and serve best-effort.
            scale = usable / sum(mins)
            budgets = [b * scale for b in mins]
            return _build(demands, budgets, targets, self.cap_watts, usable,
                          "proportional")

        budgets, watts = self._water_fill(demands, targets, mins, usable)
        mode = "joint"

        # Equal-split candidate: when feasible and cheaper under the
        # same estimates, prefer it — the joint allocation is then
        # never worse than the static baseline by construction.
        equal = usable / len(demands)
        if all(equal >= b * (1.0 - _REL_TOL) for b in mins):
            equal_watts = [_tenant_plan(d, equal, t)[1]
                           for d, t in zip(demands, targets)]
            if sum(equal_watts) < sum(watts) * (1.0 - _REL_TOL):
                budgets = [equal] * len(demands)
                mode = "equal"
        return _build(demands, budgets, targets, self.cap_watts, usable, mode)

    def _water_fill(self, demands: Sequence[TenantDemand],
                    targets: Sequence[float], mins: Sequence[float],
                    usable: float) -> Tuple[List[float], List[float]]:
        """Greedy budget raises by best energy-saved-per-watt ratio."""
        budgets = list(mins)
        watts = [_tenant_plan(d, b, t)[1]
                 for d, b, t in zip(demands, budgets, targets)]
        levels = [self._levels(d) for d in demands]
        plans: Dict[Tuple[int, float], float] = {}
        headroom = usable - sum(budgets)
        while True:
            best: Optional[Tuple[float, int, float, float]] = None
            for i, demand in enumerate(demands):
                for level in levels[i]:
                    if level <= budgets[i] * (1.0 + _REL_TOL):
                        continue
                    extra = level - budgets[i]
                    if extra > headroom * (1.0 + _REL_TOL):
                        break  # levels ascend; the rest cost more
                    key = (i, level)
                    if key not in plans:
                        plans[key] = _tenant_plan(demand, level,
                                                  targets[i])[1]
                    gain = watts[i] - plans[key]
                    if gain <= _REL_TOL:
                        continue
                    ratio = gain / extra
                    if best is None or ratio > best[0] * (1.0 + _REL_TOL):
                        best = (ratio, i, level, plans[key])
            if best is None:
                break
            _, i, level, new_watts = best
            headroom -= level - budgets[i]
            budgets[i] = level
            watts[i] = new_watts
        return budgets, watts

    @staticmethod
    def _levels(demand: TenantDemand) -> List[float]:
        """Candidate budget levels: Pareto-optimal power draws, ascending.

        ``E(b)`` only changes when the affordable set gains a
        Pareto-optimal configuration, so these are the only budgets
        worth granting.
        """
        mask = pareto_optimal_mask(demand.rates, demand.powers)
        return sorted(set(float(p) for p in demand.powers[mask]))


class StaticAllocator:
    """The per-app-static-cap baseline: equal budgets, no coordination.

    Splits the usable cap evenly regardless of the tenants' curves —
    what a cluster operator does without learned models.  Shares
    :class:`PowerCapAllocator`'s cap/margin semantics so the two are
    interchangeable in the coordinator.
    """

    mode_family = "static"

    def __init__(self, cap_watts: float, margin: float = 0.05) -> None:
        if cap_watts <= 0:
            raise ValueError(f"cap_watts must be positive, got {cap_watts}")
        if not 0 <= margin < 1:
            raise ValueError(f"margin must be in [0, 1), got {margin}")
        self.cap_watts = float(cap_watts)
        self.margin = float(margin)

    @property
    def usable_watts(self) -> float:
        return self.cap_watts * (1.0 - self.margin)

    def allocate(self, demands: Sequence[TenantDemand]) -> Allocation:
        demands = _check_demands(demands)
        usable = self.usable_watts
        share = usable / len(demands)
        targets = [_clamp_target(d)[0] for d in demands]
        budgets = [share] * len(demands)
        return _build(demands, budgets, targets, self.cap_watts, usable,
                      "static")


def _check_demands(demands: Sequence[TenantDemand]
                   ) -> Sequence[TenantDemand]:
    if not demands:
        raise ValueError("allocate() needs at least one tenant demand")
    names = [d.name for d in demands]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenant names in demands: {names}")
    return demands


def _build(demands: Sequence[TenantDemand], budgets: Sequence[float],
           targets: Sequence[float], cap: float, usable: float,
           mode: str) -> Allocation:
    """Assemble the final Allocation, re-deriving what each budget affords."""
    tenants = []
    for demand, budget, target in zip(demands, budgets, targets):
        achieved, watts = _tenant_plan(demand, budget, target)
        tenants.append(TenantAllocation(
            name=demand.name,
            budget_watts=float(budget),
            target_rate=float(achieved),
            required_rate=float(demand.required_rate),
            feasible=achieved >= demand.required_rate * (1.0 - 1e-6),
            estimated_watts=float(watts),
        ))
    return Allocation(tenants=tuple(tenants), cap_watts=float(cap),
                      usable_watts=float(usable), mode=mode)
