"""Per-tenant machine views over one shared, partitioned node.

The cluster subsystem co-schedules N applications on one simulated
machine by giving each tenant a disjoint slice of the physical cores
(:class:`~repro.platform.topology.CorePartition`, produced by
:meth:`Topology.split`) and a private :class:`TenantMachine` — a
``Machine`` subclass that any :class:`~repro.runtime.controller.
RuntimeController` drives unchanged.  Two resources stay shared and
contended:

* **The board floor and package TDP budget.**  A tenant view charges
  only its fair share (``1 / num_partitions``) of the system floor and
  of the idle draw, so the *sum* of the tenant views' wall powers is
  the node's wall power; socket uncore is charged per tenant view,
  which double-counts a socket shared by two partitions — a
  conservative error with respect to the global power cap.
* **The memory controllers.**  Co-runners pressure each other's memory
  streams: a tenant's heartbeat rate is derated by
  ``1 / (1 + kappa * m_i * sum_j m_j)`` where ``m`` are the memory
  intensities of the tenant and its co-residents.
  :class:`PartitionedMachine` refreshes the pressure whenever
  membership or loaded profiles change.

:func:`partition_space` projects a node-wide
:class:`~repro.platform.config_space.ConfigurationSpace` onto a
partition, keeping the original flat indices so offline priors (tables
over the full space) can be sliced consistently.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.experiments.parallel import cell_seed
from repro.platform.config_space import Configuration, ConfigurationSpace
from repro.platform.machine import Machine
from repro.platform.performance_model import PerformanceModel
from repro.platform.power_model import PowerConstants, PowerModel
from repro.platform.thermal import ThermalModel
from repro.platform.topology import CorePartition, Topology
from repro.workloads.profile import ApplicationProfile

#: Default memory-contention coupling between co-resident tenants.
DEFAULT_CONTENTION_KAPPA = 0.15

_PartitionRequest = Union[CorePartition, Tuple[str, int], Tuple[str, int, int]]


class _TenantPowerModel(PowerModel):
    """Power model of one tenant view: shared draws are split fairly.

    Per-core and per-controller draws are attributable to the tenant
    that causes them; the board floor and the idle draw are node-wide
    and are charged at ``floor_share`` each, so tenant wall powers sum
    to the node wall power.
    """

    def __init__(self, topology: Topology, floor_share: float,
                 constants: PowerConstants = PowerConstants()) -> None:
        super().__init__(topology, constants)
        self.floor_share = float(floor_share)

    def system_power(self, profile: ApplicationProfile,
                     config: Configuration) -> float:
        return (self.floor_share * self.constants.system_floor
                + self.chip_power(profile, config)
                + self.dram_power(profile, config))

    def idle_power(self) -> float:
        return self.floor_share * PowerModel.idle_power(self)


class _TenantPerformanceModel(PerformanceModel):
    """Performance model derated by co-runner memory pressure."""

    def __init__(self, topology: Topology) -> None:
        super().__init__(topology)
        #: ``kappa * sum`` of co-residents' memory intensities; set by
        #: :meth:`PartitionedMachine._refresh_contention`.
        self.contention_pressure = 0.0

    def heartbeat_rate(self, profile: ApplicationProfile,
                       config: Configuration) -> float:
        rate = super().heartbeat_rate(profile, config)
        return rate / (1.0 + self.contention_pressure
                       * profile.memory_intensity)


class TenantMachine(Machine):
    """A ``Machine``-compatible view of one partition of a shared node.

    The runtime controller drives it exactly like a private machine;
    the view enforces the partition boundary at actuation time and
    accounts shared power fairly (see the module docstring).
    """

    def __init__(self, topology: Topology, partition: CorePartition,
                 floor_share: float, seed: Optional[int] = None,
                 thermal: Optional[ThermalModel] = None) -> None:
        super().__init__(topology, seed=seed, thermal=thermal)
        self.partition = partition
        self.performance_model = _TenantPerformanceModel(topology)
        self.power_model = _TenantPowerModel(topology, floor_share)

    @property
    def floor_share(self) -> float:
        """This view's share of the node-wide floor and idle draws."""
        return self.power_model.floor_share

    @floor_share.setter
    def floor_share(self, share: float) -> None:
        self.power_model.floor_share = float(share)

    def set_contention(self, pressure: float) -> None:
        """Install the co-runner memory pressure (set by the node)."""
        self.performance_model.contention_pressure = float(pressure)

    def apply(self, config: Configuration) -> None:
        p = self.partition
        if config.cores > p.cores or config.threads > p.threads:
            raise ValueError(
                f"configuration (cores={config.cores}, "
                f"threads={config.threads}) exceeds partition {p.name!r} "
                f"(cores={p.cores}, threads={p.threads})"
            )
        super().apply(config)


@dataclasses.dataclass(frozen=True)
class TenantSpace:
    """A partition's slice of the node-wide configuration space.

    Attributes:
        space: The configurations that fit inside the partition, in
            node-space order.
        base_indices: For each configuration, its flat index in the
            node-wide space — the key for slicing offline prior tables
            (which are laid out over the full space).
    """

    space: ConfigurationSpace
    base_indices: np.ndarray

    def __len__(self) -> int:
        return len(self.space)

    def slice_table(self, table: np.ndarray) -> np.ndarray:
        """Project a node-wide table onto this tenant's configurations.

        ``table`` is laid out over the full node space along its last
        axis (prior rate/power tables, truth curves).  Works for any
        base-index subset, contiguous or not; raises ``ValueError``
        when the table's last axis does not match the node space the
        indices were cut from.
        """
        table = np.asarray(table)
        if table.ndim < 1:
            raise ValueError("table must have at least one axis")
        limit = int(self.base_indices.max()) if len(self.base_indices) else 0
        if table.shape[-1] <= limit:
            raise ValueError(
                f"table covers {table.shape[-1]} node configurations but "
                f"the tenant references base index {limit}; slice tables "
                f"over the node-wide space, not an already-sliced one")
        return table[..., self.base_indices]


def partition_space(space: ConfigurationSpace,
                    partition: CorePartition,
                    indices: Optional[Sequence[int]] = None) -> TenantSpace:
    """Project a node-wide configuration space onto one partition.

    By default keeps every configuration whose core and thread demands
    fit inside the partition.  ``indices`` overrides the filter with an
    explicit base-index subset — heterogeneous partitions (one per core
    cluster) produce non-contiguous subsets like this, since a
    cluster's configurations interleave with the other clusters' in the
    node-wide ordering.  Explicit subsets are validated: in range,
    strictly increasing (so prior-table slices stay aligned with the
    node-space order), and still within the partition's core/thread
    budget.

    Raises ``ValueError`` naming the partition when nothing fits.
    """
    if indices is None:
        kept = [i for i, config in enumerate(space)
                if config.cores <= partition.cores
                and config.threads <= partition.threads]
    else:
        kept = [int(i) for i in indices]
        for pos, i in enumerate(kept):
            if not 0 <= i < len(space):
                raise ValueError(
                    f"partition {partition.name!r}: base index {i} out of "
                    f"range [0, {len(space)})")
            if pos > 0 and i <= kept[pos - 1]:
                raise ValueError(
                    f"partition {partition.name!r}: base indices must be "
                    f"strictly increasing to preserve node-space order, "
                    f"got {kept[pos - 1]} before {i}")
            config = space[i]
            if config.cores > partition.cores \
                    or config.threads > partition.threads:
                raise ValueError(
                    f"partition {partition.name!r}: configuration at base "
                    f"index {i} (cores={config.cores}, "
                    f"threads={config.threads}) exceeds the partition "
                    f"(cores={partition.cores}, "
                    f"threads={partition.threads})")
    if not kept:
        raise ValueError(
            f"no configuration fits partition {partition.name!r} "
            f"(cores={partition.cores}, threads={partition.threads})"
        )
    sub = space.subspace(kept)
    return TenantSpace(space=sub, base_indices=np.asarray(kept, dtype=int))


class PartitionedMachine:
    """One shared node split into per-tenant ``Machine`` views.

    Args:
        space: The node-wide configuration space tenants choose from.
        requests: Initial partition requests, as accepted by
            :meth:`Topology.split`.
        topology: The node's topology; defaults to the space's.
        seed: Base seed; each tenant view's measurement noise stream is
            derived stably from it and the tenant's name.
        contention_kappa: Coupling constant of the shared-memory
            contention derate.

    Views are created, resized, and retired through
    :meth:`repartition`; a retired view's energy is folded into
    :attr:`node_energy` so node accounting survives churn.
    """

    def __init__(self, space: ConfigurationSpace,
                 requests: Sequence[_PartitionRequest],
                 topology: Optional[Topology] = None,
                 seed: int = 0,
                 contention_kappa: float = DEFAULT_CONTENTION_KAPPA) -> None:
        if contention_kappa < 0:
            raise ValueError(
                f"contention_kappa must be >= 0, got {contention_kappa}")
        self.space = space
        self.topology = topology if topology is not None else space.topology
        self.seed = int(seed)
        self.contention_kappa = float(contention_kappa)
        self.partitions: List[CorePartition] = []
        self._views: Dict[str, TenantMachine] = {}
        self._spaces: Dict[str, TenantSpace] = {}
        self._profiles: Dict[str, ApplicationProfile] = {}
        self._retired_energy = 0.0
        self.repartition(requests)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def repartition(self, requests: Sequence[_PartitionRequest],
                    clock: Optional[float] = None) -> List[CorePartition]:
        """Re-split the node; create, resize, and retire views to match.

        Surviving tenants keep their machine (clock, energy, and noise
        stream continue); new tenants get a fresh view whose clock
        starts at ``clock`` (default: the node clock, so arrivals join
        the present, not the past).  Departed tenants' energy is folded
        into :attr:`node_energy`.
        """
        partitions = self.topology.split(requests)
        names = {p.name for p in partitions}
        for name in list(self._views):
            if name not in names:
                machine = self._views.pop(name)
                self._retired_energy += machine.total_energy
                self._spaces.pop(name, None)
                self._profiles.pop(name, None)
        start_clock = clock if clock is not None else self.node_clock
        share = 1.0 / len(partitions) if partitions else 0.0
        views: Dict[str, TenantMachine] = {}
        for p in partitions:
            machine = self._views.get(p.name)
            if machine is None:
                machine = TenantMachine(
                    self.topology, p, floor_share=share,
                    seed=cell_seed(self.seed, "tenant-machine", p.name))
                machine.clock = start_clock
            else:
                machine.partition = p
                machine.floor_share = share
            views[p.name] = machine
            self._spaces[p.name] = partition_space(self.space, p)
        self._views = views
        self.partitions = partitions
        self._refresh_contention()
        return partitions

    @property
    def names(self) -> List[str]:
        """Live tenant names, in partition (admission) order."""
        return [p.name for p in self.partitions]

    def view(self, name: str) -> TenantMachine:
        """The named tenant's machine view."""
        return self._views[name]

    def space_for(self, name: str) -> TenantSpace:
        """The named tenant's slice of the configuration space."""
        return self._spaces[name]

    def set_profile(self, name: str,
                    profile: Optional[ApplicationProfile]) -> None:
        """Declare what ``name`` is running, for contention accounting."""
        if name not in self._views:
            raise KeyError(f"unknown tenant {name!r}")
        if profile is None:
            self._profiles.pop(name, None)
        else:
            self._profiles[name] = profile
        self._refresh_contention()

    def _refresh_contention(self) -> None:
        for name, machine in self._views.items():
            pressure = sum(p.memory_intensity
                           for other, p in self._profiles.items()
                           if other != name)
            machine.set_contention(self.contention_kappa * pressure)

    # ------------------------------------------------------------------
    # Node-level accounting
    # ------------------------------------------------------------------
    @property
    def node_clock(self) -> float:
        """The furthest tenant clock (the node's present moment)."""
        if not self._views:
            return 0.0
        return max(m.clock for m in self._views.values())

    @property
    def node_energy(self) -> float:
        """Total energy of the node: live views plus retired tenants."""
        return self._retired_energy + sum(m.total_energy
                                          for m in self._views.values())

    def idle_power(self) -> float:
        """Node-wide idle draw (the sum of the views' fair shares)."""
        return sum(m.idle_power() for m in self._views.values())

    def sync_clocks(self) -> None:
        """Idle lagging views up to the node clock.

        Tenant epochs run sequentially in simulation but represent
        concurrent wall-clock windows; whenever one view's clock runs
        ahead (e.g. a staggered calibration), the others idle — and are
        charged for it — until the node is synchronous again.
        """
        target = self.node_clock
        for machine in self._views.values():
            lag = target - machine.clock
            if lag > 1e-12:
                machine.idle_for(lag)
