"""Co-scheduling multiple applications on one node under a power cap.

The single-application stack (sample → estimate → optimize → actuate)
minimizes one application's energy under its own constraint; this
package coordinates N of those stacks on one shared node so that every
tenant meets its deadline while the node's total draw stays under a
global power cap and total energy is minimized.  Three layers:

* :mod:`repro.cluster.partition` — disjoint core/HT partitions with
  ``Machine``-compatible per-tenant views (shared floor power split
  fairly, shared memory contention modelled).
* :mod:`repro.cluster.allocator` — the joint water-filling solver
  dividing the cap across the tenants' learned tradeoff curves, with a
  proportional-share degradation ladder.
* :mod:`repro.cluster.coordinator` — the epoch loop: admission,
  staggered calibration, sticky allocation, budget-filtered execution,
  and phase-driven re-allocation, fully traced through
  :mod:`repro.obs`.

See docs/CLUSTER.md for the partition semantics, the allocator math,
and the metric/span reference.
"""

from repro.cluster.allocator import (
    Allocation,
    PowerCapAllocator,
    StaticAllocator,
    TenantAllocation,
    TenantDemand,
)
from repro.cluster.coordinator import (
    POLICIES,
    ClusterCoordinator,
    ClusterReport,
    Tenant,
    TenantReport,
)
from repro.cluster.partition import (
    DEFAULT_CONTENTION_KAPPA,
    PartitionedMachine,
    TenantMachine,
    TenantSpace,
    partition_space,
)

__all__ = [
    "Allocation",
    "PowerCapAllocator",
    "StaticAllocator",
    "TenantAllocation",
    "TenantDemand",
    "POLICIES",
    "ClusterCoordinator",
    "ClusterReport",
    "Tenant",
    "TenantReport",
    "DEFAULT_CONTENTION_KAPPA",
    "PartitionedMachine",
    "TenantMachine",
    "TenantSpace",
    "partition_space",
]
