"""Detecting application phase changes from heartbeat feedback.

Section 6.6 shows LEO adapting when fluidanimate's input moves to a
lighter phase.  The runtime cannot see the input; it can only see that
the heartbeat rate at the current configuration no longer matches what
the model predicts.  :class:`PhaseDetector` encodes that test: a phase
change is flagged when the observed rate deviates relative to the
expected rate by more than a threshold for several consecutive windows
(consecutiveness filters measurement noise spikes).
"""

from __future__ import annotations

from typing import Optional


class PhaseDetector:
    """Flags sustained deviations of observed rate from expected rate.

    Args:
        threshold: Relative deviation that counts as anomalous
            (0.15 = 15 %).
        patience: Consecutive anomalous windows required to flag a
            phase change.
    """

    def __init__(self, threshold: float = 0.15, patience: int = 3) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.threshold = threshold
        self.patience = patience
        self._streak = 0
        self.detections = 0

    def update(self, expected_rate: float, observed_rate: float,
               threshold: Optional[float] = None) -> bool:
        """Feed one window; returns True when a phase change is flagged.

        After flagging, the detector resets its streak so the caller can
        re-estimate and resume monitoring against the new model.

        ``threshold`` overrides the detector's default for this window —
        callers use a looser bound when the expectation itself is less
        trustworthy (e.g. a configuration the model has never seen
        measured, where estimation error is easily mistaken for a phase
        change).
        """
        if expected_rate <= 0:
            raise ValueError(f"expected_rate must be positive, got {expected_rate}")
        if observed_rate < 0:
            raise ValueError(f"observed_rate must be >= 0, got {observed_rate}")
        limit = self.threshold if threshold is None else threshold
        if limit <= 0:
            raise ValueError(f"threshold must be positive, got {limit}")
        deviation = abs(observed_rate - expected_rate) / expected_rate
        if deviation > limit:
            self._streak += 1
        else:
            self._streak = 0
        if self._streak >= self.patience:
            self._streak = 0
            self.detections += 1
            return True
        return False

    def reset(self) -> None:
        """Clear the anomaly streak (e.g. after re-estimation)."""
        self._streak = 0
