"""Persisting calibrated tradeoff estimates across runs.

"After executing this algorithm, the models are sufficient for making
predictions and LEO does not need to be executed again for the life of
the application under control" (Section 6.7).  Deployments extend that
lifetime across process restarts by persisting the fitted curves:
:class:`EstimateStore` keeps one record per (application, space size,
estimator) on disk, so a returning application skips calibration
entirely.

Records are schema-versioned (:data:`SCHEMA_VERSION` in the embedded
metadata) and written atomically (temporary file + ``os.replace``), so
concurrent writers never expose a torn record and a reader always sees
either the old or the new curve in full.  Unreadable records — corrupt
archives, mangled metadata JSON, or records written by a *future*
schema this code cannot interpret — are treated as absent rather than
raised mid-load: the caller simply re-calibrates, which is always safe.
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
import re
import threading
import zipfile
from typing import List, Optional, Union

import numpy as np

from repro.runtime.controller import TradeoffEstimate

PathLike = Union[str, pathlib.Path]

logger = logging.getLogger(__name__)

#: Version written into every record's metadata.  Bump when the record
#: layout changes incompatibly; loaders skip records from the future.
#: Version 1 records (no ``schema_version`` key) remain readable.
SCHEMA_VERSION = 2

_KEY_SANITIZER = re.compile(r"[^A-Za-z0-9._-]+")


def _slug(text: str) -> str:
    slug = _KEY_SANITIZER.sub("-", text).strip("-")
    if not slug:
        raise ValueError(f"cannot derive a storage key from {text!r}")
    return slug


class EstimateStore:
    """A directory of persisted :class:`TradeoffEstimate` records.

    Records are ``.npz`` files named ``{app}--{n}--{estimator}.npz``
    with a JSON metadata sidecar embedded in the archive.  Loading
    validates that the stored curve matches the requested configuration
    count, so a model fitted on one space cannot silently drive another.
    """

    def __init__(self, directory: PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, app_name: str, num_configs: int,
              estimator_name: str) -> pathlib.Path:
        return self.directory / (
            f"{_slug(app_name)}--{num_configs}--"
            f"{_slug(estimator_name)}.npz"
        )

    # ------------------------------------------------------------------
    def save(self, app_name: str, estimate: TradeoffEstimate
             ) -> pathlib.Path:
        """Persist one estimate atomically; returns the record path.

        The record is assembled in a sibling temporary file and moved
        into place with ``os.replace``, so a concurrent :meth:`load`
        sees either the previous record or this one, never a partial
        write — even with several writers racing on the same key.
        """
        if estimate.rates.ndim != 1 or estimate.rates.shape != \
                estimate.powers.shape:
            raise ValueError("estimate curves must be aligned 1-D arrays")
        path = self._path(app_name, estimate.rates.size,
                          estimate.estimator_name)
        meta = json.dumps({
            "schema_version": SCHEMA_VERSION,
            "app": app_name,
            "estimator": estimate.estimator_name,
            "sampling_time": estimate.sampling_time,
            "sampling_energy": estimate.sampling_energy,
            "fit_seconds": estimate.fit_seconds,
        })
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                np.savez_compressed(handle, rates=estimate.rates,
                                    powers=estimate.powers,
                                    meta=np.array(meta))
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return path

    def load(self, app_name: str, num_configs: int,
             estimator_name: str) -> Optional[TradeoffEstimate]:
        """Fetch a stored estimate, or ``None`` if absent.

        An unreadable record — truncated archive, corrupt metadata, or
        a ``schema_version`` newer than this code — also returns
        ``None`` (with a warning) so a damaged store degrades to a
        re-calibration instead of an unrelated crash mid-load.  A
        *readable* record whose curve length disagrees with
        ``num_configs`` still raises: that is a real keying bug, not
        corruption.
        """
        path = self._path(app_name, num_configs, estimator_name)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                rates = np.asarray(data["rates"], dtype=float)
                powers = np.asarray(data["powers"], dtype=float)
                meta = json.loads(str(data["meta"]))
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            logger.warning("skipping unreadable estimate record %s (%s)",
                           path, exc)
            return None
        schema = meta.get("schema_version", 1)
        if not isinstance(schema, int) or schema > SCHEMA_VERSION:
            logger.warning(
                "skipping estimate record %s with schema_version %r "
                "(this build reads <= %d)", path, schema, SCHEMA_VERSION)
            return None
        if rates.size != num_configs:
            raise ValueError(
                f"stored estimate for {app_name!r} covers {rates.size} "
                f"configurations, expected {num_configs}"
            )
        return TradeoffEstimate(
            rates=rates, powers=powers,
            estimator_name=meta["estimator"],
            sampling_time=meta.get("sampling_time", 0.0),
            sampling_energy=meta.get("sampling_energy", 0.0),
            fit_seconds=meta.get("fit_seconds", 0.0),
        )

    def delete(self, app_name: str, num_configs: int,
               estimator_name: str) -> bool:
        """Remove a record; returns whether one existed."""
        path = self._path(app_name, num_configs, estimator_name)
        if path.exists():
            path.unlink()
            return True
        return False

    def known_applications(self) -> List[str]:
        """Application slugs with at least one stored record."""
        names = {p.name.split("--")[0] for p in
                 self.directory.glob("*--*--*.npz")
                 if not p.name.startswith(".")}
        return sorted(names)

    def get_or_calibrate(self, app_name, controller, profile
                         ) -> TradeoffEstimate:
        """Load a stored estimate or calibrate-and-store a fresh one.

        The amortization pattern of Section 6.7 across process
        lifetimes: the first run pays the calibration cost, every later
        run starts from the persisted model.
        """
        cached = self.load(app_name, len(controller.space),
                           controller.estimator.name)
        if cached is not None:
            return cached
        estimate = controller.calibrate(profile)
        self.save(app_name, estimate)
        return estimate
