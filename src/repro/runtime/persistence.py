"""Persisting calibrated tradeoff estimates across runs.

"After executing this algorithm, the models are sufficient for making
predictions and LEO does not need to be executed again for the life of
the application under control" (Section 6.7).  Deployments extend that
lifetime across process restarts by persisting the fitted curves:
:class:`EstimateStore` keeps one record per (application, space size,
estimator) on disk, so a returning application skips calibration
entirely.

Records are schema-versioned (:data:`SCHEMA_VERSION` in the embedded
metadata) and written atomically (temporary file + ``os.replace``), so
concurrent writers never expose a torn record and a reader always sees
either the old or the new curve in full.  Unreadable records — corrupt
archives, mangled metadata JSON, or records written by a *future*
schema this code cannot interpret — are treated as absent rather than
raised mid-load: the caller simply re-calibrates, which is always safe.
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
import re
import threading
import zipfile
import zlib
from typing import List, Optional, Union

import numpy as np

from repro.faults.context import get_injector
from repro.runtime.controller import TradeoffEstimate

PathLike = Union[str, pathlib.Path]

logger = logging.getLogger(__name__)

#: Version written into every record's metadata.  Bump when the record
#: layout changes incompatibly; loaders skip records from the future.
#: Version 1 records (no ``schema_version`` key) remain readable.
SCHEMA_VERSION = 2

_KEY_SANITIZER = re.compile(r"[^A-Za-z0-9._-]+")


def _curve_crc(rates: np.ndarray, powers: np.ndarray) -> int:
    """CRC-32 over both curves' raw bytes — the record integrity field."""
    crc = zlib.crc32(np.ascontiguousarray(rates, dtype=float).tobytes())
    return zlib.crc32(
        np.ascontiguousarray(powers, dtype=float).tobytes(), crc)


def _slug(text: str) -> str:
    slug = _KEY_SANITIZER.sub("-", text).strip("-")
    if not slug:
        raise ValueError(f"cannot derive a storage key from {text!r}")
    return slug


class EstimateStore:
    """A directory of persisted :class:`TradeoffEstimate` records.

    Records are ``.npz`` files named ``{app}--{n}--{estimator}.npz``
    with a JSON metadata sidecar embedded in the archive.  Loading
    validates that the stored curve matches the requested configuration
    count, so a model fitted on one space cannot silently drive another.
    """

    def __init__(self, directory: PathLike) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, app_name: str, num_configs: int,
              estimator_name: str) -> pathlib.Path:
        return self.directory / (
            f"{_slug(app_name)}--{num_configs}--"
            f"{_slug(estimator_name)}.npz"
        )

    # ------------------------------------------------------------------
    def save(self, app_name: str, estimate: TradeoffEstimate
             ) -> pathlib.Path:
        """Persist one estimate atomically; returns the record path.

        The record is assembled in a sibling temporary file and moved
        into place with ``os.replace``, so a concurrent :meth:`load`
        sees either the previous record or this one, never a partial
        write — even with several writers racing on the same key.
        """
        if estimate.rates.ndim != 1 or estimate.rates.shape != \
                estimate.powers.shape:
            raise ValueError("estimate curves must be aligned 1-D arrays")
        path = self._path(app_name, estimate.rates.size,
                          estimate.estimator_name)
        meta = json.dumps({
            "schema_version": SCHEMA_VERSION,
            "app": app_name,
            "estimator": estimate.estimator_name,
            "sampling_time": estimate.sampling_time,
            "sampling_energy": estimate.sampling_energy,
            "fit_seconds": estimate.fit_seconds,
            "crc32": _curve_crc(estimate.rates, estimate.powers),
        })
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                np.savez_compressed(handle, rates=estimate.rates,
                                    powers=estimate.powers,
                                    meta=np.array(meta))
            # Fault-injection hook: a torn write truncates the record's
            # tail before it lands (what a crash mid-fsync or a buggy
            # copier produces).  The reader must skip it with a warning.
            for spec in get_injector().fire("persistence.write"):
                if spec.kind == "partial-write":
                    keep = max(int(tmp.stat().st_size
                                   * min(max(spec.magnitude, 0.0), 1.0)), 1)
                    with open(tmp, "rb+") as handle:
                        handle.truncate(keep)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                tmp.unlink()
        return path

    def load(self, app_name: str, num_configs: int,
             estimator_name: str) -> Optional[TradeoffEstimate]:
        """Fetch a stored estimate, or ``None`` if absent.

        An unreadable record — truncated archive, corrupt metadata, or
        a ``schema_version`` newer than this code — also returns
        ``None`` (with a warning) so a damaged store degrades to a
        re-calibration instead of an unrelated crash mid-load.  A
        *readable* record whose curve length disagrees with
        ``num_configs`` still raises: that is a real keying bug, not
        corruption.
        """
        path = self._path(app_name, num_configs, estimator_name)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                rates = np.asarray(data["rates"], dtype=float)
                powers = np.asarray(data["powers"], dtype=float)
                meta = json.loads(str(data["meta"]))
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            logger.warning("skipping unreadable estimate record %s (%s)",
                           path, exc)
            return None
        schema = meta.get("schema_version", 1)
        if not isinstance(schema, int) or schema > SCHEMA_VERSION:
            logger.warning(
                "skipping estimate record %s with schema_version %r "
                "(this build reads <= %d)", path, schema, SCHEMA_VERSION)
            return None
        stored_crc = meta.get("crc32")
        if (stored_crc is not None
                and stored_crc != _curve_crc(rates, powers)):
            # The archive parsed but the curves do not match the CRC the
            # writer recorded: silent corruption.  Treat as absent — the
            # caller re-calibrates, which is always safe.
            logger.warning("skipping estimate record %s with CRC mismatch "
                           "(stored %s)", path, stored_crc)
            return None
        if rates.size != num_configs:
            raise ValueError(
                f"stored estimate for {app_name!r} covers {rates.size} "
                f"configurations, expected {num_configs}"
            )
        return TradeoffEstimate(
            rates=rates, powers=powers,
            estimator_name=meta["estimator"],
            sampling_time=meta.get("sampling_time", 0.0),
            sampling_energy=meta.get("sampling_energy", 0.0),
            fit_seconds=meta.get("fit_seconds", 0.0),
        )

    def delete(self, app_name: str, num_configs: int,
               estimator_name: str) -> bool:
        """Remove a record; returns whether one existed."""
        path = self._path(app_name, num_configs, estimator_name)
        if path.exists():
            path.unlink()
            return True
        return False

    def known_applications(self) -> List[str]:
        """Application slugs with at least one stored record."""
        names = {p.name.split("--")[0] for p in
                 self.directory.glob("*--*--*.npz")
                 if not p.name.startswith(".")}
        return sorted(names)

    def get_or_calibrate(self, app_name, controller, profile
                         ) -> TradeoffEstimate:
        """Load a stored estimate or calibrate-and-store a fresh one.

        The amortization pattern of Section 6.7 across process
        lifetimes: the first run pays the calibration cost, every later
        run starts from the persisted model.
        """
        cached = self.load(app_name, len(controller.space),
                           controller.estimator.name)
        if cached is not None:
            return cached
        estimate = controller.calibrate(profile)
        self.save(app_name, estimate)
        return estimate


class CheckpointManager:
    """Atomic, CRC-guarded controller checkpoints on disk.

    One file, overwritten in place every ``every_quanta`` quantum
    boundaries of a :meth:`~repro.runtime.controller.RuntimeController.
    run` (pass the manager as its ``checkpointer``).  Writes are
    temp-file + ``os.replace`` with a CRC-32 over the canonical payload
    JSON, so a crash mid-write leaves either the previous checkpoint or
    the new one — and a torn or corrupted file is *detected* on
    :meth:`load` and skipped with a warning rather than resumed from.

    Recovery::

        manager = CheckpointManager(path)
        state = manager.load()
        if state is not None:
            report = controller.resume(state, profile)
        else:
            report = controller.run(..., checkpointer=manager)
    """

    def __init__(self, path: PathLike, every_quanta: int = 5) -> None:
        if every_quanta < 1:
            raise ValueError(
                f"every_quanta must be >= 1, got {every_quanta}")
        self.path = pathlib.Path(path)
        self.every_quanta = every_quanta
        #: Checkpoints written by this manager (for tests/metrics).
        self.saves = 0

    @staticmethod
    def _canonical(payload: dict) -> bytes:
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")

    def due(self, quantum_index: int) -> bool:
        """Whether the boundary before quantum ``quantum_index + 1`` is
        a checkpoint boundary."""
        return quantum_index > 0 and quantum_index % self.every_quanta == 0

    def maybe_save(self, quantum_index: int, payload_fn) -> bool:
        """Save ``payload_fn()`` when ``quantum_index`` is due.

        The payload is only built when a write actually happens, so the
        per-quantum cost on off-boundary quanta is one modulo.
        """
        if not self.due(quantum_index):
            return False
        self.save(payload_fn())
        return True

    def save(self, payload: dict) -> None:
        """Write one checkpoint atomically (temp file + ``os.replace``).

        The envelope carries a ``written_unix`` timestamp from the
        ambient clock — *outside* the CRC'd payload, so it never
        perturbs resume state or bit-equality checks, and a virtual
        clock stamps checkpoints in simulated time (the soak harness
        reads checkpoint age off it).
        """
        from repro.clock import get_clock

        body = self._canonical(payload)
        envelope = json.dumps({"crc32": zlib.crc32(body),
                               "written_unix": get_clock().time(),
                               "payload": payload})
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(
            f".{self.path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            tmp.write_text(envelope, encoding="utf-8")
            # Fault-injection hook: same torn-write fault as the
            # estimate store; load() must detect and skip it.
            for spec in get_injector().fire("persistence.write"):
                if spec.kind == "partial-write":
                    keep = max(int(tmp.stat().st_size
                                   * min(max(spec.magnitude, 0.0), 1.0)), 1)
                    with open(tmp, "rb+") as handle:
                        handle.truncate(keep)
            os.replace(tmp, self.path)
        finally:
            if tmp.exists():
                tmp.unlink()
        self.saves += 1

    def load(self) -> Optional[dict]:
        """The latest checkpoint payload, or ``None``.

        Missing, truncated, unparseable, or CRC-mismatching checkpoints
        all return ``None`` (with a warning): recovery falls back to a
        fresh run, which is always safe — never resume corrupt state.
        """
        if not self.path.exists():
            return None
        try:
            envelope = json.loads(self.path.read_text(encoding="utf-8"))
            stored = envelope["crc32"]
            payload = envelope["payload"]
        except (OSError, ValueError, KeyError, TypeError) as exc:
            logger.warning("skipping unreadable checkpoint %s (%s)",
                           self.path, exc)
            return None
        if not isinstance(payload, dict) or \
                zlib.crc32(self._canonical(payload)) != stored:
            logger.warning("skipping checkpoint %s with CRC mismatch",
                           self.path)
            return None
        return payload

    def written_unix(self) -> Optional[float]:
        """The on-disk checkpoint's envelope timestamp, or ``None``.

        ``None`` for missing or unreadable files — and for checkpoints
        written before the envelope carried a timestamp, which still
        load fine (``load`` only reads ``crc32`` and ``payload``).
        """
        if not self.path.exists():
            return None
        try:
            envelope = json.loads(self.path.read_text(encoding="utf-8"))
            stamp = envelope.get("written_unix")
        except (OSError, ValueError, AttributeError):
            return None
        return float(stamp) if stamp is not None else None

    def clear(self) -> bool:
        """Delete the checkpoint (e.g. after a completed run)."""
        if self.path.exists():
            self.path.unlink()
            return True
        return False
