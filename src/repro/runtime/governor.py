"""A Linux-style *ondemand* DVFS governor baseline.

The paper's testbed runs Linux, whose default frequency policy at the
time was the ondemand governor: give the application all cores, watch
utilization, raise the clock when busy and lower it when idle.  It is
the heuristic an unmanaged deployment actually gets — one step smarter
than race-to-idle (which pins TurboBoost), one step dumber than any
estimating approach (it never considers cores, hyperthreads, or memory
controllers, and it reacts only to the recent past).

:class:`OndemandGovernor` reproduces that policy on the simulated
machine: all cores / both hyperthreads / both memory controllers, with
the speed setting stepped up fast and down slowly based on how the
measured heartbeat rate compares to the demand.
"""

from __future__ import annotations

from typing import Dict, List

from repro.platform.config_space import Configuration, ConfigurationSpace
from repro.platform.machine import Machine
from repro.runtime.controller import RunReport
from repro.workloads.profile import ApplicationProfile


class OndemandGovernor:
    """All-resources allocation with reactive frequency scaling.

    Args:
        machine: Platform to drive.
        space: Its configuration space.
        up_threshold: Fraction of the demand above which the governor
            jumps straight to the highest speed (ondemand's aggressive
            up-step, triggered by high utilization).
        down_step: Speed-ladder steps dropped per quantum when the
            demand is comfortably met (the slow down-ramp).
        quantum_fraction: Control quantum as a fraction of the deadline.
    """

    def __init__(self, machine: Machine, space: ConfigurationSpace,
                 up_threshold: float = 0.95, down_step: int = 1,
                 quantum_fraction: float = 0.05) -> None:
        if not 0 < up_threshold <= 1:
            raise ValueError(
                f"up_threshold must be in (0, 1], got {up_threshold}"
            )
        if down_step < 1:
            raise ValueError(f"down_step must be >= 1, got {down_step}")
        if not 0 < quantum_fraction <= 1:
            raise ValueError(
                f"quantum_fraction must be in (0, 1], got {quantum_fraction}"
            )
        self.machine = machine
        self.space = space
        self.up_threshold = up_threshold
        self.down_step = down_step
        self.quantum_fraction = quantum_fraction
        self._speed_ladder = self._build_speed_ladder(space)

    @staticmethod
    def _build_speed_ladder(space: ConfigurationSpace
                            ) -> List[Configuration]:
        """All-resources configurations ordered by speed setting."""
        max_threads = max(c.threads for c in space)
        max_mem = max(c.memory_controllers for c in space)
        by_speed: Dict[int, Configuration] = {}
        for config in space:
            if (config.threads == max_threads
                    and config.memory_controllers == max_mem):
                by_speed[config.speed.index] = config
        if not by_speed:
            raise ValueError("space has no all-resources configurations")
        return [by_speed[i] for i in sorted(by_speed)]

    def run(self, profile: ApplicationProfile, work: float,
            deadline: float) -> RunReport:
        """Execute ``work`` heartbeats under the ondemand policy."""
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self.machine.load(profile)
        energy_before = self.machine.total_energy
        ladder = self._speed_ladder
        level = len(ladder) - 1  # ondemand starts high on a busy wakeup
        quantum = deadline * self.quantum_fraction
        time_left = deadline
        work_left = work
        last_rate = 0.0
        power_trace: List[float] = []
        rate_trace: List[float] = []

        while time_left > 1e-9 * deadline:
            if work_left <= 1e-9 * max(work, 1.0):
                self.machine.idle_for(time_left)
                power_trace.append(self.machine.idle_power())
                rate_trace.append(0.0)
                time_left = 0.0
                break
            step = min(quantum, time_left)
            if last_rate > 0:
                step = min(step, max(work_left / last_rate, 1e-6))
            self.machine.apply(ladder[level])
            measurement = self.machine.run_for(step)
            last_rate = measurement.rate
            work_left -= measurement.heartbeats
            time_left -= step
            power_trace.append(measurement.system_power)
            rate_trace.append(measurement.rate)

            # Policy update from observed demand pressure.
            required = (work_left / time_left if time_left > 1e-9
                        else float("inf"))
            if measurement.rate < required / self.up_threshold:
                level = len(ladder) - 1
            elif measurement.rate > 1.3 * required:
                level = max(level - self.down_step, 0)

        work_done = work - max(work_left, 0.0)
        return RunReport(
            energy=self.machine.total_energy - energy_before,
            work_done=work_done, work_target=work, deadline=deadline,
            met_target=work_done >= 0.99 * work, reestimations=0,
            power_trace=power_trace, rate_trace=rate_trace,
        )
