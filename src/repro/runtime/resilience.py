"""The estimator degradation ladder and its circuit breaker.

When an estimator fails — EM refuses to converge, a covariance turns
singular, the estimation service drops the connection — the runtime
must keep actuating *some* valid configuration: crashing mid-run costs
the whole window, while a worse model costs a few joules.  The ladder
encodes the fallback order:

1. The **configured** estimator (LEO, or a :class:`RemoteEstimator`).
2. ``online`` — polynomial regression on the target's own samples,
   needing no priors and no EM.
3. ``offline`` — the mean of the offline profiles, needing no fit at
   all (present only when the controller has priors).
4. **pinned** — no estimator: the measured samples themselves, padded
   conservatively (slowest measured rate, highest measured power) so
   the LP stays feasible and never schedules an unmeasured
   configuration optimistically.

A :class:`CircuitBreaker` guards the climb back up: a demotion opens
it; ``cooldown`` consecutive healthy quanta half-open it; one probe
calibration at the higher tier then either closes it (promotion) or
re-opens it (another full cooldown before the next probe).  Fault-free
runs never touch the breaker's state and execute the configured tier
directly, so they remain bit-identical to a ladder-less controller.

Every transition is observable: ``resilience_demotions_total`` /
``resilience_promotions_total`` counters, the ``resilience_tier``
gauge, and ``resilience.demote`` / ``resilience.promote`` spans.
"""

from __future__ import annotations

import dataclasses
import logging
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import clock as clockmod
from repro.errors import InsufficientSamplesError, ReproError
from repro.estimators.base import Estimator
from repro.obs import get_observability

logger = logging.getLogger(__name__)

#: Exception classes the ladder answers by falling to the next tier.
#: ``OSError`` covers the transport failures a RemoteEstimator surfaces
#: (ConnectionError, socket.timeout); ``LinAlgError`` covers numerical
#: collapse below the typed CovarianceError; everything else is a
#: programming error and propagates.
RECOVERABLE_EXCEPTIONS = (ReproError, np.linalg.LinAlgError, OSError)

#: The terminal tier's name (no estimator behind it).
PINNED_TIER = "pinned"


@dataclasses.dataclass
class Tier:
    """One rung of the ladder: a name and the estimator behind it.

    ``estimator is None`` marks the terminal pinned tier.
    """

    name: str
    estimator: Optional[Estimator]

    @property
    def pinned(self) -> bool:
        return self.estimator is None


class CircuitBreaker:
    """Classic closed / open / half-open breaker, counted in quanta.

    * **closed** — healthy; failures below the threshold are tolerated.
    * **open** — tripped; the protected operation (a probe of the tier
      above) is refused until ``cooldown`` healthy quanta accumulate.
    * **half-open** — cooled down; exactly one probe is allowed, and
      its outcome closes or re-opens the breaker.

    ``cooldown_s`` switches the open→half-open transition from quanta
    counting to elapsed clock seconds (read from ``clock``, or the
    ambient :func:`repro.clock.get_clock`) — the mode the soak harness
    uses so breaker recovery time is measured on the same virtual
    timeline as the faults that tripped it.  The default (``None``)
    keeps quanta counting, bit-identical to the original behaviour.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, failure_threshold: int = 1,
                 cooldown_quanta: int = 8,
                 cooldown_s: Optional[float] = None,
                 clock=None) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, "
                             f"got {failure_threshold}")
        if cooldown_quanta < 1:
            raise ValueError(f"cooldown_quanta must be >= 1, "
                             f"got {cooldown_quanta}")
        if cooldown_s is not None and cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_quanta = cooldown_quanta
        self.cooldown_s = cooldown_s
        self._clock = clock
        self.state = self.CLOSED
        self.failures = 0
        self.healthy_quanta = 0
        self.opened_at: Optional[float] = None

    def _now(self) -> float:
        return clockmod.resolve(self._clock).now()

    def record_failure(self) -> None:
        """A protected operation failed; trip after the threshold."""
        self.failures += 1
        self.healthy_quanta = 0
        if self.failures >= self.failure_threshold:
            self.state = self.OPEN
            if self.cooldown_s is not None:
                self.opened_at = self._now()

    def record_success(self) -> None:
        """A probe succeeded; the breaker closes and forgets."""
        self.state = self.CLOSED
        self.failures = 0
        self.healthy_quanta = 0
        self.opened_at = None

    def note_healthy(self) -> None:
        """One quantum passed without faults; cool an open breaker."""
        if self.state != self.OPEN:
            return
        self.healthy_quanta += 1
        if self.cooldown_s is not None:
            now = self._now()
            if self.opened_at is None:
                # The breaker was opened by direct state assignment
                # (promotion re-arm): start the cooldown at the first
                # healthy observation.
                self.opened_at = now
            if now - self.opened_at >= self.cooldown_s:
                self.state = self.HALF_OPEN
        elif self.healthy_quanta >= self.cooldown_quanta:
            self.state = self.HALF_OPEN

    def note_fault(self) -> None:
        """A fault surfaced outside the protected op; restart cooling."""
        self.healthy_quanta = 0
        if self.state == self.HALF_OPEN:
            self.state = self.OPEN
        if self.state == self.OPEN and self.cooldown_s is not None:
            self.opened_at = self._now()

    @property
    def allows_probe(self) -> bool:
        return self.state == self.HALF_OPEN

    # -- checkpoint plumbing -------------------------------------------
    def snapshot(self) -> dict:
        data = {"state": self.state, "failures": self.failures,
                "healthy_quanta": self.healthy_quanta}
        if self.opened_at is not None:
            data["opened_at"] = self.opened_at
        return data

    def restore(self, data: dict) -> None:
        self.state = data["state"]
        self.failures = int(data["failures"])
        self.healthy_quanta = int(data["healthy_quanta"])
        opened = data.get("opened_at")
        self.opened_at = float(opened) if opened is not None else None


class DegradationLadder:
    """Orders estimator tiers and tracks which one is trusted.

    Args:
        tiers: The rungs, best first; the last must be the pinned tier.
        breaker: The circuit breaker guarding promotion probes; its
            ``cooldown_quanta`` is the "bounded number of healthy
            quanta" after which a degraded controller probes back up.
    """

    def __init__(self, tiers: Sequence[Tier],
                 breaker: Optional[CircuitBreaker] = None) -> None:
        tiers = list(tiers)
        if not tiers:
            raise ValueError("ladder needs at least one tier")
        if not tiers[-1].pinned:
            raise ValueError("the last tier must be the pinned tier")
        self.tiers: List[Tier] = tiers
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.tier_index = 0
        self.demotions = 0
        self.promotions = 0

    # ------------------------------------------------------------------
    @property
    def current(self) -> Tier:
        return self.tiers[self.tier_index]

    @property
    def degraded(self) -> bool:
        return self.tier_index > 0

    def tiers_from_current(self) -> List[Tuple[int, Tier]]:
        """The rungs to try, current first, terminal pinned last."""
        return [(i, self.tiers[i])
                for i in range(self.tier_index, len(self.tiers))]

    # ------------------------------------------------------------------
    def demote_to(self, index: int, reason: str) -> None:
        """Record that estimation only succeeded at rung ``index``."""
        if index <= self.tier_index:
            return
        previous = self.tiers[self.tier_index].name
        self.tier_index = index
        self.demotions += 1
        was_open = self.breaker.state == CircuitBreaker.OPEN
        self.breaker.record_failure()
        ob = get_observability()
        ob.metrics.inc("resilience_demotions_total")
        ob.metrics.set_gauge("resilience_tier", float(index))
        ob.slo.record_event("ladder-demotion")
        if not was_open and self.breaker.state == CircuitBreaker.OPEN:
            ob.slo.record_event("breaker-open")
        if ob.tracer.is_recording:
            with ob.tracer.span("resilience.demote", from_tier=previous,
                                to_tier=self.current.name, reason=reason):
                pass
        logger.warning("estimator degraded",
                       extra={"fields": {"from": previous,
                                         "to": self.current.name,
                                         "reason": reason}})

    def note_healthy_quantum(self) -> None:
        """One fault-free quantum elapsed (cools the breaker)."""
        if self.degraded:
            self.breaker.note_healthy()

    def note_fault(self) -> None:
        """A runtime fault surfaced (restarts the breaker's cooldown)."""
        self.breaker.note_fault()

    @property
    def promotion_ready(self) -> bool:
        """Whether a probe of the tier above is due."""
        return self.degraded and self.breaker.allows_probe

    def record_promotion(self, achieved_index: int) -> None:
        """A probe landed at ``achieved_index`` (< the old rung)."""
        self.tier_index = achieved_index
        self.promotions += 1
        self.breaker.record_success()
        if achieved_index > 0:
            # Still degraded: re-arm the breaker so the next rung up
            # gets its own cooldown-then-probe cycle.
            self.breaker.state = CircuitBreaker.OPEN
        ob = get_observability()
        ob.metrics.inc("resilience_promotions_total")
        ob.metrics.set_gauge("resilience_tier", float(achieved_index))
        ob.slo.record_event("ladder-promotion")
        if ob.tracer.is_recording:
            with ob.tracer.span("resilience.promote",
                                to_tier=self.current.name):
                pass
        logger.info("estimator promoted",
                    extra={"fields": {"to": self.current.name}})

    def record_failed_probe(self) -> None:
        self.breaker.record_failure()

    # -- checkpoint plumbing -------------------------------------------
    def snapshot(self) -> dict:
        return {"tier_index": self.tier_index,
                "demotions": self.demotions,
                "promotions": self.promotions,
                "breaker": self.breaker.snapshot()}

    def restore(self, data: dict) -> None:
        self.tier_index = int(data["tier_index"])
        self.demotions = int(data["demotions"])
        self.promotions = int(data["promotions"])
        self.breaker.restore(data["breaker"])


def pinned_curves(num_configs: int, indices: np.ndarray,
                  rates: np.ndarray, powers: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """The terminal tier's estimate: measurements, padded conservatively.

    Every measured configuration keeps its measurement; every unmeasured
    one is assumed as slow as the slowest measured configuration and as
    hungry as the hungriest, so the LP can never be lured onto an
    unmeasured configuration by optimism — the safe pinned fallback.
    """
    if indices.size == 0:
        raise InsufficientSamplesError(
            "pinned fallback needs at least one measured sample")
    rate_curve = np.full(num_configs, float(np.min(rates)))
    power_curve = np.full(num_configs, float(np.max(powers)))
    rate_curve[indices] = rates
    power_curve[indices] = powers
    return rate_curve, power_curve
