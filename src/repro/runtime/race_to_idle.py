"""The race-to-idle heuristic (Sections 2 and 6.2).

"This approach allocates all resources to the application and once it is
finished the system goes to idle.  This strategy incurs almost no runtime
overhead, but may be suboptimal in terms of energy, since maximum
resource allocation is not always the best solution."

Unlike the estimating approaches, race-to-idle needs no model at all: it
simply applies the all-resources configuration (every core, both
hyperthreads, both memory controllers, TurboBoost) and runs until the
work completes, then idles out the window.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.platform.config_space import Configuration, ConfigurationSpace
from repro.platform.machine import Machine
from repro.runtime.controller import RunReport
from repro.workloads.profile import ApplicationProfile


def all_resources_config(space: ConfigurationSpace) -> Configuration:
    """The configuration allocating the most of every knob in ``space``.

    Resolution order mirrors the heuristic's intent: most threads, most
    cores, most memory controllers, highest speed setting.
    """
    return max(
        space,
        key=lambda c: (c.threads, c.cores, c.memory_controllers, c.speed.index),
    )


class RaceToIdleController:
    """Run flat out, then idle (no estimation, no optimization)."""

    def __init__(self, machine: Machine, space: ConfigurationSpace,
                 quantum_fraction: float = 0.05) -> None:
        if not 0 < quantum_fraction <= 1:
            raise ValueError(
                f"quantum_fraction must be in (0, 1], got {quantum_fraction}"
            )
        self.machine = machine
        self.space = space
        self.quantum_fraction = quantum_fraction

    def run(self, profile: ApplicationProfile, work: float,
            deadline: float) -> RunReport:
        """Race through ``work`` heartbeats, then idle until ``deadline``."""
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self.machine.load(profile)
        config = all_resources_config(self.space)
        self.machine.apply(config)

        energy_before = self.machine.total_energy
        quantum = deadline * self.quantum_fraction
        time_left = deadline
        work_left = work
        power_trace: List[float] = []
        rate_trace: List[float] = []

        last_rate = 0.0
        while time_left > 1e-9 * deadline and work_left > 1e-9 * max(work, 1.0):
            step = min(quantum, time_left)
            if last_rate > 0:
                # Trim the final quantum to the time the remaining work
                # actually needs (estimated from the measured rate).
                step = min(step, max(work_left / last_rate, 1e-6))
            measurement = self.machine.run_for(step)
            last_rate = measurement.rate
            work_left -= measurement.heartbeats
            time_left -= step
            power_trace.append(measurement.system_power)
            rate_trace.append(measurement.rate)
        if time_left > 0:
            self.machine.idle_for(time_left)
            power_trace.append(self.machine.idle_power())
            rate_trace.append(0.0)

        work_done = work - max(work_left, 0.0)
        return RunReport(
            energy=self.machine.total_energy - energy_before,
            work_done=work_done, work_target=work, deadline=deadline,
            met_target=work_done >= 0.99 * work, reestimations=0,
            power_trace=power_trace, rate_trace=rate_trace,
        )


def race_to_idle_energy(rates: np.ndarray, powers: np.ndarray,
                        race_index: int, idle_power: float, work: float,
                        deadline: float) -> float:
    """Closed-form race-to-idle energy under known true tradeoffs.

    Used by analytic experiments: run configuration ``race_index`` for
    ``work / rate`` seconds, idle for the rest of the window.
    """
    rate = float(rates[race_index])
    if rate <= 0:
        raise ValueError("race configuration must have a positive rate")
    runtime = work / rate
    if runtime > deadline * (1 + 1e-9):
        raise ValueError("race configuration cannot meet the deadline")
    runtime = min(runtime, deadline)
    return float(powers[race_index]) * runtime + idle_power * (deadline - runtime)
