"""The LEO runtime: sample, estimate, optimize, actuate (Section 5.4).

:class:`RuntimeController` drives the simulated machine the way the
paper's runtime drives its server:

1. **Calibrate** — apply a handful of sampled configurations, measure
   heartbeat rate and power in each (the "minuscule sampling overhead"
   of Section 6.7), and hand the observations to an estimator to
   complete both curves.
2. **Run** — solve the Eq. (1) LP on the estimated tradeoffs, execute
   the schedule in short quanta, and re-solve each quantum from the
   *measured* progress, which is the gradient-ascent-style feedback that
   lets every approach meet its performance goal (Section 6.6).
3. **Adapt** — optionally watch for phase changes through a
   :class:`~repro.runtime.phase_detector.PhaseDetector` and re-calibrate
   when the model stops matching reality.

Energy is accounted on the machine itself, so calibration and
re-calibration costs are charged to whoever incurs them.
"""

from __future__ import annotations

import contextlib
import dataclasses
import logging
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CheckpointError, SensorReadError
from repro.estimators.base import (
    EstimationProblem,
    Estimator,
    InsufficientSamplesError,
    normalize_problem,
)
from repro.obs import Observability, Span, Tracer, get_observability
from repro.obs import use as use_observability
from repro.optimize.lp import EnergyMinimizer
from repro.optimize.schedule import Slot
from repro.platform.config_space import ConfigurationSpace
from repro.platform.machine import Machine
from repro.runtime.phase_detector import PhaseDetector
from repro.runtime.resilience import (
    PINNED_TIER,
    RECOVERABLE_EXCEPTIONS,
    CircuitBreaker,
    DegradationLadder,
    Tier,
    pinned_curves,
)
from repro.runtime.sampling import RandomSampler, Sampler
from repro.workloads.phases import PhasedWorkload
from repro.workloads.profile import ApplicationProfile

logger = logging.getLogger(__name__)


def _plain(value):
    """Recursively convert numpy scalars to JSON-clean Python values."""
    if isinstance(value, dict):
        return {key: _plain(item) for key, item in value.items()}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _rng_state(rng) -> Optional[dict]:
    """A numpy Generator's JSON-clean state (``None`` passes through)."""
    if rng is None:
        return None
    return _plain(rng.bit_generator.state)


class TradeoffEstimate:
    """Estimated per-configuration rates and powers, with provenance.

    The sampling/fit bookkeeping is *derived from the calibration spans*
    when present (``spans`` — the trace subtree recorded by
    :meth:`RuntimeController.calibrate`); the spans are the single
    source of truth, and the legacy keyword arguments remain as stored
    fallbacks for estimates built without calibration (persisted
    records, synthetic estimates, tests).

    Attributes:
        rates: Estimated heartbeat rates, shape ``(n,)``, positive.
        powers: Estimated system powers, shape ``(n,)``, positive.
        estimator_name: Which approach produced the estimate.
        spans: Calibration spans (``controller.calibrate`` and its
            children), empty for span-less estimates.
    """

    __slots__ = ("rates", "powers", "estimator_name", "spans",
                 "_sampling_time", "_sampling_energy",
                 "_sampling_heartbeats", "_fit_seconds")

    def __init__(self, rates: np.ndarray, powers: np.ndarray,
                 estimator_name: str, sampling_time: float = 0.0,
                 sampling_energy: float = 0.0,
                 sampling_heartbeats: float = 0.0,
                 fit_seconds: float = 0.0,
                 spans: Sequence[Span] = ()) -> None:
        self.rates = np.asarray(rates, dtype=float)
        self.powers = np.asarray(powers, dtype=float)
        self.estimator_name = estimator_name
        self.spans: Tuple[Span, ...] = tuple(spans)
        self._sampling_time = float(sampling_time)
        self._sampling_energy = float(sampling_energy)
        self._sampling_heartbeats = float(sampling_heartbeats)
        self._fit_seconds = float(fit_seconds)

    @classmethod
    def from_truth(cls, rates: np.ndarray, powers: np.ndarray
                   ) -> "TradeoffEstimate":
        """An oracle estimate: the exhaustive-search ground truth."""
        return cls(rates=np.asarray(rates, dtype=float),
                   powers=np.asarray(powers, dtype=float),
                   estimator_name="exhaustive")

    # -- span-derived bookkeeping ---------------------------------------
    def _span_attr_sum(self, span_name: str, attr: str) -> Optional[float]:
        """Sum ``attr`` over spans named ``span_name``; None if absent."""
        total, found = 0.0, False
        for span in self.spans:
            if span.name == span_name and attr in span.attributes:
                total += float(span.attributes[attr])
                found = True
        return total if found else None

    @property
    def sampling_time(self) -> float:
        """Simulated seconds spent measuring samples."""
        derived = self._span_attr_sum("controller.sample", "sampling_time")
        return derived if derived is not None else self._sampling_time

    @property
    def sampling_energy(self) -> float:
        """Joules spent measuring samples."""
        derived = self._span_attr_sum("controller.sample", "sampling_energy")
        return derived if derived is not None else self._sampling_energy

    @property
    def sampling_heartbeats(self) -> float:
        """Heartbeats completed during the sampling windows (the
        application keeps running while being measured; inline
        re-calibration credits these to the run)."""
        derived = self._span_attr_sum("controller.sample",
                                      "sampling_heartbeats")
        return derived if derived is not None else self._sampling_heartbeats

    @property
    def fit_seconds(self) -> float:
        """Wall-clock seconds the estimator itself took (both fitted
        quantities) — the paper's Section 6.7 overhead figure, read off
        the ``estimator.fit`` spans."""
        durations = [span.duration for span in self.spans
                     if span.name == "estimator.fit"]
        return sum(durations) if durations else self._fit_seconds

    def __repr__(self) -> str:
        return (f"TradeoffEstimate({self.estimator_name!r}, "
                f"n={self.rates.size}, "
                f"sampling_time={self.sampling_time:.3f}, "
                f"fit_seconds={self.fit_seconds:.3f})")


@dataclasses.dataclass
class RunReport:
    """Outcome of one controlled execution window.

    Attributes:
        energy: Joules consumed over the window (including any inline
            re-calibration).
        work_done: Heartbeats completed.
        work_target: Heartbeats demanded.
        deadline: Window length in simulated seconds.
        met_target: Whether the demand was met (within 1 % tolerance,
            absorbing measurement noise on the final quantum).
        reestimations: Phase-change re-calibrations performed.
        power_trace: Mean power of each executed quantum, for the
            Figure 13-style time series.
        rate_trace: Measured rate of each executed quantum.
    """

    energy: float
    work_done: float
    work_target: float
    deadline: float
    met_target: bool
    reestimations: int
    power_trace: List[float]
    rate_trace: List[float]


class RuntimeController:
    """Sample/estimate/optimize/actuate loop over a simulated machine.

    Args:
        machine: The platform to drive.
        space: Configuration space the machine exposes.
        estimator: Approach used to complete the sampled curves.  The
            same instance estimates performance (in normalized space)
            and power (in absolute watts).
        prior_rates: ``(M-1, n)`` offline rate table, or ``None``.
        prior_powers: ``(M-1, n)`` offline power table, or ``None``.
        sampler: Strategy choosing which configurations to measure.
        sample_count: Configurations measured per calibration.
        sample_window: Seconds per sample measurement.
        quantum_fraction: Control quantum as a fraction of the deadline.
        observability: Optional tracer/metrics bundle installed as the
            ambient context for every :meth:`calibrate` / :meth:`run`
            call; ``None`` (the default) inherits whatever the caller
            installed via :func:`repro.obs.use`.
        fallback_estimators: Lower rungs of the estimator degradation
            ladder (see :mod:`repro.runtime.resilience`), tried in order
            when the configured estimator fails recoverably.  ``None``
            (the default) selects the standard chain — ``online``
            regression, then the ``offline`` prior mean when priors
            exist; an explicit empty sequence disables estimator
            fallbacks, leaving only the terminal pinned tier.
        promotion_cooldown: Consecutive healthy quanta a degraded
            controller waits before probing one ladder rung back up.
    """

    def __init__(self, machine: Machine, space: ConfigurationSpace,
                 estimator: Estimator,
                 prior_rates: Optional[np.ndarray] = None,
                 prior_powers: Optional[np.ndarray] = None,
                 sampler: Optional[Sampler] = None,
                 sample_count: int = 20,
                 sample_window: float = 1.0,
                 quantum_fraction: float = 0.05,
                 novel_config_tolerance: float = 0.35,
                 safety_margin: float = 0.04,
                 observability: Optional[Observability] = None,
                 fallback_estimators: Optional[Sequence[Estimator]] = None,
                 promotion_cooldown: int = 8,
                 clock=None,
                 promotion_cooldown_s: Optional[float] = None) -> None:
        if sample_count < 1:
            raise ValueError(f"sample_count must be >= 1, got {sample_count}")
        if sample_window <= 0:
            raise ValueError(f"sample_window must be positive, got {sample_window}")
        if not 0 < quantum_fraction <= 1:
            raise ValueError(
                f"quantum_fraction must be in (0, 1], got {quantum_fraction}"
            )
        if novel_config_tolerance <= 0:
            raise ValueError(
                f"novel_config_tolerance must be positive, got "
                f"{novel_config_tolerance}"
            )
        if safety_margin < 0:
            raise ValueError(
                f"safety_margin must be >= 0, got {safety_margin}"
            )
        if promotion_cooldown < 1:
            raise ValueError(
                f"promotion_cooldown must be >= 1, got {promotion_cooldown}"
            )
        self.machine = machine
        self.space = space
        self.estimator = estimator
        self.prior_rates = prior_rates
        self.prior_powers = prior_powers
        # The default sampler is explicitly seeded: an OS-entropy default
        # would make calibration nondeterministic, which silently breaks
        # result equality when experiments fan out across processes.
        # Callers wanting independent draws pass a per-cell-seeded
        # sampler (RandomSampler(seed=cell_seed)).
        self.sampler = sampler if sampler is not None else RandomSampler(seed=0)
        self.sample_count = sample_count
        self.sample_window = sample_window
        self.quantum_fraction = quantum_fraction
        self.novel_config_tolerance = novel_config_tolerance
        self.safety_margin = safety_margin
        self.observability = observability
        self.promotion_cooldown = promotion_cooldown
        #: Optional :class:`~repro.clock.Clock`.  A *virtual* clock is
        #: advanced in lockstep with the machine's simulated clock
        #: (quantum loop, calibration sampling), so fault windows, SLO
        #: streams, and breaker cooldowns anchored to it see the same
        #: timeline the machine lives on.  ``None`` — the default — adds
        #: no clock coupling and changes nothing.
        self.clock = clock
        #: Breaker cooldown in clock seconds; ``None`` keeps the
        #: original quanta-counted cooldown (``promotion_cooldown``).
        self.promotion_cooldown_s = promotion_cooldown_s
        # The degradation ladder is built lazily on first use, so the
        # fallback estimators exist only once the controller actually
        # estimates (and so construction stays cheap for callers that
        # bring their own estimate).
        self._fallback_estimators = fallback_estimators
        self._ladder: Optional[DegradationLadder] = None
        #: The estimate in force at the end of the most recent run().
        self.last_estimate: Optional[TradeoffEstimate] = None

    def _obs_scope(self):
        """Install the controller's bundle, if it has one."""
        return use_observability(self.observability)

    # ------------------------------------------------------------------
    # Virtual-time coupling
    # ------------------------------------------------------------------
    def _clock_anchor(self):
        """``(clock, machine_origin, clock_origin)``, or ``None``.

        Anchors the attached *virtual* clock to the machine's simulated
        clock so :meth:`_sync_clock` can mirror machine progress onto
        it absolutely — nested scopes (an inline re-calibration inside a
        run) each anchor themselves and compose without double counting,
        because both resolve to the same machine-clock instant.
        """
        clk = self.clock
        if clk is None or not clk.is_virtual:
            return None
        return (clk, self.machine.clock, clk.now())

    def _sync_clock(self, anchor) -> None:
        if anchor is not None:
            clk, machine_origin, clock_origin = anchor
            clk.advance_to(clock_origin
                           + (self.machine.clock - machine_origin))

    # ------------------------------------------------------------------
    # Resilience: the estimator degradation ladder
    # ------------------------------------------------------------------
    @property
    def ladder(self) -> DegradationLadder:
        """The estimator degradation ladder (built on first access)."""
        if self._ladder is None:
            self._ladder = self._build_ladder()
        return self._ladder

    def _build_ladder(self) -> DegradationLadder:
        tiers = [Tier(self.estimator.name, self.estimator)]
        fallbacks = self._fallback_estimators
        if fallbacks is None:
            from repro.estimators.registry import create_estimator
            names = ["online"]
            if (self.prior_rates is not None
                    and self.prior_powers is not None):
                names.append("offline")
            fallbacks = [create_estimator(name) for name in names]
        for fallback in fallbacks:
            if fallback.name not in {tier.name for tier in tiers}:
                tiers.append(Tier(fallback.name, fallback))
        tiers.append(Tier(PINNED_TIER, None))
        return DegradationLadder(
            tiers,
            breaker=CircuitBreaker(cooldown_quanta=self.promotion_cooldown,
                                   cooldown_s=self.promotion_cooldown_s,
                                   clock=self.clock))

    # ------------------------------------------------------------------
    # Calibration: sample + estimate
    # ------------------------------------------------------------------
    def calibrate(self, profile: ApplicationProfile,
                  sample_count: Optional[int] = None,
                  sample_window: Optional[float] = None) -> TradeoffEstimate:
        """Measure sampled configurations and estimate both curves.

        The returned estimate carries the calibration's trace subtree
        (``controller.calibrate`` → ``controller.sample`` +
        ``estimator.fit`` → ...); its sampling/fit bookkeeping is read
        off those spans.  When no tracer is installed, the spans are
        recorded into a private bookkeeping tracer so the estimate is
        self-describing either way.
        """
        count = sample_count if sample_count is not None else self.sample_count
        window = sample_window if sample_window is not None else self.sample_window
        anchor = self._clock_anchor()
        with self._obs_scope():
            ambient = get_observability()
            if ambient.tracer.is_recording:
                scope = contextlib.nullcontext(ambient)
            else:
                # Spans are the estimate's single source of truth, so
                # calibration always records into *some* tracer — a
                # throwaway one when tracing is disabled (a handful of
                # objects per calibration, invisible next to the fit).
                scope = use_observability(
                    Observability(tracer=Tracer(), metrics=ambient.metrics))
            with scope as active:
                tracer = active.tracer
                mark = tracer.num_finished
                with tracer.span("controller.calibrate",
                                 estimator=self.estimator.name,
                                 sample_count=count,
                                 sample_window=window):
                    self.machine.load(profile)
                    energy_before = self.machine.total_energy
                    clock_before = self.machine.clock

                    with tracer.span("controller.sample") as sample_span:
                        chosen = self.sampler.select(len(self.space), count)
                        kept: List[int] = []
                        rate_obs: List[float] = []
                        power_obs: List[float] = []
                        heartbeats = 0.0
                        dropped = 0
                        for i in chosen:
                            self.machine.apply(self.space[int(i)])
                            try:
                                measurement = self.machine.run_for(window)
                            except SensorReadError:
                                # The window ran (time and energy were
                                # spent) but its observation was lost;
                                # calibrate on the surviving samples.
                                dropped += 1
                                continue
                            kept.append(int(i))
                            rate_obs.append(measurement.rate)
                            power_obs.append(measurement.system_power)
                            heartbeats += measurement.heartbeats
                        indices = np.asarray(kept, dtype=int)
                        rates = np.asarray(rate_obs, dtype=float)
                        powers = np.asarray(power_obs, dtype=float)
                        sampling_time = self.machine.clock - clock_before
                        sampling_energy = (self.machine.total_energy
                                           - energy_before)
                        sample_span.set_attribute("num_samples",
                                                  int(indices.size))
                        if dropped:
                            sample_span.set_attribute("dropped_samples",
                                                      dropped)
                            active.metrics.inc(
                                "fault_sampling_dropouts_total", dropped)
                        sample_span.set_attribute("sampling_time",
                                                  sampling_time)
                        sample_span.set_attribute("sampling_energy",
                                                  sampling_energy)
                        sample_span.set_attribute("sampling_heartbeats",
                                                  heartbeats)
                    active.metrics.inc("sampling_energy_joules",
                                       sampling_energy)

                    if indices.size == 0:
                        raise InsufficientSamplesError(
                            "every calibration sample was lost to sensor "
                            "dropout")
                    features = self.space.feature_matrix()
                    rate_curve, power_curve, tier = self._fit_with_ladder(
                        features, indices, rates, powers)
                spans = tracer.finished_since(mark)

        self._sync_clock(anchor)
        return TradeoffEstimate(
            rates=rate_curve, powers=power_curve,
            estimator_name=tier.name,
            spans=spans,
        )

    def _fit_with_ladder(self, features: np.ndarray, indices: np.ndarray,
                         rates: np.ndarray, powers: np.ndarray
                         ) -> Tuple[np.ndarray, np.ndarray, Tier]:
        """Fit both curves at the best ladder rung that survives.

        Walks the degradation ladder from the currently trusted tier
        down, falling past recoverable failures (EM divergence, singular
        covariances, service transport errors) until a tier fits; the
        terminal pinned tier cannot fail given at least one sample.
        Demotes (and records resilience metrics) when anything below the
        trusted tier had to be used; the fault-free path runs the
        trusted tier alone and is bit-identical to a ladder-less fit.
        """
        ladder = self.ladder
        start = ladder.tier_index
        failure: Optional[BaseException] = None
        for tier_index, tier in ladder.tiers_from_current():
            try:
                if tier.pinned:
                    rate_curve, power_curve = pinned_curves(
                        len(self.space), indices, rates, powers)
                else:
                    rate_curve = self._estimate_rates(
                        tier.estimator, features, indices, rates)
                    power_curve = self._estimate_powers(
                        tier.estimator, features, indices, powers)
            except InsufficientSamplesError:
                # Too few samples is an input-size condition, not a
                # fault: at the trusted tier it propagates (callers keep
                # the previous estimate, as before the ladder existed);
                # at a lower rung the ladder keeps falling.
                if tier_index == start:
                    raise
                continue
            except RECOVERABLE_EXCEPTIONS as exc:
                failure = exc
                get_observability().metrics.inc(
                    "fault_estimator_failures_total")
                logger.warning(
                    "estimator tier failed; falling back",
                    extra={"fields": {
                        "tier": tier.name,
                        "error": f"{type(exc).__name__}: {exc}"}})
                continue
            if tier_index > start:
                reason = (f"{type(failure).__name__}: {failure}"
                          if failure is not None else "insufficient samples")
                ladder.demote_to(tier_index, reason=reason)
            return rate_curve, power_curve, tier
        assert failure is not None  # pinned cannot fail with samples
        raise failure

    def _estimate_rates(self, estimator: Estimator, features: np.ndarray,
                        indices: np.ndarray, rates: np.ndarray
                        ) -> np.ndarray:
        problem = EstimationProblem(
            features=features, prior=self.prior_rates,
            observed_indices=indices, observed_values=rates)
        normalized, scale = normalize_problem(problem)
        curve = estimator.estimate(normalized) * scale
        return self._clip_positive(curve, rates)

    def _estimate_powers(self, estimator: Estimator, features: np.ndarray,
                         indices: np.ndarray, powers: np.ndarray
                         ) -> np.ndarray:
        problem = EstimationProblem(
            features=features, prior=self.prior_powers,
            observed_indices=indices, observed_values=powers)
        curve = estimator.estimate(problem)
        return self._clip_positive(curve, powers)

    @staticmethod
    def _clip_positive(curve: np.ndarray, observations: np.ndarray
                       ) -> np.ndarray:
        """Floor estimates at a sliver of the smallest observation.

        Negative rates or powers are physically meaningless and would
        break the frontier; real observations are strictly positive.
        """
        floor = 1e-3 * float(np.min(observations))
        return np.maximum(curve, max(floor, 1e-12))

    # ------------------------------------------------------------------
    # Controlled execution
    # ------------------------------------------------------------------
    def run(self, profile: ApplicationProfile, work: float, deadline: float,
            estimate: TradeoffEstimate, adapt: bool = False,
            detector: Optional[PhaseDetector] = None,
            checkpointer=None) -> RunReport:
        """Execute ``work`` heartbeats of ``profile`` within ``deadline``.

        Re-solves the LP every quantum from measured progress.  With
        ``adapt=True`` a phase detector may trigger an inline
        re-calibration, whose time and energy are charged to this run.

        ``checkpointer`` — a :class:`~repro.runtime.persistence.
        CheckpointManager` (or anything with its ``maybe_save(index,
        payload_fn)`` shape) — snapshots the loop state at quantum
        boundaries so a crashed run can be continued with
        :meth:`resume`, bit-equal to the uninterrupted run.
        """
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        with self._obs_scope():
            return self._run_traced(profile, work, deadline, estimate,
                                    adapt, detector,
                                    checkpointer=checkpointer)

    def _run_traced(self, profile: ApplicationProfile, work: float,
                    deadline: float, estimate: TradeoffEstimate,
                    adapt: bool, detector: Optional[PhaseDetector],
                    checkpointer=None,
                    resume_state: Optional[dict] = None) -> RunReport:
        ob = get_observability()
        tracer = ob.tracer
        if resume_state is None:
            self.machine.load(profile)
        if adapt and detector is None:
            detector = PhaseDetector()

        # Local working copies: measured feedback corrects the executed
        # configurations, which is the runtime's gradient-ascent behaviour
        # ("all use gradient ascent to increase performance until the
        # demand is met", Section 6.6).
        if resume_state is None:
            rates = estimate.rates.copy()
            powers = estimate.powers.copy()
            energy_before = self.machine.total_energy
            time_left = deadline
            work_left = work
            reestimations = 0
            quantum_index = 0
            visited: set = set()
            power_trace: List[float] = []
            rate_trace: List[float] = []
        else:
            rates = np.asarray(resume_state["rates"], dtype=float)
            powers = np.asarray(resume_state["powers"], dtype=float)
            energy_before = float(resume_state["energy_start"])
            time_left = float(resume_state["time_left"])
            work_left = float(resume_state["work_left"])
            reestimations = int(resume_state["reestimations"])
            quantum_index = int(resume_state["quantum_index"])
            visited = {int(i) for i in resume_state["visited"]}
            power_trace = [float(x) for x in resume_state["power_trace"]]
            rate_trace = [float(x) for x in resume_state["rate_trace"]]
        minimizer = EnergyMinimizer(rates, powers, self.machine.idle_power())
        quantum = deadline * self.quantum_fraction
        anchor = self._clock_anchor()

        with tracer.span("controller.run", work=work, deadline=deadline,
                         estimator=estimate.estimator_name,
                         adapt=adapt) as run_span:
            while time_left > 1e-9 * deadline:
                self._sync_clock(anchor)
                if checkpointer is not None:
                    checkpointer.maybe_save(
                        quantum_index,
                        lambda: self._snapshot_run_state(
                            profile, work, deadline, adapt,
                            quantum_index=quantum_index,
                            time_left=time_left, work_left=work_left,
                            reestimations=reestimations, rates=rates,
                            powers=powers, estimate=estimate,
                            visited=visited, power_trace=power_trace,
                            rate_trace=rate_trace,
                            energy_before=energy_before,
                            detector=detector))
                ladder = self._ladder
                if (ladder is not None and ladder.promotion_ready
                        and work_left > 1e-9 * max(work, 1.0)
                        and time_left > quantum):
                    # The breaker cooled down: probe one rung up with a
                    # short re-calibration, charged to this run like any
                    # inline re-calibration.
                    probe, elapsed = self._attempt_promotion(profile)
                    time_left -= elapsed
                    if probe is not None:
                        work_left -= probe.sampling_heartbeats
                        estimate = probe
                        rates = estimate.rates.copy()
                        powers = estimate.powers.copy()
                        minimizer = EnergyMinimizer(
                            rates, powers, self.machine.idle_power())
                        visited.clear()
                    continue
                quantum_index += 1
                ob.metrics.inc("quanta_total")
                with tracer.span("controller.quantum",
                                 index=quantum_index) as qspan:
                    step = min(quantum, time_left)
                    if work_left <= 1e-9 * max(work, 1.0):
                        self.machine.idle_for(step)
                        power_trace.append(self.machine.idle_power())
                        rate_trace.append(0.0)
                        time_left -= step
                        qspan.set_attribute("idle", True)
                        if ladder is not None:
                            ladder.note_healthy_quantum()
                        continue

                    slot = self._next_slot(minimizer, work_left, time_left)
                    if slot is None or slot.config_index is None:
                        self.machine.idle_for(step)
                        power_trace.append(self.machine.idle_power())
                        rate_trace.append(0.0)
                        time_left -= step
                        qspan.set_attribute("idle", True)
                        if ladder is not None:
                            ladder.note_healthy_quantum()
                        continue
                    config_index = slot.config_index
                    # Respect the plan: the slow leg only gets its allotted
                    # share of the remaining window (running it longer
                    # starves the fast leg and misses the work target).
                    step = min(step, max(slot.duration, 1e-3 * quantum))

                    # Trim the step so the work is not overshot at high
                    # power: once the remaining work needs less than a
                    # quantum at this configuration's (believed) rate, run
                    # only that long.
                    believed_rate = float(rates[config_index])
                    if believed_rate > 0:
                        step = min(step, max(work_left / believed_rate, 1e-6))
                    self.machine.apply(self.space[config_index])
                    try:
                        measurement = self.machine.run_for(step)
                    except SensorReadError:
                        # The quantum ran (the machine advanced and drew
                        # power) but its observation was lost: charge the
                        # time, credit no work (conservative — unobserved
                        # progress is re-done), and record the model's
                        # believed behaviour in the traces.
                        time_left -= step
                        power_trace.append(float(powers[config_index]))
                        rate_trace.append(float(rates[config_index]))
                        qspan.set_attribute("sensor_dropout", True)
                        ob.metrics.inc("fault_lost_quanta_total")
                        if ladder is not None:
                            ladder.note_fault()
                        continue
                    work_left -= measurement.heartbeats
                    time_left -= step
                    power_trace.append(measurement.system_power)
                    rate_trace.append(measurement.rate)
                    qspan.set_attribute("config_index", int(config_index))
                    qspan.set_attribute("step", step)
                    qspan.set_attribute("measured_rate", measurement.rate)
                    qspan.set_attribute("measured_power",
                                        measurement.system_power)

                    # The model's expectation before feedback, for phase
                    # detection.
                    expected = float(rates[config_index])
                    deviation = (abs(measurement.rate - expected) / expected
                                 if expected > 0 else 0.0)
                    # Deviation at a previously *measured* configuration is
                    # evidence of a behavioural change; at a first visit it
                    # may just be estimation error, so the bar is higher
                    # there.
                    limit = (detector.threshold
                             if detector is not None
                             and config_index in visited
                             else self.novel_config_tolerance)
                    anomalous = (adapt and detector is not None
                                 and deviation > limit)

                    if anomalous:
                        # Let the detector accumulate evidence instead of
                        # silently absorbing the anomaly into one entry.
                        if detector.update(expected, measurement.rate,
                                           threshold=limit):
                            estimate = self._recalibrate(profile, estimate)
                            rates = estimate.rates.copy()
                            powers = estimate.powers.copy()
                            minimizer = EnergyMinimizer(
                                rates, powers, self.machine.idle_power())
                            visited.clear()
                            reestimations += 1
                            qspan.set_attribute("recalibrated", True)
                            ob.metrics.inc("reestimations_total")
                            logger.info(
                                "phase change: re-calibrated inline",
                                extra={"fields": {
                                    "quantum": quantum_index,
                                    "deviation": deviation,
                                    "reestimations": reestimations}})
                            # Re-calibration consumed wall-clock time, but
                            # the application kept making progress while
                            # sampled.
                            time_left -= estimate.sampling_time
                            work_left -= estimate.sampling_heartbeats
                    else:
                        if adapt and detector is not None:
                            detector.update(expected, measurement.rate,
                                            threshold=limit)
                        visited.add(config_index)
                        if (abs(measurement.rate - rates[config_index])
                                > 0.02 * rates[config_index]
                                or abs(measurement.system_power
                                       - powers[config_index])
                                > 0.02 * powers[config_index]):
                            # Routine feedback: fold the measurement into
                            # this configuration's entry (gradient-ascent
                            # correction).
                            rates[config_index] = measurement.rate
                            powers[config_index] = measurement.system_power
                            minimizer = EnergyMinimizer(
                                rates, powers, self.machine.idle_power())
                    if ladder is not None:
                        ladder.note_healthy_quantum()

            self._sync_clock(anchor)
            work_done = work - max(work_left, 0.0)
            met_target = work_done >= 0.99 * work
            run_span.set_attribute("work_done", work_done)
            run_span.set_attribute("met_target", met_target)
            run_span.set_attribute("reestimations", reestimations)
            ob.metrics.set_gauge(
                "constraint_violation_ratio",
                max(0.0, 1.0 - work_done / work) if work > 0 else 0.0)

        if not met_target:
            logger.debug("performance demand missed",
                         extra={"fields": {"work_done": work_done,
                                           "work_target": work}})
        #: Exposed so phased runs can carry re-calibrated estimates forward.
        self.last_estimate = estimate
        return RunReport(
            energy=self.machine.total_energy - energy_before,
            work_done=work_done, work_target=work, deadline=deadline,
            met_target=met_target,
            reestimations=reestimations,
            power_trace=power_trace, rate_trace=rate_trace,
        )

    def _next_slot(self, minimizer: EnergyMinimizer, work_left: float,
                   time_left: float) -> Optional[Slot]:
        """Pick the next residency (configuration + time share).

        Solves the remaining-horizon LP and executes its *slower* slot
        first (the faster slot retains flexibility for later quanta),
        bounded by that slot's planned duration.  When the demand
        exceeds the estimated capacity — the model was too optimistic or
        time was lost — fall back to the estimated fastest
        configuration, which is the "gradient ascent until the demand is
        met" behaviour the paper describes.
        """
        required = work_left / time_left
        if required > minimizer.max_rate:
            return Slot(int(np.argmax(minimizer.rates)), time_left)
        # Plan for slightly more work than strictly remains: estimated
        # rates on the frontier's legs are optimistic on average (the
        # winner's curse of choosing argmax-looking configurations), and
        # the margin keeps mid-course shortfalls recoverable.
        padded_work = min(work_left * (1.0 + self.safety_margin),
                          minimizer.max_rate * time_left)
        schedule = minimizer.solve(padded_work, time_left)
        # Execute the work-bearing legs before the idle leg: under
        # deadline-energy accounting the order does not change the
        # energy, and finishing the work early is robust to noise and
        # quantum granularity.  Among work legs, the slower (cheaper)
        # one runs first.
        for slot in schedule:
            if slot.config_index is not None:
                return slot
        return None

    def _recalibrate(self, profile: ApplicationProfile,
                     previous: TradeoffEstimate) -> TradeoffEstimate:
        """Inline re-calibration after a detected phase change.

        Uses short sampling windows to bound the disruption.  If the
        estimator cannot refit (e.g. online regression with too few
        samples), the previous estimate is kept.
        """
        try:
            return self.calibrate(profile, sample_window=0.25)
        except InsufficientSamplesError:
            return previous

    def _attempt_promotion(self, profile: ApplicationProfile
                           ) -> Tuple[Optional[TradeoffEstimate], float]:
        """Probe one ladder rung up with a short re-calibration.

        Returns ``(estimate, elapsed)``: the probe calibration's
        estimate (at whatever tier it landed — ``None`` when even
        sampling failed) and the simulated seconds the probe consumed.
        The breaker records the outcome either way, so a failed probe
        buys the faulty tier another full cooldown.
        """
        ladder = self.ladder
        previous = ladder.tier_index
        target = previous - 1
        clock_before = self.machine.clock
        ladder.tier_index = target
        try:
            estimate = self.calibrate(profile, sample_window=0.25)
        except InsufficientSamplesError:
            ladder.tier_index = previous
            ladder.record_failed_probe()
            return None, self.machine.clock - clock_before
        if ladder.tier_index <= target:
            ladder.record_promotion(ladder.tier_index)
        # else: the calibration fell back below the target, and its
        # demote_to already re-opened the breaker (the probe failed).
        return estimate, self.machine.clock - clock_before

    # ------------------------------------------------------------------
    # Checkpoint / recovery
    # ------------------------------------------------------------------
    def _snapshot_run_state(self, profile: ApplicationProfile, work: float,
                            deadline: float, adapt: bool, *,
                            quantum_index: int, time_left: float,
                            work_left: float, reestimations: int,
                            rates: np.ndarray, powers: np.ndarray,
                            estimate: TradeoffEstimate, visited: set,
                            power_trace: List[float],
                            rate_trace: List[float], energy_before: float,
                            detector: Optional[PhaseDetector]) -> dict:
        """A JSON-ready snapshot of the run loop at a quantum boundary.

        Captures the loop-carried state plus every random stream the
        remaining quanta will consume, so :meth:`resume` replays them
        bit-equal to the uninterrupted run.  Refuses to snapshot a
        thermally-modelled machine: the thermal integrator state is not
        serialized, and a silent mismatch would break the bit-equality
        guarantee.
        """
        machine = self.machine
        if machine.thermal is not None:
            raise CheckpointError(
                "checkpointing a thermally-modelled machine is not "
                "supported (the thermal integrator state is not "
                "serialized)")
        config_index = None
        if machine.config is not None:
            for i, candidate in enumerate(self.space):
                if candidate == machine.config:
                    config_index = i
                    break
        detector_state = None
        if detector is not None:
            detector_state = {"threshold": detector.threshold,
                              "patience": detector.patience,
                              "streak": detector._streak,
                              "detections": detector.detections}
        return {
            "schema_version": 1,
            "profile": profile.name,
            "work": float(work),
            "deadline": float(deadline),
            "adapt": bool(adapt),
            "quantum_index": int(quantum_index),
            "time_left": float(time_left),
            "work_left": float(work_left),
            "reestimations": int(reestimations),
            "rates": [float(x) for x in rates],
            "powers": [float(x) for x in powers],
            "estimate": {
                "rates": [float(x) for x in estimate.rates],
                "powers": [float(x) for x in estimate.powers],
                "estimator_name": estimate.estimator_name,
                "sampling_time": estimate.sampling_time,
                "sampling_energy": estimate.sampling_energy,
                "sampling_heartbeats": estimate.sampling_heartbeats,
                "fit_seconds": estimate.fit_seconds,
            },
            "visited": sorted(int(i) for i in visited),
            "power_trace": [float(x) for x in power_trace],
            "rate_trace": [float(x) for x in rate_trace],
            "energy_start": float(energy_before),
            "machine": {
                "clock": machine.clock,
                "total_energy": machine.total_energy,
                "total_heartbeats": machine.total_heartbeats,
                "config_index": config_index,
                "rng_state": _rng_state(machine._rng),
            },
            "sampler_rng": _rng_state(getattr(self.sampler, "_rng", None)),
            "estimator_rng": _rng_state(getattr(self.estimator, "_rng",
                                                None)),
            "detector": detector_state,
            "ladder": (self._ladder.snapshot()
                       if self._ladder is not None else None),
        }

    def resume(self, state: dict, profile: ApplicationProfile,
               detector: Optional[PhaseDetector] = None,
               checkpointer=None) -> RunReport:
        """Continue a checkpointed run to completion.

        ``state`` is a payload from :meth:`~repro.runtime.persistence.
        CheckpointManager.load`.  The controller must be constructed the
        same way as the one that took the checkpoint (same machine
        platform, space, estimator); the random streams and loop state
        are restored exactly, so on a fault-free plan the resumed run's
        :class:`RunReport` is bit-equal to the uninterrupted run's.
        """
        schema = state.get("schema_version", 1)
        if schema != 1:
            raise CheckpointError(
                f"checkpoint schema_version {schema!r} is not supported")
        if state.get("profile") != profile.name:
            raise CheckpointError(
                f"checkpoint was taken for application "
                f"{state.get('profile')!r}, not {profile.name!r}")
        machine = self.machine
        machine.load(profile)
        snap = state["machine"]
        machine.clock = float(snap["clock"])
        machine.total_energy = float(snap["total_energy"])
        machine.total_heartbeats = float(snap["total_heartbeats"])
        if snap.get("rng_state") is not None:
            machine._rng.bit_generator.state = snap["rng_state"]
        if snap.get("config_index") is not None:
            machine.apply(self.space[int(snap["config_index"])])
        sampler_rng = getattr(self.sampler, "_rng", None)
        if sampler_rng is not None and state.get("sampler_rng") is not None:
            sampler_rng.bit_generator.state = state["sampler_rng"]
        estimator_rng = getattr(self.estimator, "_rng", None)
        if (estimator_rng is not None
                and state.get("estimator_rng") is not None):
            estimator_rng.bit_generator.state = state["estimator_rng"]
        if state.get("ladder") is not None:
            self.ladder.restore(state["ladder"])
        adapt = bool(state.get("adapt", False))
        det_state = state.get("detector")
        if det_state is not None:
            if detector is None:
                detector = PhaseDetector(threshold=det_state["threshold"],
                                         patience=det_state["patience"])
            detector._streak = int(det_state["streak"])
            detector.detections = int(det_state["detections"])
        est = state["estimate"]
        estimate = TradeoffEstimate(
            rates=np.asarray(est["rates"], dtype=float),
            powers=np.asarray(est["powers"], dtype=float),
            estimator_name=est["estimator_name"],
            sampling_time=est["sampling_time"],
            sampling_energy=est["sampling_energy"],
            sampling_heartbeats=est["sampling_heartbeats"],
            fit_seconds=est["fit_seconds"])
        with self._obs_scope():
            return self._run_traced(profile, float(state["work"]),
                                    float(state["deadline"]), estimate,
                                    adapt, detector,
                                    checkpointer=checkpointer,
                                    resume_state=state)

    # ------------------------------------------------------------------
    # Phased workloads (Section 6.6)
    # ------------------------------------------------------------------
    def run_phased(self, workload: PhasedWorkload,
                   estimate: Optional[TradeoffEstimate] = None,
                   adapt: bool = True) -> List[RunReport]:
        """Execute a phased workload, one report per phase.

        The first phase's profile is used for initial calibration when
        no estimate is supplied.  Later phases inherit the most recent
        estimate; with ``adapt=True`` the detector will notice the model
        mismatch and trigger re-calibration (the Section 6.6 scenario).
        """
        if estimate is None:
            estimate = self.calibrate(workload.phases[0].profile)
        detector = PhaseDetector() if adapt else None
        reports: List[RunReport] = []
        for phase in workload:
            report = self.run(phase.profile, work=float(phase.frames),
                              deadline=phase.duration, estimate=estimate,
                              adapt=adapt, detector=detector)
            estimate = self.last_estimate
            reports.append(report)
        return reports
