"""The LEO runtime: sample, estimate, optimize, actuate (Section 5.4).

:class:`RuntimeController` drives the simulated machine the way the
paper's runtime drives its server:

1. **Calibrate** — apply a handful of sampled configurations, measure
   heartbeat rate and power in each (the "minuscule sampling overhead"
   of Section 6.7), and hand the observations to an estimator to
   complete both curves.
2. **Run** — solve the Eq. (1) LP on the estimated tradeoffs, execute
   the schedule in short quanta, and re-solve each quantum from the
   *measured* progress, which is the gradient-ascent-style feedback that
   lets every approach meet its performance goal (Section 6.6).
3. **Adapt** — optionally watch for phase changes through a
   :class:`~repro.runtime.phase_detector.PhaseDetector` and re-calibrate
   when the model stops matching reality.

Energy is accounted on the machine itself, so calibration and
re-calibration costs are charged to whoever incurs them.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional

import numpy as np

from repro.estimators.base import (
    EstimationProblem,
    Estimator,
    InsufficientSamplesError,
    normalize_problem,
)
from repro.optimize.lp import EnergyMinimizer
from repro.optimize.schedule import Slot
from repro.platform.config_space import ConfigurationSpace
from repro.platform.machine import Machine
from repro.runtime.phase_detector import PhaseDetector
from repro.runtime.sampling import RandomSampler, Sampler
from repro.workloads.phases import PhasedWorkload
from repro.workloads.profile import ApplicationProfile


@dataclasses.dataclass(frozen=True)
class TradeoffEstimate:
    """Estimated per-configuration rates and powers, with provenance.

    Attributes:
        rates: Estimated heartbeat rates, shape ``(n,)``, positive.
        powers: Estimated system powers, shape ``(n,)``, positive.
        estimator_name: Which approach produced the estimate.
        sampling_time: Simulated seconds spent measuring samples.
        sampling_energy: Joules spent measuring samples.
        sampling_heartbeats: Heartbeats the application completed during
            the sampling windows (it keeps running while being
            measured; inline re-calibration credits these to the run).
        fit_seconds: Wall-clock seconds the estimator itself took — the
            paper's Section 6.7 overhead figure.
    """

    rates: np.ndarray
    powers: np.ndarray
    estimator_name: str
    sampling_time: float = 0.0
    sampling_energy: float = 0.0
    sampling_heartbeats: float = 0.0
    fit_seconds: float = 0.0

    @classmethod
    def from_truth(cls, rates: np.ndarray, powers: np.ndarray
                   ) -> "TradeoffEstimate":
        """An oracle estimate: the exhaustive-search ground truth."""
        return cls(rates=np.asarray(rates, dtype=float),
                   powers=np.asarray(powers, dtype=float),
                   estimator_name="exhaustive")


@dataclasses.dataclass
class RunReport:
    """Outcome of one controlled execution window.

    Attributes:
        energy: Joules consumed over the window (including any inline
            re-calibration).
        work_done: Heartbeats completed.
        work_target: Heartbeats demanded.
        deadline: Window length in simulated seconds.
        met_target: Whether the demand was met (within 1 % tolerance,
            absorbing measurement noise on the final quantum).
        reestimations: Phase-change re-calibrations performed.
        power_trace: Mean power of each executed quantum, for the
            Figure 13-style time series.
        rate_trace: Measured rate of each executed quantum.
    """

    energy: float
    work_done: float
    work_target: float
    deadline: float
    met_target: bool
    reestimations: int
    power_trace: List[float]
    rate_trace: List[float]


class RuntimeController:
    """Sample/estimate/optimize/actuate loop over a simulated machine.

    Args:
        machine: The platform to drive.
        space: Configuration space the machine exposes.
        estimator: Approach used to complete the sampled curves.  The
            same instance estimates performance (in normalized space)
            and power (in absolute watts).
        prior_rates: ``(M-1, n)`` offline rate table, or ``None``.
        prior_powers: ``(M-1, n)`` offline power table, or ``None``.
        sampler: Strategy choosing which configurations to measure.
        sample_count: Configurations measured per calibration.
        sample_window: Seconds per sample measurement.
        quantum_fraction: Control quantum as a fraction of the deadline.
    """

    def __init__(self, machine: Machine, space: ConfigurationSpace,
                 estimator: Estimator,
                 prior_rates: Optional[np.ndarray] = None,
                 prior_powers: Optional[np.ndarray] = None,
                 sampler: Optional[Sampler] = None,
                 sample_count: int = 20,
                 sample_window: float = 1.0,
                 quantum_fraction: float = 0.05,
                 novel_config_tolerance: float = 0.35,
                 safety_margin: float = 0.04) -> None:
        if sample_count < 1:
            raise ValueError(f"sample_count must be >= 1, got {sample_count}")
        if sample_window <= 0:
            raise ValueError(f"sample_window must be positive, got {sample_window}")
        if not 0 < quantum_fraction <= 1:
            raise ValueError(
                f"quantum_fraction must be in (0, 1], got {quantum_fraction}"
            )
        if novel_config_tolerance <= 0:
            raise ValueError(
                f"novel_config_tolerance must be positive, got "
                f"{novel_config_tolerance}"
            )
        if safety_margin < 0:
            raise ValueError(
                f"safety_margin must be >= 0, got {safety_margin}"
            )
        self.machine = machine
        self.space = space
        self.estimator = estimator
        self.prior_rates = prior_rates
        self.prior_powers = prior_powers
        self.sampler = sampler if sampler is not None else RandomSampler()
        self.sample_count = sample_count
        self.sample_window = sample_window
        self.quantum_fraction = quantum_fraction
        self.novel_config_tolerance = novel_config_tolerance
        self.safety_margin = safety_margin
        #: The estimate in force at the end of the most recent run().
        self.last_estimate: Optional[TradeoffEstimate] = None

    # ------------------------------------------------------------------
    # Calibration: sample + estimate
    # ------------------------------------------------------------------
    def calibrate(self, profile: ApplicationProfile,
                  sample_count: Optional[int] = None,
                  sample_window: Optional[float] = None) -> TradeoffEstimate:
        """Measure sampled configurations and estimate both curves."""
        count = sample_count if sample_count is not None else self.sample_count
        window = sample_window if sample_window is not None else self.sample_window
        self.machine.load(profile)
        energy_before = self.machine.total_energy
        clock_before = self.machine.clock

        indices = self.sampler.select(len(self.space), count)
        rates = np.empty(indices.size)
        powers = np.empty(indices.size)
        heartbeats = 0.0
        for j, i in enumerate(indices):
            self.machine.apply(self.space[int(i)])
            measurement = self.machine.run_for(window)
            rates[j] = measurement.rate
            powers[j] = measurement.system_power
            heartbeats += measurement.heartbeats

        features = self.space.feature_matrix()
        started = time.perf_counter()
        rate_curve = self._estimate_rates(features, indices, rates)
        power_curve = self._estimate_powers(features, indices, powers)
        fit_seconds = time.perf_counter() - started

        return TradeoffEstimate(
            rates=rate_curve, powers=power_curve,
            estimator_name=self.estimator.name,
            sampling_time=self.machine.clock - clock_before,
            sampling_energy=self.machine.total_energy - energy_before,
            sampling_heartbeats=heartbeats,
            fit_seconds=fit_seconds,
        )

    def _estimate_rates(self, features: np.ndarray, indices: np.ndarray,
                        rates: np.ndarray) -> np.ndarray:
        problem = EstimationProblem(
            features=features, prior=self.prior_rates,
            observed_indices=indices, observed_values=rates)
        normalized, scale = normalize_problem(problem)
        curve = self.estimator.estimate(normalized) * scale
        return self._clip_positive(curve, rates)

    def _estimate_powers(self, features: np.ndarray, indices: np.ndarray,
                         powers: np.ndarray) -> np.ndarray:
        problem = EstimationProblem(
            features=features, prior=self.prior_powers,
            observed_indices=indices, observed_values=powers)
        curve = self.estimator.estimate(problem)
        return self._clip_positive(curve, powers)

    @staticmethod
    def _clip_positive(curve: np.ndarray, observations: np.ndarray
                       ) -> np.ndarray:
        """Floor estimates at a sliver of the smallest observation.

        Negative rates or powers are physically meaningless and would
        break the frontier; real observations are strictly positive.
        """
        floor = 1e-3 * float(np.min(observations))
        return np.maximum(curve, max(floor, 1e-12))

    # ------------------------------------------------------------------
    # Controlled execution
    # ------------------------------------------------------------------
    def run(self, profile: ApplicationProfile, work: float, deadline: float,
            estimate: TradeoffEstimate, adapt: bool = False,
            detector: Optional[PhaseDetector] = None) -> RunReport:
        """Execute ``work`` heartbeats of ``profile`` within ``deadline``.

        Re-solves the LP every quantum from measured progress.  With
        ``adapt=True`` a phase detector may trigger an inline
        re-calibration, whose time and energy are charged to this run.
        """
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self.machine.load(profile)
        if adapt and detector is None:
            detector = PhaseDetector()

        # Local working copies: measured feedback corrects the executed
        # configurations, which is the runtime's gradient-ascent behaviour
        # ("all use gradient ascent to increase performance until the
        # demand is met", Section 6.6).
        rates = estimate.rates.copy()
        powers = estimate.powers.copy()
        minimizer = EnergyMinimizer(rates, powers, self.machine.idle_power())
        energy_before = self.machine.total_energy
        quantum = deadline * self.quantum_fraction
        time_left = deadline
        work_left = work
        reestimations = 0
        visited: set = set()
        power_trace: List[float] = []
        rate_trace: List[float] = []

        while time_left > 1e-9 * deadline:
            step = min(quantum, time_left)
            if work_left <= 1e-9 * max(work, 1.0):
                self.machine.idle_for(step)
                power_trace.append(self.machine.idle_power())
                rate_trace.append(0.0)
                time_left -= step
                continue

            slot = self._next_slot(minimizer, work_left, time_left)
            if slot is None or slot.config_index is None:
                self.machine.idle_for(step)
                power_trace.append(self.machine.idle_power())
                rate_trace.append(0.0)
                time_left -= step
                continue
            config_index = slot.config_index
            # Respect the plan: the slow leg only gets its allotted
            # share of the remaining window (running it longer starves
            # the fast leg and misses the work target).
            step = min(step, max(slot.duration, 1e-3 * quantum))

            # Trim the step so the work is not overshot at high power:
            # once the remaining work needs less than a quantum at this
            # configuration's (believed) rate, run only that long.
            believed_rate = float(rates[config_index])
            if believed_rate > 0:
                step = min(step, max(work_left / believed_rate, 1e-6))
            self.machine.apply(self.space[config_index])
            measurement = self.machine.run_for(step)
            work_left -= measurement.heartbeats
            time_left -= step
            power_trace.append(measurement.system_power)
            rate_trace.append(measurement.rate)

            # The model's expectation before feedback, for phase detection.
            expected = float(rates[config_index])
            deviation = (abs(measurement.rate - expected) / expected
                         if expected > 0 else 0.0)
            # Deviation at a previously *measured* configuration is
            # evidence of a behavioural change; at a first visit it may
            # just be estimation error, so the bar is higher there.
            limit = (detector.threshold
                     if detector is not None and config_index in visited
                     else self.novel_config_tolerance)
            anomalous = adapt and detector is not None and deviation > limit

            if anomalous:
                # Let the detector accumulate evidence instead of
                # silently absorbing the anomaly into one entry.
                if detector.update(expected, measurement.rate,
                                   threshold=limit):
                    estimate = self._recalibrate(profile, estimate)
                    rates = estimate.rates.copy()
                    powers = estimate.powers.copy()
                    minimizer = EnergyMinimizer(rates, powers,
                                                self.machine.idle_power())
                    visited.clear()
                    reestimations += 1
                    # Re-calibration consumed wall-clock time, but the
                    # application kept making progress while sampled.
                    time_left -= estimate.sampling_time
                    work_left -= estimate.sampling_heartbeats
            else:
                if adapt and detector is not None:
                    detector.update(expected, measurement.rate,
                                    threshold=limit)
                visited.add(config_index)
                if (abs(measurement.rate - rates[config_index])
                        > 0.02 * rates[config_index]
                        or abs(measurement.system_power
                               - powers[config_index])
                        > 0.02 * powers[config_index]):
                    # Routine feedback: fold the measurement into this
                    # configuration's entry (gradient-ascent correction).
                    rates[config_index] = measurement.rate
                    powers[config_index] = measurement.system_power
                    minimizer = EnergyMinimizer(rates, powers,
                                                self.machine.idle_power())

        work_done = work - max(work_left, 0.0)
        #: Exposed so phased runs can carry re-calibrated estimates forward.
        self.last_estimate = estimate
        return RunReport(
            energy=self.machine.total_energy - energy_before,
            work_done=work_done, work_target=work, deadline=deadline,
            met_target=work_done >= 0.99 * work,
            reestimations=reestimations,
            power_trace=power_trace, rate_trace=rate_trace,
        )

    def _next_slot(self, minimizer: EnergyMinimizer, work_left: float,
                   time_left: float) -> Optional[Slot]:
        """Pick the next residency (configuration + time share).

        Solves the remaining-horizon LP and executes its *slower* slot
        first (the faster slot retains flexibility for later quanta),
        bounded by that slot's planned duration.  When the demand
        exceeds the estimated capacity — the model was too optimistic or
        time was lost — fall back to the estimated fastest
        configuration, which is the "gradient ascent until the demand is
        met" behaviour the paper describes.
        """
        required = work_left / time_left
        if required > minimizer.max_rate:
            return Slot(int(np.argmax(minimizer.rates)), time_left)
        # Plan for slightly more work than strictly remains: estimated
        # rates on the frontier's legs are optimistic on average (the
        # winner's curse of choosing argmax-looking configurations), and
        # the margin keeps mid-course shortfalls recoverable.
        padded_work = min(work_left * (1.0 + self.safety_margin),
                          minimizer.max_rate * time_left)
        schedule = minimizer.solve(padded_work, time_left)
        # Execute the work-bearing legs before the idle leg: under
        # deadline-energy accounting the order does not change the
        # energy, and finishing the work early is robust to noise and
        # quantum granularity.  Among work legs, the slower (cheaper)
        # one runs first.
        for slot in schedule:
            if slot.config_index is not None:
                return slot
        return None

    def _recalibrate(self, profile: ApplicationProfile,
                     previous: TradeoffEstimate) -> TradeoffEstimate:
        """Inline re-calibration after a detected phase change.

        Uses short sampling windows to bound the disruption.  If the
        estimator cannot refit (e.g. online regression with too few
        samples), the previous estimate is kept.
        """
        try:
            return self.calibrate(profile, sample_window=0.25)
        except InsufficientSamplesError:
            return previous

    # ------------------------------------------------------------------
    # Phased workloads (Section 6.6)
    # ------------------------------------------------------------------
    def run_phased(self, workload: PhasedWorkload,
                   estimate: Optional[TradeoffEstimate] = None,
                   adapt: bool = True) -> List[RunReport]:
        """Execute a phased workload, one report per phase.

        The first phase's profile is used for initial calibration when
        no estimate is supplied.  Later phases inherit the most recent
        estimate; with ``adapt=True`` the detector will notice the model
        mismatch and trigger re-calibration (the Section 6.6 scenario).
        """
        if estimate is None:
            estimate = self.calibrate(workload.phases[0].profile)
        detector = PhaseDetector() if adapt else None
        reports: List[RunReport] = []
        for phase in workload:
            report = self.run(phase.profile, work=float(phase.frames),
                              deadline=phase.duration, estimate=estimate,
                              adapt=adapt, detector=detector)
            estimate = self.last_estimate
            reports.append(report)
        return reports
