"""The LEO runtime: sample, estimate, optimize, actuate (Section 5.4).

:class:`RuntimeController` drives the simulated machine the way the
paper's runtime drives its server:

1. **Calibrate** — apply a handful of sampled configurations, measure
   heartbeat rate and power in each (the "minuscule sampling overhead"
   of Section 6.7), and hand the observations to an estimator to
   complete both curves.
2. **Run** — solve the Eq. (1) LP on the estimated tradeoffs, execute
   the schedule in short quanta, and re-solve each quantum from the
   *measured* progress, which is the gradient-ascent-style feedback that
   lets every approach meet its performance goal (Section 6.6).
3. **Adapt** — optionally watch for phase changes through a
   :class:`~repro.runtime.phase_detector.PhaseDetector` and re-calibrate
   when the model stops matching reality.

Energy is accounted on the machine itself, so calibration and
re-calibration costs are charged to whoever incurs them.
"""

from __future__ import annotations

import contextlib
import dataclasses
import logging
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.estimators.base import (
    EstimationProblem,
    Estimator,
    InsufficientSamplesError,
    normalize_problem,
)
from repro.obs import Observability, Span, Tracer, get_observability
from repro.obs import use as use_observability
from repro.optimize.lp import EnergyMinimizer
from repro.optimize.schedule import Slot
from repro.platform.config_space import ConfigurationSpace
from repro.platform.machine import Machine
from repro.runtime.phase_detector import PhaseDetector
from repro.runtime.sampling import RandomSampler, Sampler
from repro.workloads.phases import PhasedWorkload
from repro.workloads.profile import ApplicationProfile

logger = logging.getLogger(__name__)


class TradeoffEstimate:
    """Estimated per-configuration rates and powers, with provenance.

    The sampling/fit bookkeeping is *derived from the calibration spans*
    when present (``spans`` — the trace subtree recorded by
    :meth:`RuntimeController.calibrate`); the spans are the single
    source of truth, and the legacy keyword arguments remain as stored
    fallbacks for estimates built without calibration (persisted
    records, synthetic estimates, tests).

    Attributes:
        rates: Estimated heartbeat rates, shape ``(n,)``, positive.
        powers: Estimated system powers, shape ``(n,)``, positive.
        estimator_name: Which approach produced the estimate.
        spans: Calibration spans (``controller.calibrate`` and its
            children), empty for span-less estimates.
    """

    __slots__ = ("rates", "powers", "estimator_name", "spans",
                 "_sampling_time", "_sampling_energy",
                 "_sampling_heartbeats", "_fit_seconds")

    def __init__(self, rates: np.ndarray, powers: np.ndarray,
                 estimator_name: str, sampling_time: float = 0.0,
                 sampling_energy: float = 0.0,
                 sampling_heartbeats: float = 0.0,
                 fit_seconds: float = 0.0,
                 spans: Sequence[Span] = ()) -> None:
        self.rates = np.asarray(rates, dtype=float)
        self.powers = np.asarray(powers, dtype=float)
        self.estimator_name = estimator_name
        self.spans: Tuple[Span, ...] = tuple(spans)
        self._sampling_time = float(sampling_time)
        self._sampling_energy = float(sampling_energy)
        self._sampling_heartbeats = float(sampling_heartbeats)
        self._fit_seconds = float(fit_seconds)

    @classmethod
    def from_truth(cls, rates: np.ndarray, powers: np.ndarray
                   ) -> "TradeoffEstimate":
        """An oracle estimate: the exhaustive-search ground truth."""
        return cls(rates=np.asarray(rates, dtype=float),
                   powers=np.asarray(powers, dtype=float),
                   estimator_name="exhaustive")

    # -- span-derived bookkeeping ---------------------------------------
    def _span_attr_sum(self, span_name: str, attr: str) -> Optional[float]:
        """Sum ``attr`` over spans named ``span_name``; None if absent."""
        total, found = 0.0, False
        for span in self.spans:
            if span.name == span_name and attr in span.attributes:
                total += float(span.attributes[attr])
                found = True
        return total if found else None

    @property
    def sampling_time(self) -> float:
        """Simulated seconds spent measuring samples."""
        derived = self._span_attr_sum("controller.sample", "sampling_time")
        return derived if derived is not None else self._sampling_time

    @property
    def sampling_energy(self) -> float:
        """Joules spent measuring samples."""
        derived = self._span_attr_sum("controller.sample", "sampling_energy")
        return derived if derived is not None else self._sampling_energy

    @property
    def sampling_heartbeats(self) -> float:
        """Heartbeats completed during the sampling windows (the
        application keeps running while being measured; inline
        re-calibration credits these to the run)."""
        derived = self._span_attr_sum("controller.sample",
                                      "sampling_heartbeats")
        return derived if derived is not None else self._sampling_heartbeats

    @property
    def fit_seconds(self) -> float:
        """Wall-clock seconds the estimator itself took (both fitted
        quantities) — the paper's Section 6.7 overhead figure, read off
        the ``estimator.fit`` spans."""
        durations = [span.duration for span in self.spans
                     if span.name == "estimator.fit"]
        return sum(durations) if durations else self._fit_seconds

    def __repr__(self) -> str:
        return (f"TradeoffEstimate({self.estimator_name!r}, "
                f"n={self.rates.size}, "
                f"sampling_time={self.sampling_time:.3f}, "
                f"fit_seconds={self.fit_seconds:.3f})")


@dataclasses.dataclass
class RunReport:
    """Outcome of one controlled execution window.

    Attributes:
        energy: Joules consumed over the window (including any inline
            re-calibration).
        work_done: Heartbeats completed.
        work_target: Heartbeats demanded.
        deadline: Window length in simulated seconds.
        met_target: Whether the demand was met (within 1 % tolerance,
            absorbing measurement noise on the final quantum).
        reestimations: Phase-change re-calibrations performed.
        power_trace: Mean power of each executed quantum, for the
            Figure 13-style time series.
        rate_trace: Measured rate of each executed quantum.
    """

    energy: float
    work_done: float
    work_target: float
    deadline: float
    met_target: bool
    reestimations: int
    power_trace: List[float]
    rate_trace: List[float]


class RuntimeController:
    """Sample/estimate/optimize/actuate loop over a simulated machine.

    Args:
        machine: The platform to drive.
        space: Configuration space the machine exposes.
        estimator: Approach used to complete the sampled curves.  The
            same instance estimates performance (in normalized space)
            and power (in absolute watts).
        prior_rates: ``(M-1, n)`` offline rate table, or ``None``.
        prior_powers: ``(M-1, n)`` offline power table, or ``None``.
        sampler: Strategy choosing which configurations to measure.
        sample_count: Configurations measured per calibration.
        sample_window: Seconds per sample measurement.
        quantum_fraction: Control quantum as a fraction of the deadline.
        observability: Optional tracer/metrics bundle installed as the
            ambient context for every :meth:`calibrate` / :meth:`run`
            call; ``None`` (the default) inherits whatever the caller
            installed via :func:`repro.obs.use`.
    """

    def __init__(self, machine: Machine, space: ConfigurationSpace,
                 estimator: Estimator,
                 prior_rates: Optional[np.ndarray] = None,
                 prior_powers: Optional[np.ndarray] = None,
                 sampler: Optional[Sampler] = None,
                 sample_count: int = 20,
                 sample_window: float = 1.0,
                 quantum_fraction: float = 0.05,
                 novel_config_tolerance: float = 0.35,
                 safety_margin: float = 0.04,
                 observability: Optional[Observability] = None) -> None:
        if sample_count < 1:
            raise ValueError(f"sample_count must be >= 1, got {sample_count}")
        if sample_window <= 0:
            raise ValueError(f"sample_window must be positive, got {sample_window}")
        if not 0 < quantum_fraction <= 1:
            raise ValueError(
                f"quantum_fraction must be in (0, 1], got {quantum_fraction}"
            )
        if novel_config_tolerance <= 0:
            raise ValueError(
                f"novel_config_tolerance must be positive, got "
                f"{novel_config_tolerance}"
            )
        if safety_margin < 0:
            raise ValueError(
                f"safety_margin must be >= 0, got {safety_margin}"
            )
        self.machine = machine
        self.space = space
        self.estimator = estimator
        self.prior_rates = prior_rates
        self.prior_powers = prior_powers
        # The default sampler is explicitly seeded: an OS-entropy default
        # would make calibration nondeterministic, which silently breaks
        # result equality when experiments fan out across processes.
        # Callers wanting independent draws pass a per-cell-seeded
        # sampler (RandomSampler(seed=cell_seed)).
        self.sampler = sampler if sampler is not None else RandomSampler(seed=0)
        self.sample_count = sample_count
        self.sample_window = sample_window
        self.quantum_fraction = quantum_fraction
        self.novel_config_tolerance = novel_config_tolerance
        self.safety_margin = safety_margin
        self.observability = observability
        #: The estimate in force at the end of the most recent run().
        self.last_estimate: Optional[TradeoffEstimate] = None

    def _obs_scope(self):
        """Install the controller's bundle, if it has one."""
        return use_observability(self.observability)

    # ------------------------------------------------------------------
    # Calibration: sample + estimate
    # ------------------------------------------------------------------
    def calibrate(self, profile: ApplicationProfile,
                  sample_count: Optional[int] = None,
                  sample_window: Optional[float] = None) -> TradeoffEstimate:
        """Measure sampled configurations and estimate both curves.

        The returned estimate carries the calibration's trace subtree
        (``controller.calibrate`` → ``controller.sample`` +
        ``estimator.fit`` → ...); its sampling/fit bookkeeping is read
        off those spans.  When no tracer is installed, the spans are
        recorded into a private bookkeeping tracer so the estimate is
        self-describing either way.
        """
        count = sample_count if sample_count is not None else self.sample_count
        window = sample_window if sample_window is not None else self.sample_window
        with self._obs_scope():
            ambient = get_observability()
            if ambient.tracer.is_recording:
                scope = contextlib.nullcontext(ambient)
            else:
                # Spans are the estimate's single source of truth, so
                # calibration always records into *some* tracer — a
                # throwaway one when tracing is disabled (a handful of
                # objects per calibration, invisible next to the fit).
                scope = use_observability(
                    Observability(tracer=Tracer(), metrics=ambient.metrics))
            with scope as active:
                tracer = active.tracer
                mark = tracer.num_finished
                with tracer.span("controller.calibrate",
                                 estimator=self.estimator.name,
                                 sample_count=count,
                                 sample_window=window):
                    self.machine.load(profile)
                    energy_before = self.machine.total_energy
                    clock_before = self.machine.clock

                    with tracer.span("controller.sample") as sample_span:
                        indices = self.sampler.select(len(self.space), count)
                        rates = np.empty(indices.size)
                        powers = np.empty(indices.size)
                        heartbeats = 0.0
                        for j, i in enumerate(indices):
                            self.machine.apply(self.space[int(i)])
                            measurement = self.machine.run_for(window)
                            rates[j] = measurement.rate
                            powers[j] = measurement.system_power
                            heartbeats += measurement.heartbeats
                        sampling_time = self.machine.clock - clock_before
                        sampling_energy = (self.machine.total_energy
                                           - energy_before)
                        sample_span.set_attribute("num_samples",
                                                  int(indices.size))
                        sample_span.set_attribute("sampling_time",
                                                  sampling_time)
                        sample_span.set_attribute("sampling_energy",
                                                  sampling_energy)
                        sample_span.set_attribute("sampling_heartbeats",
                                                  heartbeats)
                    active.metrics.inc("sampling_energy_joules",
                                       sampling_energy)

                    features = self.space.feature_matrix()
                    rate_curve = self._estimate_rates(features, indices,
                                                      rates)
                    power_curve = self._estimate_powers(features, indices,
                                                        powers)
                spans = tracer.finished_since(mark)

        return TradeoffEstimate(
            rates=rate_curve, powers=power_curve,
            estimator_name=self.estimator.name,
            spans=spans,
        )

    def _estimate_rates(self, features: np.ndarray, indices: np.ndarray,
                        rates: np.ndarray) -> np.ndarray:
        problem = EstimationProblem(
            features=features, prior=self.prior_rates,
            observed_indices=indices, observed_values=rates)
        normalized, scale = normalize_problem(problem)
        curve = self.estimator.estimate(normalized) * scale
        return self._clip_positive(curve, rates)

    def _estimate_powers(self, features: np.ndarray, indices: np.ndarray,
                         powers: np.ndarray) -> np.ndarray:
        problem = EstimationProblem(
            features=features, prior=self.prior_powers,
            observed_indices=indices, observed_values=powers)
        curve = self.estimator.estimate(problem)
        return self._clip_positive(curve, powers)

    @staticmethod
    def _clip_positive(curve: np.ndarray, observations: np.ndarray
                       ) -> np.ndarray:
        """Floor estimates at a sliver of the smallest observation.

        Negative rates or powers are physically meaningless and would
        break the frontier; real observations are strictly positive.
        """
        floor = 1e-3 * float(np.min(observations))
        return np.maximum(curve, max(floor, 1e-12))

    # ------------------------------------------------------------------
    # Controlled execution
    # ------------------------------------------------------------------
    def run(self, profile: ApplicationProfile, work: float, deadline: float,
            estimate: TradeoffEstimate, adapt: bool = False,
            detector: Optional[PhaseDetector] = None) -> RunReport:
        """Execute ``work`` heartbeats of ``profile`` within ``deadline``.

        Re-solves the LP every quantum from measured progress.  With
        ``adapt=True`` a phase detector may trigger an inline
        re-calibration, whose time and energy are charged to this run.
        """
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        with self._obs_scope():
            return self._run_traced(profile, work, deadline, estimate,
                                    adapt, detector)

    def _run_traced(self, profile: ApplicationProfile, work: float,
                    deadline: float, estimate: TradeoffEstimate,
                    adapt: bool, detector: Optional[PhaseDetector]
                    ) -> RunReport:
        ob = get_observability()
        tracer = ob.tracer
        self.machine.load(profile)
        if adapt and detector is None:
            detector = PhaseDetector()

        # Local working copies: measured feedback corrects the executed
        # configurations, which is the runtime's gradient-ascent behaviour
        # ("all use gradient ascent to increase performance until the
        # demand is met", Section 6.6).
        rates = estimate.rates.copy()
        powers = estimate.powers.copy()
        minimizer = EnergyMinimizer(rates, powers, self.machine.idle_power())
        energy_before = self.machine.total_energy
        quantum = deadline * self.quantum_fraction
        time_left = deadline
        work_left = work
        reestimations = 0
        quantum_index = 0
        visited: set = set()
        power_trace: List[float] = []
        rate_trace: List[float] = []

        with tracer.span("controller.run", work=work, deadline=deadline,
                         estimator=estimate.estimator_name,
                         adapt=adapt) as run_span:
            while time_left > 1e-9 * deadline:
                quantum_index += 1
                ob.metrics.inc("quanta_total")
                with tracer.span("controller.quantum",
                                 index=quantum_index) as qspan:
                    step = min(quantum, time_left)
                    if work_left <= 1e-9 * max(work, 1.0):
                        self.machine.idle_for(step)
                        power_trace.append(self.machine.idle_power())
                        rate_trace.append(0.0)
                        time_left -= step
                        qspan.set_attribute("idle", True)
                        continue

                    slot = self._next_slot(minimizer, work_left, time_left)
                    if slot is None or slot.config_index is None:
                        self.machine.idle_for(step)
                        power_trace.append(self.machine.idle_power())
                        rate_trace.append(0.0)
                        time_left -= step
                        qspan.set_attribute("idle", True)
                        continue
                    config_index = slot.config_index
                    # Respect the plan: the slow leg only gets its allotted
                    # share of the remaining window (running it longer
                    # starves the fast leg and misses the work target).
                    step = min(step, max(slot.duration, 1e-3 * quantum))

                    # Trim the step so the work is not overshot at high
                    # power: once the remaining work needs less than a
                    # quantum at this configuration's (believed) rate, run
                    # only that long.
                    believed_rate = float(rates[config_index])
                    if believed_rate > 0:
                        step = min(step, max(work_left / believed_rate, 1e-6))
                    self.machine.apply(self.space[config_index])
                    measurement = self.machine.run_for(step)
                    work_left -= measurement.heartbeats
                    time_left -= step
                    power_trace.append(measurement.system_power)
                    rate_trace.append(measurement.rate)
                    qspan.set_attribute("config_index", int(config_index))
                    qspan.set_attribute("step", step)
                    qspan.set_attribute("measured_rate", measurement.rate)
                    qspan.set_attribute("measured_power",
                                        measurement.system_power)

                    # The model's expectation before feedback, for phase
                    # detection.
                    expected = float(rates[config_index])
                    deviation = (abs(measurement.rate - expected) / expected
                                 if expected > 0 else 0.0)
                    # Deviation at a previously *measured* configuration is
                    # evidence of a behavioural change; at a first visit it
                    # may just be estimation error, so the bar is higher
                    # there.
                    limit = (detector.threshold
                             if detector is not None
                             and config_index in visited
                             else self.novel_config_tolerance)
                    anomalous = (adapt and detector is not None
                                 and deviation > limit)

                    if anomalous:
                        # Let the detector accumulate evidence instead of
                        # silently absorbing the anomaly into one entry.
                        if detector.update(expected, measurement.rate,
                                           threshold=limit):
                            estimate = self._recalibrate(profile, estimate)
                            rates = estimate.rates.copy()
                            powers = estimate.powers.copy()
                            minimizer = EnergyMinimizer(
                                rates, powers, self.machine.idle_power())
                            visited.clear()
                            reestimations += 1
                            qspan.set_attribute("recalibrated", True)
                            ob.metrics.inc("reestimations_total")
                            logger.info(
                                "phase change: re-calibrated inline",
                                extra={"fields": {
                                    "quantum": quantum_index,
                                    "deviation": deviation,
                                    "reestimations": reestimations}})
                            # Re-calibration consumed wall-clock time, but
                            # the application kept making progress while
                            # sampled.
                            time_left -= estimate.sampling_time
                            work_left -= estimate.sampling_heartbeats
                    else:
                        if adapt and detector is not None:
                            detector.update(expected, measurement.rate,
                                            threshold=limit)
                        visited.add(config_index)
                        if (abs(measurement.rate - rates[config_index])
                                > 0.02 * rates[config_index]
                                or abs(measurement.system_power
                                       - powers[config_index])
                                > 0.02 * powers[config_index]):
                            # Routine feedback: fold the measurement into
                            # this configuration's entry (gradient-ascent
                            # correction).
                            rates[config_index] = measurement.rate
                            powers[config_index] = measurement.system_power
                            minimizer = EnergyMinimizer(
                                rates, powers, self.machine.idle_power())

            work_done = work - max(work_left, 0.0)
            met_target = work_done >= 0.99 * work
            run_span.set_attribute("work_done", work_done)
            run_span.set_attribute("met_target", met_target)
            run_span.set_attribute("reestimations", reestimations)
            ob.metrics.set_gauge(
                "constraint_violation_ratio",
                max(0.0, 1.0 - work_done / work) if work > 0 else 0.0)

        if not met_target:
            logger.debug("performance demand missed",
                         extra={"fields": {"work_done": work_done,
                                           "work_target": work}})
        #: Exposed so phased runs can carry re-calibrated estimates forward.
        self.last_estimate = estimate
        return RunReport(
            energy=self.machine.total_energy - energy_before,
            work_done=work_done, work_target=work, deadline=deadline,
            met_target=met_target,
            reestimations=reestimations,
            power_trace=power_trace, rate_trace=rate_trace,
        )

    def _next_slot(self, minimizer: EnergyMinimizer, work_left: float,
                   time_left: float) -> Optional[Slot]:
        """Pick the next residency (configuration + time share).

        Solves the remaining-horizon LP and executes its *slower* slot
        first (the faster slot retains flexibility for later quanta),
        bounded by that slot's planned duration.  When the demand
        exceeds the estimated capacity — the model was too optimistic or
        time was lost — fall back to the estimated fastest
        configuration, which is the "gradient ascent until the demand is
        met" behaviour the paper describes.
        """
        required = work_left / time_left
        if required > minimizer.max_rate:
            return Slot(int(np.argmax(minimizer.rates)), time_left)
        # Plan for slightly more work than strictly remains: estimated
        # rates on the frontier's legs are optimistic on average (the
        # winner's curse of choosing argmax-looking configurations), and
        # the margin keeps mid-course shortfalls recoverable.
        padded_work = min(work_left * (1.0 + self.safety_margin),
                          minimizer.max_rate * time_left)
        schedule = minimizer.solve(padded_work, time_left)
        # Execute the work-bearing legs before the idle leg: under
        # deadline-energy accounting the order does not change the
        # energy, and finishing the work early is robust to noise and
        # quantum granularity.  Among work legs, the slower (cheaper)
        # one runs first.
        for slot in schedule:
            if slot.config_index is not None:
                return slot
        return None

    def _recalibrate(self, profile: ApplicationProfile,
                     previous: TradeoffEstimate) -> TradeoffEstimate:
        """Inline re-calibration after a detected phase change.

        Uses short sampling windows to bound the disruption.  If the
        estimator cannot refit (e.g. online regression with too few
        samples), the previous estimate is kept.
        """
        try:
            return self.calibrate(profile, sample_window=0.25)
        except InsufficientSamplesError:
            return previous

    # ------------------------------------------------------------------
    # Phased workloads (Section 6.6)
    # ------------------------------------------------------------------
    def run_phased(self, workload: PhasedWorkload,
                   estimate: Optional[TradeoffEstimate] = None,
                   adapt: bool = True) -> List[RunReport]:
        """Execute a phased workload, one report per phase.

        The first phase's profile is used for initial calibration when
        no estimate is supplied.  Later phases inherit the most recent
        estimate; with ``adapt=True`` the detector will notice the model
        mismatch and trigger re-calibration (the Section 6.6 scenario).
        """
        if estimate is None:
            estimate = self.calibrate(workload.phases[0].profile)
        detector = PhaseDetector() if adapt else None
        reports: List[RunReport] = []
        for phase in workload:
            report = self.run(phase.profile, work=float(phase.frames),
                              deadline=phase.duration, estimate=estimate,
                              adapt=adapt, detector=detector)
            estimate = self.last_estimate
            reports.append(report)
        return reports
