"""Uncertainty-guided calibration: an extension beyond the paper.

The paper samples configurations uniformly at random (Section 6.3) or on
a grid (Section 2).  But LEO's hierarchical model knows *where it is
uncertain*: the posterior covariance of the target's latent curve
(Eq. 3) has high diagonal entries exactly where no observation — of the
target or of a correlated configuration — constrains the estimate.

:class:`ActiveCalibrator` exploits that: it seeds with a few spread-out
samples, fits the model through the exact same pipeline the passive
runtime uses (:class:`~repro.estimators.leo.LEOEstimator` on a
normalized :class:`~repro.estimators.base.EstimationProblem`), and then
repeatedly measures the configuration whose posterior variance is
highest, refitting after each batch.  This is classic Bayesian active
learning (uncertainty sampling) applied to the paper's model;
``benchmarks/test_ablation_active.py`` quantifies the benefit against
random sampling at equal budgets.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.core.em import EMConfig
from repro.estimators.base import EstimationProblem, normalize_problem
from repro.estimators.leo import LEOEstimator
from repro.platform.config_space import ConfigurationSpace
from repro.platform.machine import Machine
from repro.runtime.sampling import GridSampler
from repro.workloads.profile import ApplicationProfile


@dataclasses.dataclass(frozen=True)
class ActiveCalibration:
    """Result of an active calibration pass.

    Attributes:
        indices: Configuration indices measured, in acquisition order.
        rates: Estimated full heartbeat-rate curve.
        powers: Estimated full power curve.
        rate_uncertainty: Final posterior standard deviation of the rate
            curve in the model's standardized space — a relative map of
            where the model is still unsure.
        sampling_time: Simulated seconds spent measuring.
        sampling_energy: Joules spent measuring.
    """

    indices: np.ndarray
    rates: np.ndarray
    powers: np.ndarray
    rate_uncertainty: np.ndarray
    sampling_time: float
    sampling_energy: float


class ActiveCalibrator:
    """Measure where the model is most uncertain, refit, repeat.

    Args:
        machine: Platform to drive.
        space: Its configuration space.
        prior_rates: ``(M-1, n)`` offline rate table.
        prior_powers: ``(M-1, n)`` offline power table.
        seed_count: Spread-out samples taken before the first fit.
        batch_size: Measurements between refits.
        sample_window: Seconds per measurement.
        em_config: EM budget per refit (kept small; refits are frequent).
    """

    def __init__(self, machine: Machine, space: ConfigurationSpace,
                 prior_rates: np.ndarray, prior_powers: np.ndarray,
                 seed_count: int = 4, batch_size: int = 2,
                 sample_window: float = 1.0,
                 em_config: EMConfig = EMConfig(max_iterations=3,
                                                tol=1e-4)) -> None:
        if seed_count < 2:
            raise ValueError(f"seed_count must be >= 2, got {seed_count}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if sample_window <= 0:
            raise ValueError(
                f"sample_window must be positive, got {sample_window}")
        self.machine = machine
        self.space = space
        self.prior_rates = np.asarray(prior_rates, dtype=float)
        self.prior_powers = np.asarray(prior_powers, dtype=float)
        self.seed_count = seed_count
        self.batch_size = batch_size
        self.sample_window = sample_window
        self.em_config = em_config

    def calibrate(self, profile: ApplicationProfile,
                  budget: int) -> ActiveCalibration:
        """Spend ``budget`` measurements as informatively as possible.

        The rate curve's posterior drives acquisition (performance shape
        is what varies most across applications); power is refit on the
        same samples.
        """
        n = len(self.space)
        if not self.seed_count <= budget <= n:
            raise ValueError(
                f"budget must be in [{self.seed_count}, {n}], got {budget}"
            )
        self.machine.load(profile)
        clock_before = self.machine.clock
        energy_before = self.machine.total_energy
        features = self.space.feature_matrix()

        taken: List[int] = [int(i) for i in
                            GridSampler().select(n, self.seed_count)]
        rate_obs: List[float] = []
        power_obs: List[float] = []
        for index in taken:
            rate, power = self._measure(index)
            rate_obs.append(rate)
            power_obs.append(power)

        while True:
            indices = np.array(taken)
            estimator = LEOEstimator(em_config=self.em_config)
            rate_problem = EstimationProblem(
                features=features, prior=self.prior_rates,
                observed_indices=indices,
                observed_values=np.array(rate_obs))
            normalized, scale = normalize_problem(rate_problem)
            rates = estimator.estimate(normalized) * scale
            target = estimator.last_fit.observations.target_row
            stddev = np.sqrt(np.maximum(
                estimator.last_fit.result.zvar[target], 0.0))
            if len(taken) >= budget:
                break
            for index in self._acquire(stddev, taken, budget):
                taken.append(index)
                rate, power = self._measure(index)
                rate_obs.append(rate)
                power_obs.append(power)

        power_problem = EstimationProblem(
            features=features, prior=self.prior_powers,
            observed_indices=np.array(taken),
            observed_values=np.array(power_obs))
        powers = LEOEstimator(em_config=self.em_config).estimate(
            power_problem)

        return ActiveCalibration(
            indices=np.array(taken),
            rates=np.maximum(rates, 1e-12),
            powers=np.maximum(powers, 1e-12),
            rate_uncertainty=stddev,
            sampling_time=self.machine.clock - clock_before,
            sampling_energy=self.machine.total_energy - energy_before,
        )

    # ------------------------------------------------------------------
    def _measure(self, index: int):
        self.machine.apply(self.space[index])
        measurement = self.machine.run_for(self.sample_window)
        return measurement.rate, measurement.system_power

    def _acquire(self, stddev: np.ndarray, taken: List[int],
                 budget: int) -> List[int]:
        """Next batch: highest-variance unmeasured configurations."""
        remaining = budget - len(taken)
        count = min(self.batch_size, remaining)
        ranked = stddev.copy()
        ranked[np.array(taken)] = -np.inf
        order = np.argsort(ranked)[::-1]
        return [int(i) for i in order[:count]]
