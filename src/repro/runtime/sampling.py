"""Strategies for choosing which configurations to sample online.

The motivational example observes 6 uniformly spaced core counts
(Section 2: "5, 10, ..., 30 cores"); the full evaluation lets LEO and the
online baseline "sample randomly select 20 configurations each"
(Section 6.3).  Both strategies are provided, plus a latin-hypercube-like
stratified option for the sampling ablation.

**Determinism under process fan-out.**  The randomized samplers carry a
private ``numpy`` Generator whose stream advances with every
:meth:`~Sampler.select` call.  Two hazards follow when experiment cells
run in parallel worker processes (see docs/PARALLELISM.md):

* an *unseeded* sampler (``seed=None``) draws from OS entropy, so the
  same cell gives different answers on different runs or workers;
* a *shared* sampler instance pickled into several workers duplicates
  its stream — "random" cells become correlated copies of each other.

The rule the experiment harness follows: construct a fresh sampler
inside each cell, seeded from the cell's payload
(``RandomSampler(seed=cell_seed)``).  The constructor seed is kept on
``self.seed`` so tests and harness code can verify it was set.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np


class Sampler(abc.ABC):
    """Chooses ``count`` distinct configuration indices out of ``n``."""

    name: str = "sampler"

    @abc.abstractmethod
    def select(self, num_configs: int, count: int) -> np.ndarray:
        """Return sorted unique indices, shape ``(count,)``."""

    @staticmethod
    def _validate(num_configs: int, count: int) -> None:
        if num_configs < 1:
            raise ValueError(f"num_configs must be >= 1, got {num_configs}")
        if not 1 <= count <= num_configs:
            raise ValueError(
                f"count must be in [1, {num_configs}], got {count}"
            )


class RandomSampler(Sampler):
    """Uniformly random distinct configurations (the Section 6.3 setup)."""

    name = "random"

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def select(self, num_configs: int, count: int) -> np.ndarray:
        self._validate(num_configs, count)
        picks = self._rng.choice(num_configs, size=count, replace=False)
        return np.sort(picks)


class GridSampler(Sampler):
    """Evenly spaced configurations (the Section 2 setup).

    For ``n = 32, count = 6`` this yields indices close to the paper's
    {5, 10, 15, 20, 25, 30} core choices.
    """

    name = "grid"

    def select(self, num_configs: int, count: int) -> np.ndarray:
        self._validate(num_configs, count)
        # Centers of `count` equal-width bins over the index range.
        centers = (np.arange(count) + 0.5) * num_configs / count
        picks = np.clip(np.floor(centers).astype(int), 0, num_configs - 1)
        return np.unique(picks)


class StratifiedSampler(Sampler):
    """One random pick per equal-width stratum of the index range.

    Combines the coverage of the grid with the tie-breaking of random
    sampling; used by the sampling-strategy ablation.
    """

    name = "stratified"

    def __init__(self, seed: Optional[int] = None) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def select(self, num_configs: int, count: int) -> np.ndarray:
        self._validate(num_configs, count)
        edges = np.linspace(0, num_configs, count + 1).astype(int)
        picks = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            hi = max(hi, lo + 1)
            picks.append(int(self._rng.integers(lo, hi)))
        return np.unique(picks)
