"""The LEO runtime: sampling, control loop, heuristics, facade."""

from repro.runtime.active_sampling import ActiveCalibration, ActiveCalibrator
from repro.runtime.controller import RunReport, RuntimeController, TradeoffEstimate
from repro.runtime.energy_manager import EnergyManager
from repro.runtime.feedback import HullRateController
from repro.runtime.governor import OndemandGovernor
from repro.runtime.persistence import CheckpointManager, EstimateStore
from repro.runtime.phase_detector import PhaseDetector
from repro.runtime.resilience import CircuitBreaker, DegradationLadder
from repro.runtime.race_to_idle import (
    RaceToIdleController,
    all_resources_config,
    race_to_idle_energy,
)
from repro.runtime.sampling import (
    GridSampler,
    RandomSampler,
    Sampler,
    StratifiedSampler,
)

__all__ = [
    "ActiveCalibration",
    "ActiveCalibrator",
    "RunReport",
    "RuntimeController",
    "TradeoffEstimate",
    "CheckpointManager",
    "CircuitBreaker",
    "DegradationLadder",
    "EnergyManager",
    "EstimateStore",
    "HullRateController",
    "OndemandGovernor",
    "PhaseDetector",
    "RaceToIdleController",
    "all_resources_config",
    "race_to_idle_energy",
    "GridSampler",
    "RandomSampler",
    "Sampler",
    "StratifiedSampler",
]
