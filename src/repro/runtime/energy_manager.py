"""EnergyManager: the one-stop facade over the whole stack.

Builds the machine, configuration space, offline dataset, estimator, and
controller, and exposes the paper's headline capability as one call:
*meet this performance demand while minimizing energy*.  Examples and
downstream users start here; the lower-level packages remain available
for anything the facade does not cover.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.estimators.registry import create_estimator
from repro.obs import Observability
from repro.obs import use as use_observability
from repro.platform.config_space import ConfigurationSpace
from repro.platform.machine import Machine
from repro.runtime.controller import RunReport, RuntimeController, TradeoffEstimate
from repro.runtime.race_to_idle import RaceToIdleController
from repro.runtime.sampling import RandomSampler
from repro.workloads.profile import ApplicationProfile
from repro.workloads.suite import paper_suite
from repro.workloads.traces import OfflineDataset


class EnergyManager:
    """Minimize energy under performance constraints on a simulated server.

    Args:
        estimator: Name of the estimation approach ("leo", "online",
            "offline") or any registered name.
        space: Configuration space; the paper's 1024-config space by
            default.
        profiles: Applications whose offline traces form the prior
            knowledge; the paper's 25-benchmark suite by default.
        seed: Seed for the machine's measurement noise and the sampler.
        sample_count: Configurations sampled per calibration.
        observability: Optional tracer/metrics bundle
            (:class:`repro.obs.Observability`) installed for every
            facade call; ``None`` inherits the ambient context.
    """

    def __init__(self, estimator: str = "leo",
                 space: Optional[ConfigurationSpace] = None,
                 profiles: Optional[Sequence[ApplicationProfile]] = None,
                 seed: int = 0, sample_count: int = 20,
                 sample_window: float = 1.0,
                 observability: Optional[Observability] = None) -> None:
        self.space = space if space is not None else ConfigurationSpace.paper_space()
        self.profiles = list(profiles) if profiles is not None else paper_suite()
        self.machine = Machine(self.space.topology, seed=seed)
        self.estimator_name = estimator
        self.observability = observability
        self._seed = seed
        self._sample_count = sample_count
        self._sample_window = sample_window
        self._dataset: Optional[OfflineDataset] = None

    # ------------------------------------------------------------------
    @property
    def dataset(self) -> OfflineDataset:
        """The offline profiling tables (collected lazily, once)."""
        if self._dataset is None:
            collector = Machine(self.space.topology, seed=self._seed + 1)
            self._dataset = OfflineDataset.collect(
                collector, self.profiles, self.space, noisy=True)
        return self._dataset

    def _controller_for(self, target: ApplicationProfile) -> RuntimeController:
        """A controller whose priors exclude the target (leave-one-out)."""
        dataset = self.dataset
        if target.name in dataset.names:
            view = dataset.leave_one_out(target.name)
            prior_rates, prior_powers = view.prior_rates, view.prior_powers
        else:
            prior_rates, prior_powers = dataset.rates, dataset.powers
        return RuntimeController(
            machine=self.machine, space=self.space,
            estimator=create_estimator(self.estimator_name),
            prior_rates=prior_rates, prior_powers=prior_powers,
            sampler=RandomSampler(self._seed),
            sample_count=self._sample_count,
            sample_window=self._sample_window,
            observability=self.observability,
        )

    # ------------------------------------------------------------------
    def estimate_tradeoffs(self, profile: ApplicationProfile
                           ) -> TradeoffEstimate:
        """Sample the application and estimate its full tradeoff curves."""
        return self._controller_for(profile).calibrate(profile)

    def optimize(self, profile: ApplicationProfile, utilization: float,
                 deadline: float = 100.0,
                 estimate: Optional[TradeoffEstimate] = None) -> RunReport:
        """Run ``profile`` at a utilization demand, minimizing energy.

        ``utilization`` in (0, 1] demands that fraction of the
        application's maximum achievable work within ``deadline``
        (Section 6.4's sweep variable).  Supplying a previously obtained
        ``estimate`` amortizes calibration across utilization levels,
        as the paper's one-time estimation does.
        """
        if not 0 < utilization <= 1:
            raise ValueError(f"utilization must be in (0, 1], got {utilization}")
        controller = self._controller_for(profile)
        if estimate is None:
            estimate = controller.calibrate(profile)
        true_max = max(
            self.machine.true_rate(profile, config) for config in self.space
        )
        work = utilization * true_max * deadline
        return controller.run(profile, work, deadline, estimate)

    def race_to_idle(self, profile: ApplicationProfile, utilization: float,
                     deadline: float = 100.0) -> RunReport:
        """The heuristic baseline under the same demand semantics."""
        if not 0 < utilization <= 1:
            raise ValueError(f"utilization must be in (0, 1], got {utilization}")
        true_max = max(
            self.machine.true_rate(profile, config) for config in self.space
        )
        work = utilization * true_max * deadline
        racer = RaceToIdleController(self.machine, self.space)
        with use_observability(self.observability):
            return racer.run(profile, work, deadline)

    def true_tradeoffs(self, profile: ApplicationProfile
                       ) -> TradeoffEstimate:
        """Exhaustive-search ground truth for ``profile`` (noise-free)."""
        rates = np.array([
            self.machine.true_rate(profile, config) for config in self.space
        ])
        powers = np.array([
            self.machine.true_power(profile, config) for config in self.space
        ])
        return TradeoffEstimate.from_truth(rates, powers)
