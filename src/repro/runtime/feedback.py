"""Lightweight feedback control on the learned hull (paper Section 7).

The paper positions LEO as "complementary to control based approaches":
once the Pareto-optimal hull is learned, a simple controller can hold a
performance target by moving along it, instead of re-solving the LP from
the remaining work each quantum.  That coupling — learned hull + integral
rate control — is the core of the authors' CALOREE follow-on; this is
its minimal form.

:class:`HullRateController` tracks a *constant* rate reference
``work / deadline`` with an integral update on a speedup signal:

    s(t+1) = clamp( s(t) + gain * (target - measured(t)) )

and actuates the hull's time-division at rate ``s`` within each quantum
(both bracket legs, proportioned by the hull weight).  Compared with the
re-solving :class:`~repro.runtime.controller.RuntimeController` it does
no optimization at run time — one hull lookup per quantum — at the cost
of a transient when the model is wrong, which the integral term then
absorbs.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.optimize.pareto import TradeoffFrontier
from repro.platform.config_space import ConfigurationSpace
from repro.platform.machine import Machine
from repro.runtime.controller import RunReport, TradeoffEstimate
from repro.workloads.profile import ApplicationProfile


class HullRateController:
    """Integral rate control along a learned tradeoff hull.

    Args:
        machine: Platform to drive.
        space: Its configuration space.
        gain: Integral gain on the normalized rate error.  1.0 is the
            deadbeat setting (one-window correction under a perfect
            model); lower is smoother, higher overshoots.
        quantum_fraction: Control quantum as a fraction of the deadline.
    """

    def __init__(self, machine: Machine, space: ConfigurationSpace,
                 gain: float = 0.6,
                 quantum_fraction: float = 0.05) -> None:
        if not 0 < gain <= 2.0:
            raise ValueError(f"gain must be in (0, 2], got {gain}")
        if not 0 < quantum_fraction <= 1:
            raise ValueError(
                f"quantum_fraction must be in (0, 1], got {quantum_fraction}"
            )
        self.machine = machine
        self.space = space
        self.gain = gain
        self.quantum_fraction = quantum_fraction

    def run(self, profile: ApplicationProfile, work: float, deadline: float,
            estimate: TradeoffEstimate) -> RunReport:
        """Hold ``work / deadline`` heartbeats/s along the hull."""
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        if deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        self.machine.load(profile)
        frontier = TradeoffFrontier(estimate.rates, estimate.powers,
                                    idle_power=self.machine.idle_power())
        target = work / deadline
        signal = min(target, frontier.max_rate)

        energy_before = self.machine.total_energy
        quantum = deadline * self.quantum_fraction
        time_left = deadline
        work_left = work
        power_trace: List[float] = []
        rate_trace: List[float] = []

        while time_left > 1e-9 * deadline:
            step = min(quantum, time_left)
            if work_left <= 1e-9 * max(work, 1.0):
                self.machine.idle_for(step)
                power_trace.append(self.machine.idle_power())
                rate_trace.append(0.0)
                time_left -= step
                continue

            delivered, mean_power = self._actuate_hull(frontier, signal,
                                                       step)
            work_left -= delivered * step
            time_left -= step
            power_trace.append(mean_power)
            rate_trace.append(delivered)

            # Integral update on the normalized error.  The reference
            # also absorbs accumulated debt: if past windows fell short,
            # the remaining-work rate exceeds the original target.
            reference = max(target, work_left / max(time_left, 1e-9))
            reference = min(reference, frontier.max_rate)
            error = (reference - delivered) / max(reference, 1e-9)
            signal = signal + self.gain * error * reference
            signal = float(np.clip(signal, 0.0, frontier.max_rate))

        work_done = work - max(work_left, 0.0)
        return RunReport(
            energy=self.machine.total_energy - energy_before,
            work_done=work_done, work_target=work, deadline=deadline,
            met_target=work_done >= 0.99 * work, reestimations=0,
            power_trace=power_trace, rate_trace=rate_trace,
        )

    def _actuate_hull(self, frontier: TradeoffFrontier, signal: float,
                      step: float):
        """Run one quantum time-divided at hull rate ``signal``.

        Returns the measured mean rate and mean power over the quantum.
        """
        low, high, lam = frontier.bracket(max(signal, 0.0))
        beats = 0.0
        energy = 0.0
        for vertex, share in ((low, 1.0 - lam), (high, lam)):
            if share <= 1e-9:
                continue
            duration = share * step
            if vertex.config_index is None:
                energy += self.machine.idle_for(duration)
            else:
                self.machine.apply(self.space[vertex.config_index])
                measurement = self.machine.run_for(duration)
                beats += measurement.heartbeats
                energy += measurement.energy
        return beats / step, energy / step
