"""LEO with cross-platform transfer priors.

:class:`TransferAwareLEO` runs the paper's hierarchical Bayesian
estimator, but derives the inverse-Wishart scale matrix ``Psi`` from the
per-platform covariance blocks of a
:class:`~repro.core.transfer.TransferredPrior` instead of fixing it to
the identity.  Prior applications observed on platforms similar to the
target then shape the configuration-configuration correlations the
E-step exploits, while dissimilar platforms are shrunk back toward the
identity by their kernel weight.

``psi_blend = 0`` reproduces the plain :class:`LEOEstimator` exactly
(``Psi`` stays the scalar 1.0 and the same model object is fitted), so
the homogeneous path has a bit-identity escape hatch.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.em import EMConfig
from repro.core.hbm import HierarchicalBayesianModel
from repro.core.priors import NIWPrior
from repro.core.transfer import TransferredPrior, block_psi
from repro.estimators.leo import LEOEstimator


class TransferAwareLEO(LEOEstimator):
    """LEO with a per-platform covariance-block hyperprior.

    Args:
        blocks: ``(start, stop, weight)`` row spans of the prior table,
            one per source platform — usually
            ``transferred.blocks`` from
            :meth:`~repro.core.transfer.TransferPrior.build`.
        psi_blend: Fraction of ``Psi`` taken from the weighted block
            covariances; the rest stays the identity.  0 disables the
            transfer hyperprior entirely (bit-identical to LEO).
    """

    name = "leo-transfer"

    def __init__(self, blocks: Sequence[Tuple[int, int, float]] = (),
                 psi_blend: float = 0.35,
                 em_config: EMConfig = LEOEstimator.DEFAULT_EM_CONFIG,
                 init: str = "offline",
                 seed: Optional[int] = None) -> None:
        if not 0.0 <= psi_blend <= 1.0:
            raise ValueError(f"psi_blend must be in [0, 1], "
                             f"got {psi_blend}")
        super().__init__(prior=NIWPrior.paper_default(),
                         em_config=em_config, init=init, seed=seed)
        self.blocks = tuple(blocks)
        self.psi_blend = float(psi_blend)

    @classmethod
    def from_transferred(cls, transferred: TransferredPrior,
                         **kwargs) -> "TransferAwareLEO":
        return cls(blocks=transferred.blocks, **kwargs)

    def _model_for(self, std_prior: np.ndarray) -> HierarchicalBayesianModel:
        if self.psi_blend == 0.0 or not self.blocks:
            return self.model
        psi = block_psi(std_prior, self.blocks, self.psi_blend)
        if np.isscalar(psi) and psi == 1.0:
            return self.model
        prior = NIWPrior(mu0=0.0, pi=1.0, psi=psi, nu=1.0)
        return HierarchicalBayesianModel(prior=prior,
                                         em_config=self.model.em_config)
