"""The estimation problem and the estimator interface.

Every approach the paper compares (Section 6.2) answers the same
question: given a few observations of the target application, plus
optionally the offline profiles of other applications, predict the
target's value (power or performance) in *every* configuration.
:class:`EstimationProblem` is that question as data;
:class:`Estimator` is the interface each approach implements.

Performance curves are compared across applications in a normalized
space (the paper reports performance "measured as speedup"): raw
heartbeat rates span four orders of magnitude across the suite, so
estimators that pool applications (offline mean, LEO) operate on curves
normalized by each application's mean over the observed subset, and the
target's absolute scale is recovered from its own observations.
:func:`normalize_problem` performs this transformation.
"""

from __future__ import annotations

import abc
import dataclasses
import functools
import time
from typing import Callable, Optional, Tuple

import numpy as np

from repro.errors import EstimationError, InsufficientSamplesError
from repro.faults.context import get_injector
from repro.obs import get_observability

# Back-compat alias: InsufficientSamplesError was born here and moved
# to repro.errors; ``from repro.estimators.base import
# InsufficientSamplesError`` resolves to the same class object.
__all__ = [
    "EstimationProblem",
    "Estimator",
    "InsufficientSamplesError",
    "normalize_problem",
]


@dataclasses.dataclass(frozen=True)
class EstimationProblem:
    """One target-application estimation instance.

    Attributes:
        features: ``(n, d)`` numeric knob values of each configuration
            (cores, threads, memory controllers, speed index) — the
            predictors of the online regression baseline.
        prior: ``(M-1, n)`` offline table of other applications, or
            ``None`` when no offline data exists.
        observed_indices: Omega_M — sampled configuration indices.
        observed_values: Measurements of the target at those indices.
    """

    features: np.ndarray
    prior: Optional[np.ndarray]
    observed_indices: np.ndarray
    observed_values: np.ndarray

    def __post_init__(self) -> None:
        features = np.asarray(self.features, dtype=float)
        idx = np.asarray(self.observed_indices, dtype=int)
        vals = np.asarray(self.observed_values, dtype=float)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got {features.shape}")
        if idx.ndim != 1 or idx.shape != vals.shape:
            raise ValueError("observed indices/values must be aligned 1-D arrays")
        if idx.size and (idx.min() < 0 or idx.max() >= features.shape[0]):
            raise ValueError("observed indices out of configuration range")
        if idx.size and len(np.unique(idx)) != idx.size:
            raise ValueError("observed indices must be unique")
        if self.prior is not None:
            prior = np.asarray(self.prior, dtype=float)
            if prior.ndim != 2 or prior.shape[1] != features.shape[0]:
                raise ValueError(
                    f"prior shape {prior.shape} incompatible with "
                    f"{features.shape[0]} configurations"
                )
        object.__setattr__(self, "features", features)
        object.__setattr__(self, "observed_indices", idx)
        object.__setattr__(self, "observed_values", vals)
        if self.prior is not None:
            object.__setattr__(self, "prior",
                               np.asarray(self.prior, dtype=float))

    @property
    def num_configs(self) -> int:
        return self.features.shape[0]

    @property
    def num_observations(self) -> int:
        return self.observed_indices.size

    @property
    def num_prior_applications(self) -> int:
        return 0 if self.prior is None else self.prior.shape[0]


def _traced_estimate(fn: Callable) -> Callable:
    """Wrap an ``estimate`` implementation in an ``estimator.fit`` span.

    Applied automatically to every :class:`Estimator` subclass, so each
    registry estimator is traced uniformly without touching its code.
    When observability is disabled the wrapper is one context lookup and
    a direct call — no spans, no timers.
    """
    @functools.wraps(fn)
    def wrapper(self, problem: EstimationProblem) -> np.ndarray:
        for spec in get_injector().fire("estimator.fit"):
            if spec.kind == "estimator-crash":
                raise EstimationError(
                    f"injected estimator crash ({self.name})")
        ob = get_observability()
        if not ob.enabled:
            return fn(self, problem)
        with ob.tracer.span(
                "estimator.fit", estimator=self.name,
                num_configs=problem.num_configs,
                num_observations=problem.num_observations,
                num_prior_applications=problem.num_prior_applications,
        ) as span:
            started = time.perf_counter()
            result = fn(self, problem)
            ob.metrics.observe("fit_seconds",
                               time.perf_counter() - started)
            last_fit = getattr(self, "last_fit", None)
            if last_fit is not None:
                span.set_attribute("em_iterations", last_fit.iterations)
                span.set_attribute("em_converged", last_fit.converged)
                span.set_attribute("loglik", last_fit.loglik)
        return result

    wrapper._obs_traced = True  # type: ignore[attr-defined]
    return wrapper


class Estimator(abc.ABC):
    """An approach that completes a target application's curve."""

    #: Short identifier used in registries, experiments, and reports.
    name: str = "estimator"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        estimate = cls.__dict__.get("estimate")
        if estimate is not None and not getattr(estimate, "_obs_traced",
                                                False):
            cls.estimate = _traced_estimate(estimate)

    @abc.abstractmethod
    def estimate(self, problem: EstimationProblem) -> np.ndarray:
        """Predict the target's value in every configuration.

        Returns an array of shape ``(problem.num_configs,)``.

        Raises:
            InsufficientSamplesError: If the approach is ill-posed for
                the problem's sample count (e.g. polynomial regression
                below its coefficient count).
        """


def normalize_problem(problem: EstimationProblem
                      ) -> Tuple[EstimationProblem, float]:
    """Rescale a problem into normalized (speedup-like) space.

    Each prior application's row is divided by its own mean over the
    observed index subset, and the target's observations by their mean.
    Returns the rescaled problem and the target's scale factor; an
    estimate made on the normalized problem times the scale factor is an
    estimate in original units.
    """
    if problem.num_observations == 0:
        raise ValueError("cannot normalize a problem with no observations")
    scale = float(np.mean(problem.observed_values))
    if scale <= 0:
        raise ValueError(
            f"observed values must have a positive mean, got {scale}"
        )
    prior = problem.prior
    if prior is not None:
        anchors = prior[:, problem.observed_indices].mean(axis=1, keepdims=True)
        if np.any(anchors <= 0):
            raise ValueError("prior rows must have positive observed means")
        prior = prior / anchors
    normalized = EstimationProblem(
        features=problem.features,
        prior=prior,
        observed_indices=problem.observed_indices,
        observed_values=problem.observed_values / scale,
    )
    return normalized, scale
