"""The online-learning baseline (Section 6.2).

"This strategy carries out polynomial multivariate regression on the
observed dataset using configuration values (the number of cores, memory
control and speed-settings) as predictors, and estimates the rest of the
datapoints based on the same model. ... This method uses only the
observations and not the prior data."

With the platform's four knobs and the default total degree of two, the
design matrix has 15 monomial columns (1 constant + 4 linear + 10
quadratic), which is why the paper's Figure 12 notes the online baseline
"cannot perform below 15 samples because the design matrix of the
regression model would be rank deficient — effectively 0 accuracy".
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

import numpy as np

from repro.estimators.base import (
    EstimationProblem,
    Estimator,
    InsufficientSamplesError,
)


def monomial_exponents(num_features: int, degree: int) -> List[Tuple[int, ...]]:
    """All exponent tuples with total degree <= ``degree``.

    Ordered by total degree, then lexicographically, so the constant term
    comes first and linear terms precede quadratic ones.
    """
    if num_features < 1:
        raise ValueError(f"num_features must be >= 1, got {num_features}")
    if degree < 0:
        raise ValueError(f"degree must be >= 0, got {degree}")
    exponents = []
    for total in range(degree + 1):
        for combo in itertools.combinations_with_replacement(
                range(num_features), total):
            exps = [0] * num_features
            for feature in combo:
                exps[feature] += 1
            exponents.append(tuple(exps))
    return exponents


def design_matrix(features: np.ndarray, degree: int) -> np.ndarray:
    """Monomial design matrix of ``features`` up to total ``degree``.

    Features are scaled to [0, 1] per column (using each column's range)
    before exponentiation to keep the normal equations well conditioned.
    """
    features = np.asarray(features, dtype=float)
    lo = features.min(axis=0)
    span = features.max(axis=0) - lo
    span[span == 0] = 1.0
    scaled = (features - lo) / span
    exps = monomial_exponents(features.shape[1], degree)
    columns = [np.prod(scaled ** np.array(e), axis=1) for e in exps]
    return np.stack(columns, axis=1)


class OnlineEstimator(Estimator):
    """Polynomial multivariate regression on the sampled configurations."""

    name = "online"

    def __init__(self, degree: int = 2, clip_floor: float = 1e-9) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        if clip_floor < 0:
            raise ValueError(f"clip_floor must be >= 0, got {clip_floor}")
        self.degree = degree
        self.clip_floor = clip_floor

    def num_coefficients(self, num_features: int) -> int:
        """Size of the monomial basis for ``num_features`` knobs."""
        return len(monomial_exponents(num_features, self.degree))

    def estimate(self, problem: EstimationProblem) -> np.ndarray:
        # Knobs that never vary (e.g. the fixed speed setting of the
        # Section 2 cores-only space) contribute nothing but collinear
        # columns; drop them before building the basis.
        varying = np.ptp(problem.features, axis=0) > 0
        features = problem.features[:, varying]
        if features.shape[1] == 0:
            features = np.ones((problem.num_configs, 1))
        needed = self.num_coefficients(features.shape[1])
        if problem.num_observations < needed:
            raise InsufficientSamplesError(
                f"polynomial regression of degree {self.degree} over "
                f"{features.shape[1]} varying knobs needs at least {needed} "
                f"samples; got {problem.num_observations}"
            )
        full_design = design_matrix(features, self.degree)
        observed = full_design[problem.observed_indices]
        coeffs, *_ = np.linalg.lstsq(observed, problem.observed_values,
                                     rcond=None)
        prediction = full_design @ coeffs
        # Polynomial extrapolation can dip below zero, which is physically
        # meaningless for rates and powers; floor it relative to the
        # smallest observation.
        floor = self.clip_floor * max(float(np.min(np.abs(
            problem.observed_values))), 1.0)
        return np.maximum(prediction, floor)
