"""The offline-learning baseline (Section 6.2).

"This method takes the mean over the rest of the applications to estimate
the power and performance of the given application ... This strategy only
uses prior information and does not update based on runtime observations."

It predicts the general trend across the training set and is therefore
accurate exactly when the target follows that trend — the paper measures
0.68 average accuracy for performance (where applications diverge wildly)
but 0.89 for power (where they are much more alike).
"""

from __future__ import annotations

import numpy as np

from repro.estimators.base import EstimationProblem, Estimator


class OfflineEstimator(Estimator):
    """Predicts the per-configuration mean of the prior applications."""

    name = "offline"

    def estimate(self, problem: EstimationProblem) -> np.ndarray:
        if problem.prior is None or problem.num_prior_applications == 0:
            raise ValueError(
                "the offline estimator requires prior application data"
            )
        return problem.prior.mean(axis=0)
