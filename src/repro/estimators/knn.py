"""k-nearest-neighbour estimation over the prior application library.

A non-parametric middle ground between the offline mean and LEO: find
the k prior applications whose curves best match the target at the
sampled configurations and blend them (inverse-distance weighting).
It captures the paper's core intuition — "LEO quickly matches the
behavior of the current application to a subset of the previously
observed applications" — without the probabilistic machinery, which
makes it a useful baseline for quantifying what the hierarchical model
itself adds (see ``benchmarks/test_ablation_priors.py``).
"""

from __future__ import annotations

import numpy as np

from repro.estimators.base import EstimationProblem, Estimator


class KNNEstimator(Estimator):
    """Blend of the k most similar prior applications.

    Args:
        k: Neighbours blended.  ``k=1`` copies the closest application's
            curve outright.
        epsilon: Distance floor preventing division by zero when a
            prior matches the observations exactly.
    """

    name = "knn"

    def __init__(self, k: int = 3, epsilon: float = 1e-9) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.k = k
        self.epsilon = epsilon

    def estimate(self, problem: EstimationProblem) -> np.ndarray:
        if problem.prior is None or problem.num_prior_applications == 0:
            raise ValueError("the knn estimator requires prior data")
        prior = problem.prior
        observed = prior[:, problem.observed_indices]
        distances = np.linalg.norm(observed - problem.observed_values,
                                   axis=1)
        k = min(self.k, prior.shape[0])
        nearest = np.argsort(distances)[:k]
        weights = 1.0 / (distances[nearest] + self.epsilon)
        weights /= weights.sum()
        return weights @ prior[nearest]
