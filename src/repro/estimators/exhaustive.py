"""The exhaustive-search oracle (Section 6.2).

"This brute-force approach searches every possible configuration to
determine the true performance, power, and optimal energy for all
applications."  On the authors' testbed this took between 3 hours (HOP)
and more than 5 days (semphy) per application; on the simulator it is a
noise-free sweep.  The oracle anchors every accuracy score (Eq. 5 is
computed against it) and every "optimal energy" normalization.
"""

from __future__ import annotations

import numpy as np

from repro.estimators.base import EstimationProblem, Estimator


class ExhaustiveOracle(Estimator):
    """Returns the pre-measured ground-truth curve, ignoring the problem.

    Args:
        truth: The target application's true per-configuration values,
            obtained by an exhaustive sweep.
    """

    name = "exhaustive"

    def __init__(self, truth: np.ndarray) -> None:
        truth = np.asarray(truth, dtype=float)
        if truth.ndim != 1 or truth.size == 0:
            raise ValueError(f"truth must be a non-empty vector, got {truth.shape}")
        if not np.all(np.isfinite(truth)):
            raise ValueError("truth must be finite")
        self.truth = truth

    def estimate(self, problem: EstimationProblem) -> np.ndarray:
        if problem.num_configs != self.truth.size:
            raise ValueError(
                f"oracle holds {self.truth.size} configurations but the "
                f"problem has {problem.num_configs}"
            )
        return self.truth.copy()
