"""The estimation approaches the paper compares (Section 6.2)."""

from repro.estimators.base import (
    EstimationProblem,
    Estimator,
    InsufficientSamplesError,
    normalize_problem,
)
from repro.estimators.exhaustive import ExhaustiveOracle
from repro.estimators.knn import KNNEstimator
from repro.estimators.leo import LEOEstimator
from repro.estimators.offline import OfflineEstimator
from repro.estimators.online import OnlineEstimator
from repro.estimators.transfer import TransferAwareLEO
from repro.estimators.registry import (
    available_estimators,
    create_estimator,
    register,
    register_estimator,
    unregister,
)

__all__ = [
    "EstimationProblem",
    "Estimator",
    "InsufficientSamplesError",
    "normalize_problem",
    "ExhaustiveOracle",
    "KNNEstimator",
    "LEOEstimator",
    "OfflineEstimator",
    "OnlineEstimator",
    "TransferAwareLEO",
    "available_estimators",
    "create_estimator",
    "register",
    "register_estimator",
    "unregister",
]
