"""LEO: the paper's hierarchical-Bayesian estimator, as an Estimator.

Wraps :class:`~repro.core.hbm.HierarchicalBayesianModel` behind the common
:class:`~repro.estimators.base.Estimator` interface.  The adapter owns the
two practical concerns the model itself stays agnostic to:

* **Standardization** — the paper's hyperprior (Psi = I, mu0 = 0) is only
  meaningful if the data is roughly unit scale; the adapter centers each
  configuration by the prior applications' mean and divides by the pooled
  standard deviation, running EM in that space and mapping the target's
  posterior curve back.
* **Initialization** — Section 5.5: "the initialization of mu with the
  estimates from the online or offline approaches improves LEO's
  accuracy."  The default seeds mu with the offline estimate (which is
  the zero vector in standardized space); ``init="random"`` reproduces
  the random initialization the ablation compares against.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.em import EMConfig
from repro.core.hbm import FittedModel, HierarchicalBayesianModel
from repro.core.observation import ObservationSet
from repro.core.priors import NIWPrior
from repro.estimators.base import (
    EstimationProblem,
    Estimator,
    InsufficientSamplesError,
)

_INITS = ("offline", "online", "random")


class LEOEstimator(Estimator):
    """Learning for Energy Optimization (paper Section 5)."""

    name = "leo"

    #: Default EM budget.  The paper observes convergence "generally
    #: requiring 3-4 iterations to reach the desired accuracy" (Section
    #: 5.5); five iterations at a loose tolerance reproduces both the
    #: accuracy and the ~0.8 s fit overhead of Section 6.7.
    DEFAULT_EM_CONFIG = EMConfig(max_iterations=5, tol=1e-4)

    def __init__(self, prior: Optional[NIWPrior] = None,
                 em_config: EMConfig = DEFAULT_EM_CONFIG,
                 init: str = "offline",
                 seed: Optional[int] = None) -> None:
        if init not in _INITS:
            raise ValueError(f"init must be one of {_INITS}, got {init!r}")
        self.model = HierarchicalBayesianModel(
            prior=prior, em_config=em_config)
        self.init = init
        self._rng = np.random.default_rng(seed)
        #: The most recent fit, for introspection (iterations, loglik,
        #: credible bands).  ``None`` before the first estimate.
        self.last_fit: Optional[FittedModel] = None

    def estimate(self, problem: EstimationProblem) -> np.ndarray:
        if problem.prior is None or problem.num_prior_applications == 0:
            raise ValueError("LEO requires offline prior application data")
        prior = problem.prior

        # Standardize: center per configuration, scale by pooled stddev.
        center = prior.mean(axis=0)
        pooled_std = float((prior - center).std())
        if pooled_std <= 0 or not np.isfinite(pooled_std):
            pooled_std = 1.0
        std_prior = (prior - center) / pooled_std
        std_obs = (problem.observed_values
                   - center[problem.observed_indices]) / pooled_std

        observations = ObservationSet.from_prior_and_target(
            std_prior, problem.observed_indices, std_obs)

        if self.init == "offline":
            # The offline estimate is the prior mean — identically zero
            # in centered space.
            init_mu = np.zeros(problem.num_configs)
        elif self.init == "online":
            # Section 5.5 also suggests seeding from the online
            # estimate; fall back to offline when regression is
            # ill-posed for the sample count.
            from repro.estimators.online import OnlineEstimator
            try:
                online_curve = OnlineEstimator().estimate(problem)
                init_mu = (online_curve - center) / pooled_std
            except InsufficientSamplesError:
                init_mu = np.zeros(problem.num_configs)
        else:
            init_mu = self._rng.standard_normal(problem.num_configs)

        model = self._model_for(std_prior)
        self.last_fit = model.fit(observations, init_mu=init_mu)
        standardized_curve = self.last_fit.target_curve()
        return standardized_curve * pooled_std + center

    def _model_for(self, std_prior: np.ndarray) -> HierarchicalBayesianModel:
        """The model used for this fit.

        The base estimator always fits the model built at construction
        time; transfer-aware subclasses derive a per-fit hyperprior from
        the standardized prior table (whose scale is only known here).
        """
        return self.model

    @property
    def iterations(self) -> int:
        """EM iterations of the most recent fit."""
        if self.last_fit is None:
            raise RuntimeError("no fit has been performed yet")
        return self.last_fit.iterations
