"""Name-based estimator construction.

Experiments refer to approaches by the paper's names ("leo", "online",
"offline"); the registry turns those names into fresh estimator
instances.  The exhaustive oracle is not registered because it needs the
ground truth at construction time — it is not buildable from a name
alone.

Downstream code — notably :mod:`repro.service`, which exposes
estimators to remote tenants *by name* — extends the registry through
:func:`register`.  Registration is strict: duplicate names are an
error (silently replacing ``"leo"`` under a running service would
change every tenant's results), and construction-time keyword-argument
mismatches are reported with the offending names rather than a bare
``TypeError`` from deep inside a constructor.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.estimators.base import Estimator
from repro.estimators.knn import KNNEstimator
from repro.estimators.leo import LEOEstimator
from repro.estimators.offline import OfflineEstimator
from repro.estimators.online import OnlineEstimator
from repro.estimators.transfer import TransferAwareLEO

_FACTORIES: Dict[str, Callable[[], Estimator]] = {
    "knn": KNNEstimator,
    "leo": LEOEstimator,
    "leo-transfer": TransferAwareLEO,
    "offline": OfflineEstimator,
    "online": OnlineEstimator,
}


def create_estimator(name: str, **kwargs) -> Estimator:
    """Instantiate an estimator by its paper name.

    Keyword arguments are forwarded to the estimator's constructor; a
    constructor that rejects them raises a ``TypeError`` naming the
    estimator and the arguments, so a caller three layers up (e.g. a
    service request handler) can report something actionable.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown estimator {name!r}; known: {sorted(_FACTORIES)}"
        ) from None
    if not kwargs:
        return factory()
    try:
        return factory(**kwargs)
    except TypeError as exc:
        raise TypeError(
            f"estimator {name!r} rejected constructor arguments "
            f"{sorted(kwargs)}: {exc}"
        ) from exc


def available_estimators() -> List[str]:
    """Names accepted by :func:`create_estimator`."""
    return sorted(_FACTORIES)


def register(name: str, factory: Callable[..., Estimator]) -> None:
    """Add a named estimator factory; the public extension hook.

    Raises:
        ValueError: If ``name`` is empty or already registered (use
            :func:`unregister` first to replace deliberately).
        TypeError: If ``factory`` is not callable.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"estimator name must be a non-empty string, "
                         f"got {name!r}")
    if not callable(factory):
        raise TypeError(f"factory for {name!r} must be callable, "
                        f"got {type(factory).__name__}")
    key = name.lower()
    if key in _FACTORIES:
        raise ValueError(
            f"estimator {key!r} is already registered; unregister it "
            f"first or choose another name"
        )
    _FACTORIES[key] = factory


def unregister(name: str) -> bool:
    """Remove a registered factory; returns whether one existed."""
    return _FACTORIES.pop(name.lower(), None) is not None


def register_estimator(name: str, factory: Callable[[], Estimator]) -> None:
    """Add (or replace) a named estimator factory.

    The legacy replace-allowed hook; prefer :func:`register`, which
    refuses duplicates instead of silently swapping implementations.
    """
    if not name:
        raise ValueError("estimator name must be non-empty")
    _FACTORIES[name.lower()] = factory
