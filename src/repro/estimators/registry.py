"""Name-based estimator construction.

Experiments refer to approaches by the paper's names ("leo", "online",
"offline"); the registry turns those names into fresh estimator
instances.  The exhaustive oracle is not registered because it needs the
ground truth at construction time — it is not buildable from a name
alone.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.estimators.base import Estimator
from repro.estimators.knn import KNNEstimator
from repro.estimators.leo import LEOEstimator
from repro.estimators.offline import OfflineEstimator
from repro.estimators.online import OnlineEstimator

_FACTORIES: Dict[str, Callable[[], Estimator]] = {
    "knn": KNNEstimator,
    "leo": LEOEstimator,
    "offline": OfflineEstimator,
    "online": OnlineEstimator,
}


def create_estimator(name: str, **kwargs) -> Estimator:
    """Instantiate an estimator by its paper name.

    Keyword arguments are forwarded to the estimator's constructor.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown estimator {name!r}; known: {sorted(_FACTORIES)}"
        ) from None
    return factory(**kwargs)


def available_estimators() -> List[str]:
    """Names accepted by :func:`create_estimator`."""
    return sorted(_FACTORIES)


def register_estimator(name: str, factory: Callable[[], Estimator]) -> None:
    """Add (or replace) a named estimator factory.

    Lets downstream users plug their own approaches into the experiment
    harness without forking it.
    """
    if not name:
        raise ValueError("estimator name must be non-empty")
    _FACTORIES[name.lower()] = factory
