"""Simulated test platform: topology, DVFS, configurations, machine models.

This package is the substrate standing in for the paper's dual-socket
Xeon E5-2690 server (Section 6.1).  See DESIGN.md section 2 for the
substitution rationale.
"""

from repro.platform.config_space import Configuration, ConfigurationSpace
from repro.platform.dvfs import (
    DVFS_FREQUENCIES_GHZ,
    NOMINAL_GHZ,
    TURBO_INDEX,
    TURBO_PEAK_GHZ,
    SpeedSetting,
    dynamic_power_scale,
    speed_ladder,
    voltage_at,
)
from repro.platform.hetero import (
    BIG_LITTLE,
    CoreCluster,
    HeteroConfiguration,
    HeteroMachine,
    HeteroPerformanceModel,
    HeteroPowerModel,
    HeteroTopology,
    OffloadDevice,
    cluster_indices,
    hetero_space,
)
from repro.platform.machine import Machine, Measurement
from repro.platform.performance_model import PerformanceModel
from repro.platform.power_model import PowerConstants, PowerModel
from repro.platform.thermal import ThermalModel
from repro.platform.topology import PAPER_TOPOLOGY, CorePartition, Topology

__all__ = [
    "Configuration",
    "ConfigurationSpace",
    "DVFS_FREQUENCIES_GHZ",
    "NOMINAL_GHZ",
    "TURBO_INDEX",
    "TURBO_PEAK_GHZ",
    "SpeedSetting",
    "dynamic_power_scale",
    "speed_ladder",
    "voltage_at",
    "BIG_LITTLE",
    "CoreCluster",
    "HeteroConfiguration",
    "HeteroMachine",
    "HeteroPerformanceModel",
    "HeteroPowerModel",
    "HeteroTopology",
    "OffloadDevice",
    "cluster_indices",
    "hetero_space",
    "Machine",
    "Measurement",
    "PerformanceModel",
    "PowerConstants",
    "PowerModel",
    "ThermalModel",
    "PAPER_TOPOLOGY",
    "CorePartition",
    "Topology",
]
