"""Analytic power model of the simulated platform.

Maps an application profile and a configuration to ground-truth power
draws: whole-system power (what the paper's WattsUp meter reports at 1 s
intervals) and per-socket chip power (what Intel RAPL reports at finer
grain).  The model is a standard CMOS decomposition:

* a constant system floor (board, fans, disks, PSU losses at idle);
* per-powered-socket uncore power (LLC, ring, IO);
* per-active-core leakage, scaling with supply voltage;
* per-active-core dynamic power, scaling with ``V(f)^2 * f`` (see
  :mod:`repro.platform.dvfs`), the application's switching activity, and
  the core's utilization (cores idling at a barrier draw less);
* hyperthreading adds a fixed fraction of dynamic power per core;
* per-controller DRAM power with a traffic-dependent dynamic part.

Constants are calibrated so that a fully active compute-bound workload at
TurboBoost draws near (but below) the two sockets' 135 W TDP each, and an
idle system draws roughly 85 W at the wall — consistent with the class of
server the paper evaluates on.
"""

from __future__ import annotations

import dataclasses

from repro.platform.config_space import Configuration
from repro.platform.dvfs import NOMINAL_GHZ, dynamic_power_scale, voltage_at
from repro.platform.performance_model import thread_speedup
from repro.platform.topology import PAPER_TOPOLOGY, Topology
from repro.workloads.profile import ApplicationProfile


@dataclasses.dataclass(frozen=True)
class PowerConstants:
    """Calibration constants of the power model (all in Watts)."""

    system_floor: float = 75.0
    uncore_per_socket: float = 15.0
    core_leakage_nominal: float = 2.0
    core_dynamic_max: float = 7.0
    ht_dynamic_fraction: float = 0.14
    dram_static_per_controller: float = 3.0
    dram_dynamic_max: float = 12.0

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) < 0:
                raise ValueError(f"{field.name} must be non-negative")


class PowerModel:
    """Ground-truth system and chip power for a fixed topology."""

    def __init__(self, topology: Topology = PAPER_TOPOLOGY,
                 constants: PowerConstants = PowerConstants()) -> None:
        self.topology = topology
        self.constants = constants

    def _core_utilization(self, profile: ApplicationProfile,
                          config: Configuration) -> float:
        """Average busy fraction of the allocated cores, in (0, 1].

        A perfectly parallel application keeps every core busy; serial
        bottlenecks leave cores waiting, which shows up as reduced
        dynamic power on real hardware.
        """
        speedup = thread_speedup(profile, config)
        # Busy fraction of the physical pipelines: hyperthread contexts
        # raise it (they fill stall cycles), serial bottlenecks lower it.
        util = speedup / config.cores
        # I/O-bound time idles the cores as well.
        util *= 1.0 - 0.5 * profile.io_intensity
        return min(max(util, 0.05), 1.0)

    def chip_power(self, profile: ApplicationProfile,
                   config: Configuration) -> float:
        """Total processor-package power across powered sockets (RAPL)."""
        if config.cores > self.topology.total_cores:
            raise ValueError(
                f"configuration uses {config.cores} cores but the machine "
                f"has {self.topology.total_cores}"
            )
        k = self.constants
        freq = config.effective_ghz(self.topology.total_cores)
        volt_ratio = voltage_at(freq) / voltage_at(NOMINAL_GHZ)
        sockets = self.topology.sockets_for_cores(config.cores)
        util = self._core_utilization(profile, config)

        leakage = config.cores * k.core_leakage_nominal * volt_ratio
        dynamic_per_core = (k.core_dynamic_max * dynamic_power_scale(freq)
                            * profile.activity_factor * util)
        if config.hyperthreading:
            ht_cores = config.threads - config.cores
            dynamic_per_core *= 1.0 + k.ht_dynamic_fraction * ht_cores / config.cores
        dynamic = config.cores * dynamic_per_core
        uncore = sockets * k.uncore_per_socket
        return uncore + leakage + dynamic

    def dram_power(self, profile: ApplicationProfile,
                   config: Configuration) -> float:
        """Memory subsystem power across accessible controllers."""
        k = self.constants
        static = config.memory_controllers * k.dram_static_per_controller
        # Traffic grows with memory intensity and with parallel streams,
        # saturating at the application's memory-level parallelism.
        streams = min(config.threads, profile.memory_parallelism)
        saturation = streams / profile.memory_parallelism
        dynamic = (k.dram_dynamic_max * profile.memory_intensity * saturation
                   * config.memory_controllers / self.topology.memory_controllers)
        return static + dynamic

    def system_power(self, profile: ApplicationProfile,
                     config: Configuration) -> float:
        """Whole-system wall power (what the WattsUp meter measures)."""
        return (self.constants.system_floor
                + self.chip_power(profile, config)
                + self.dram_power(profile, config))

    def idle_power(self) -> float:
        """System power with no application running (all packages idle).

        Idle packages still leak and keep their uncore partially awake;
        we charge the floor plus a quarter of the per-socket uncore.
        """
        return (self.constants.system_floor
                + 0.25 * self.topology.sockets * self.constants.uncore_per_socket)
