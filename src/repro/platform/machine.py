"""The simulated machine: actuation, execution, and measurement.

:class:`Machine` stands in for the paper's dual-socket Xeon testbed.  The
runtime actuates it the way the paper's runtime drives Linux (affinity
masks, cpufrequtils, numactl) — here reduced to :meth:`Machine.apply` — and
reads it through the same two channels the paper uses: heartbeat rates
(Application Heartbeats) and power draws (WattsUp / RAPL).

The machine keeps a simulated clock.  :meth:`run_for` advances it, accruing
heartbeats and energy for whatever application is loaded at whatever
configuration is applied, with seeded measurement noise so experiments are
reproducible yet realistically jittery.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from repro.errors import SensorReadError
from repro.faults.context import get_injector
from repro.platform.config_space import Configuration, ConfigurationSpace
from repro.platform.performance_model import PerformanceModel
from repro.platform.power_model import PowerModel
from repro.platform.thermal import ThermalModel
from repro.platform.topology import PAPER_TOPOLOGY, Topology
from repro.workloads.profile import ApplicationProfile


@dataclasses.dataclass(frozen=True)
class Measurement:
    """One observation window of the running application.

    Attributes:
        duration: Window length in simulated seconds.
        heartbeats: Heartbeats completed during the window.
        rate: Observed heartbeat rate (heartbeats / duration).
        system_power: Mean wall power over the window (WattsUp channel).
        chip_power: Mean package power over the window (RAPL channel).
        energy: System energy consumed over the window, in Joules.
    """

    duration: float
    heartbeats: float
    rate: float
    system_power: float
    chip_power: float

    @property
    def energy(self) -> float:
        return self.system_power * self.duration


class Machine:
    """A configurable machine executing one application at a time."""

    def __init__(self, topology: Topology = PAPER_TOPOLOGY,
                 seed: Optional[int] = None,
                 thermal: Optional[ThermalModel] = None) -> None:
        self.topology = topology
        self.performance_model = PerformanceModel(topology)
        self.power_model = PowerModel(topology)
        #: Optional package thermal model; None keeps the stationary
        #: per-configuration behaviour the paper's model assumes.
        self.thermal = thermal
        self._rng = np.random.default_rng(seed)
        self._profile: Optional[ApplicationProfile] = None
        self._config: Optional[Configuration] = None
        self.clock = 0.0
        self.total_energy = 0.0
        self.total_heartbeats = 0.0

    # ------------------------------------------------------------------
    # Actuation
    # ------------------------------------------------------------------
    def load(self, profile: ApplicationProfile) -> None:
        """Start running ``profile`` (replacing any previous application)."""
        self._profile = profile
        self.total_heartbeats = 0.0

    def apply(self, config: Configuration) -> None:
        """Switch the machine to ``config`` (affinity + DVFS + numactl)."""
        if config.cores > self.topology.total_cores:
            raise ValueError(
                f"configuration needs {config.cores} cores; machine has "
                f"{self.topology.total_cores}"
            )
        self._config = config

    @property
    def profile(self) -> Optional[ApplicationProfile]:
        return self._profile

    @property
    def config(self) -> Optional[Configuration]:
        return self._config

    def _require_running(self) -> Tuple[ApplicationProfile, Configuration]:
        if self._profile is None:
            raise RuntimeError("no application loaded; call load() first")
        if self._config is None:
            raise RuntimeError("no configuration applied; call apply() first")
        return self._profile, self._config

    # ------------------------------------------------------------------
    # Ground truth (used by the exhaustive-search baseline and by tests)
    # ------------------------------------------------------------------
    def true_rate(self, profile: ApplicationProfile,
                  config: Configuration) -> float:
        """Noise-free heartbeat rate of ``profile`` at ``config``."""
        return self.performance_model.heartbeat_rate(profile, config)

    def true_power(self, profile: ApplicationProfile,
                   config: Configuration) -> float:
        """Noise-free system power of ``profile`` at ``config``."""
        return self.power_model.system_power(profile, config)

    def idle_power(self) -> float:
        """System power when idling (race-to-idle's post-completion draw)."""
        return self.power_model.idle_power()

    # ------------------------------------------------------------------
    # Execution and measurement
    # ------------------------------------------------------------------
    def run_for(self, duration: float) -> Measurement:
        """Advance the simulated clock by ``duration`` seconds.

        Returns the noisy measurement of the window and accrues energy
        and heartbeats.  Noise is multiplicative Gaussian with the
        application's per-profile relative standard deviation, averaged
        over the window (longer windows are less noisy, like a real
        meter integrating more samples).
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        profile, config = self._require_running()
        rate = self.true_rate(profile, config)
        system_power = self.true_power(profile, config)
        chip_power = self.power_model.chip_power(profile, config)

        if self.thermal is not None:
            # Throttling derates delivered frequency and chip power for
            # the window; the board floor and DRAM are unaffected.
            factor = self.thermal.advance(chip_power, duration)
            rate *= factor
            system_power -= chip_power * (1.0 - factor)
            chip_power *= factor

        # Averaging ~duration independent 1 s samples shrinks the noise.
        shrink = 1.0 / np.sqrt(max(duration, 1.0))
        noise = profile.noise * shrink
        rate_obs = rate * max(self._rng.normal(1.0, noise), 0.0)
        power_obs = system_power * max(self._rng.normal(1.0, noise), 0.0)
        chip_obs = chip_power * max(self._rng.normal(1.0, noise), 0.0)

        heartbeats = rate_obs * duration
        self.clock += duration
        self.total_energy += power_obs * duration
        self.total_heartbeats += heartbeats

        # Fault-injection hook.  Firing happens *after* the machine's
        # state advanced: the application really ran and really drew
        # power — only the observation of the window is perturbed or
        # lost.  The null injector returns an empty tuple and draws no
        # random numbers, so the fault-free path is bit-identical.
        for spec in get_injector().fire("machine.measure", clock=self.clock):
            if spec.kind == "sensor-dropout":
                raise SensorReadError("injected sensor dropout",
                                      site="machine.measure")
            if spec.kind == "sensor-outlier":
                rate_obs *= spec.magnitude
                power_obs *= spec.magnitude
                chip_obs *= spec.magnitude
            elif spec.kind == "sensor-bias":
                power_obs *= (1.0 + spec.magnitude)
                chip_obs *= (1.0 + spec.magnitude)
        return Measurement(duration=duration, heartbeats=heartbeats,
                           rate=rate_obs, system_power=power_obs,
                           chip_power=chip_obs)

    def idle_for(self, duration: float) -> float:
        """Idle the machine for ``duration`` seconds; returns energy spent."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        if self.thermal is not None and duration > 0:
            self.thermal.advance(0.0, duration)
        energy = self.idle_power() * duration
        self.clock += duration
        self.total_energy += energy
        return energy

    # ------------------------------------------------------------------
    # Profiling sweeps
    # ------------------------------------------------------------------
    def sweep(self, profile: ApplicationProfile, space: ConfigurationSpace,
              window: float = 1.0, noisy: bool = True
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Measure ``profile`` in every configuration of ``space``.

        Returns ``(rates, powers)`` arrays of length ``len(space)``.  This
        is the offline profiling campaign (and, with ``noisy=False``, the
        exhaustive-search ground truth).
        """
        previous = (self._profile, self._config)
        self.load(profile)
        rates = np.empty(len(space))
        powers = np.empty(len(space))
        for i, config in enumerate(space):
            if noisy:
                self.apply(config)
                m = self.run_for(window)
                rates[i], powers[i] = m.rate, m.system_power
            else:
                rates[i] = self.true_rate(profile, config)
                powers[i] = self.true_power(profile, config)
        self._profile, self._config = previous
        return rates, powers
