"""Hardware topology of the simulated test platform.

The paper's testbed is a dual-socket SuperMICRO X9DRL-iF board with two
Intel Xeon E5-2690 processors (Section 6.1).  Each chip has eight cores,
two-way hyperthreading, its own memory controller, and a 135 W thermal
design power.  This module describes that topology so the rest of the
simulator can reason about which socket a core lives on, how many memory
controllers a configuration touches, and how many hardware thread contexts
a core allocation provides.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Topology:
    """Static description of the machine's processor topology.

    Attributes:
        sockets: Number of processor packages.
        cores_per_socket: Physical cores on each package.
        threads_per_core: Hardware thread contexts per core (SMT width).
        memory_controllers: Number of independent memory controllers
            (one per socket on the paper's testbed).
        tdp_watts: Thermal design power of a single package.
    """

    sockets: int = 2
    cores_per_socket: int = 8
    threads_per_core: int = 2
    memory_controllers: int = 2
    tdp_watts: float = 135.0

    def __post_init__(self) -> None:
        for name in ("sockets", "cores_per_socket", "threads_per_core",
                     "memory_controllers"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if self.tdp_watts <= 0:
            raise ValueError(f"tdp_watts must be positive, got {self.tdp_watts!r}")
        if self.memory_controllers > self.sockets:
            raise ValueError(
                "memory_controllers cannot exceed sockets "
                f"({self.memory_controllers} > {self.sockets})"
            )

    @property
    def total_cores(self) -> int:
        """Total physical cores across all sockets."""
        return self.sockets * self.cores_per_socket

    @property
    def total_threads(self) -> int:
        """Total hardware thread contexts across all sockets."""
        return self.total_cores * self.threads_per_core

    def sockets_for_cores(self, cores: int) -> int:
        """Number of sockets that must be powered to host ``cores`` cores.

        Cores are packed onto sockets in order, mirroring how a process
        affinity mask that allocates the first k cores spans packages.
        """
        if cores < 0:
            raise ValueError(f"cores must be non-negative, got {cores}")
        if cores == 0:
            return 0
        if cores > self.total_cores:
            raise ValueError(
                f"cores {cores} exceeds total physical cores {self.total_cores}"
            )
        full, partial = divmod(cores, self.cores_per_socket)
        return full + (1 if partial else 0)

    def cores_on_socket(self, cores: int, socket: int) -> int:
        """How many of the first ``cores`` allocated cores land on ``socket``."""
        if socket < 0 or socket >= self.sockets:
            raise ValueError(f"socket {socket} out of range [0, {self.sockets})")
        start = socket * self.cores_per_socket
        used = min(max(cores - start, 0), self.cores_per_socket)
        return used


#: The topology of the paper's evaluation platform (Section 6.1).
PAPER_TOPOLOGY = Topology()
