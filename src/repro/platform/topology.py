"""Hardware topology of the simulated test platform.

The paper's testbed is a dual-socket SuperMICRO X9DRL-iF board with two
Intel Xeon E5-2690 processors (Section 6.1).  Each chip has eight cores,
two-way hyperthreading, its own memory controller, and a 135 W thermal
design power.  This module describes that topology so the rest of the
simulator can reason about which socket a core lives on, how many memory
controllers a configuration touches, and how many hardware thread contexts
a core allocation provides.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple, Union


@dataclasses.dataclass(frozen=True)
class Topology:
    """Static description of the machine's processor topology.

    Attributes:
        sockets: Number of processor packages.
        cores_per_socket: Physical cores on each package.
        threads_per_core: Hardware thread contexts per core (SMT width).
        memory_controllers: Number of independent memory controllers
            (one per socket on the paper's testbed).
        tdp_watts: Thermal design power of a single package.
    """

    sockets: int = 2
    cores_per_socket: int = 8
    threads_per_core: int = 2
    memory_controllers: int = 2
    tdp_watts: float = 135.0

    def __post_init__(self) -> None:
        for name in ("sockets", "cores_per_socket", "threads_per_core",
                     "memory_controllers"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if self.tdp_watts <= 0:
            raise ValueError(f"tdp_watts must be positive, got {self.tdp_watts!r}")
        if self.memory_controllers > self.sockets:
            raise ValueError(
                "memory_controllers cannot exceed sockets "
                f"({self.memory_controllers} > {self.sockets})"
            )

    @property
    def total_cores(self) -> int:
        """Total physical cores across all sockets."""
        return self.sockets * self.cores_per_socket

    @property
    def total_threads(self) -> int:
        """Total hardware thread contexts across all sockets."""
        return self.total_cores * self.threads_per_core

    def sockets_for_cores(self, cores: int) -> int:
        """Number of sockets that must be powered to host ``cores`` cores.

        Cores are packed onto sockets in order, mirroring how a process
        affinity mask that allocates the first k cores spans packages.
        """
        if cores < 0:
            raise ValueError(f"cores must be non-negative, got {cores}")
        if cores == 0:
            return 0
        if cores > self.total_cores:
            raise ValueError(
                f"cores {cores} exceeds total physical cores {self.total_cores}"
            )
        full, partial = divmod(cores, self.cores_per_socket)
        return full + (1 if partial else 0)

    def cores_on_socket(self, cores: int, socket: int) -> int:
        """How many of the first ``cores`` allocated cores land on ``socket``."""
        if socket < 0 or socket >= self.sockets:
            raise ValueError(f"socket {socket} out of range [0, {self.sockets})")
        start = socket * self.cores_per_socket
        used = min(max(cores - start, 0), self.cores_per_socket)
        return used

    # ------------------------------------------------------------------
    # Partitioning (the cluster subsystem's substrate)
    # ------------------------------------------------------------------
    def split(self, requests: Sequence[Union["CorePartition",
                                             Tuple[str, int],
                                             Tuple[str, int, int]]]
              ) -> List["CorePartition"]:
        """Divide the machine's cores into disjoint named partitions.

        Each request is a :class:`CorePartition` or a ``(name, cores)``
        / ``(name, cores, threads)`` tuple; ``threads`` defaults to both
        hyperthread contexts of every owned core.  Cores are packed
        contiguously in request order (the affinity-mask convention the
        rest of the platform uses), so the returned partitions carry
        their ``first_core`` offsets.

        Raises ``ValueError`` naming the offending partition for the
        three ways a split can be malformed: a zero-core partition, a
        partition claiming hyperthread contexts beyond its own cores'
        siblings (splitting an HT pair across partitions), and
        over-subscription of the physical cores.
        """
        partitions: List[CorePartition] = []
        next_core = 0
        seen = set()
        for request in requests:
            if isinstance(request, CorePartition):
                name, cores, threads = (request.name, request.cores,
                                        request.threads)
            else:
                name = request[0]
                cores = request[1]
                threads = (request[2] if len(request) > 2
                           else self.threads_per_core * request[1])
            if not name or not isinstance(name, str):
                raise ValueError(
                    f"partition name must be a non-empty string, got {name!r}")
            if name in seen:
                raise ValueError(f"duplicate partition {name!r}")
            seen.add(name)
            if cores < 1:
                raise ValueError(
                    f"partition {name!r} allocates zero cores; every "
                    f"partition needs at least one physical core")
            if threads < cores:
                raise ValueError(
                    f"partition {name!r} allocates {threads} thread "
                    f"contexts for {cores} cores; each core contributes "
                    f"at least its primary context")
            if threads > self.threads_per_core * cores:
                raise ValueError(
                    f"partition {name!r} splits hyperthread siblings: "
                    f"{threads} thread contexts exceed the "
                    f"{self.threads_per_core * cores} contexts of its own "
                    f"{cores} cores (sibling contexts belong to the "
                    f"partition owning the core)")
            if next_core + cores > self.total_cores:
                raise ValueError(
                    f"partitions over-subscribe the machine: partition "
                    f"{name!r} needs cores "
                    f"[{next_core}, {next_core + cores}) but the machine "
                    f"has {self.total_cores} physical cores")
            partitions.append(CorePartition(name=name, cores=cores,
                                            threads=threads,
                                            first_core=next_core))
            next_core += cores
        return partitions


@dataclasses.dataclass(frozen=True)
class CorePartition:
    """A named, contiguous slice of a machine's physical cores.

    Attributes:
        name: Tenant/partition identifier.
        cores: Physical cores owned by the partition.
        threads: Hardware thread contexts owned (between ``cores`` and
            ``threads_per_core * cores``; a partition owns the
            hyperthread siblings of its own cores and nothing else).
        first_core: Offset of the partition's first core in the node's
            flat core numbering (assigned by :meth:`Topology.split`).
    """

    name: str
    cores: int
    threads: int
    first_core: int = 0

    @property
    def last_core(self) -> int:
        """One past the partition's highest core index."""
        return self.first_core + self.cores


#: The topology of the paper's evaluation platform (Section 6.1).
PAPER_TOPOLOGY = Topology()
