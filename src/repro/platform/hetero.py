"""Heterogeneous platforms: asymmetric core clusters and offload devices.

The paper evaluates on a homogeneous dual-Xeon, but the strongest related
work (REOH's probabilistic network for heterogeneous devices, Coutinho et
al.'s big.LITTLE trade-off study) shows the estimate→Pareto→LP loop pays
off far more when core types differ.  This module makes heterogeneity a
first-class platform concept:

* :class:`CoreCluster` — a named group of identical cores with its own
  frequency ladder, TDP, and per-core performance/power scaling relative
  to the paper's nominal Xeon core;
* :class:`OffloadDevice` — a GPU-like fixed-function accelerator with a
  compute speedup and a per-heartbeat transfer overhead;
* :class:`HeteroTopology` — an ordered collection of clusters plus an
  optional offload device;
* :class:`HeteroConfiguration` / :func:`hetero_space` — configurations
  carrying per-cluster core counts and per-cluster DVFS states, growing
  the space well beyond the paper's 1024;
* :class:`HeteroPerformanceModel` / :class:`HeteroPowerModel` /
  :class:`HeteroMachine` — ground-truth models composing per-cluster
  contributions.

Degeneracy guarantee
--------------------
A homogeneous :class:`HeteroTopology` built with :meth:`from_topology`
degenerates *exactly* to today's behaviour: :func:`hetero_space` returns
the plain paper space, and the hetero models route plain
:class:`Configuration` objects through the original
:class:`PerformanceModel`/:class:`PowerModel` code, so every estimate,
Pareto frontier, and LP schedule is bit-identical to the homogeneous
path.  Additionally the per-cluster composition is written so that a
single-cluster allocation with unit scaling reduces to the *same floating
point operations* as the base models (``x * 1.0``, ``0.0 + x`` and
``x / x`` are exact in IEEE 754), which the degeneracy tests assert at
rtol=0.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.platform.config_space import Configuration, ConfigurationSpace
from repro.platform.dvfs import (
    DVFS_FREQUENCIES_GHZ,
    NOMINAL_GHZ,
    SpeedSetting,
    dynamic_power_scale,
    voltage_at,
)
from repro.platform.machine import Machine
from repro.platform.performance_model import (
    PerformanceModel,
    contention_penalty,
    memory_speedup,
)
from repro.platform.power_model import PowerConstants, PowerModel
from repro.platform.thermal import ThermalModel
from repro.platform.topology import PAPER_TOPOLOGY, CorePartition, Topology
from repro.workloads.profile import ApplicationProfile


@dataclasses.dataclass(frozen=True)
class CoreCluster:
    """A named group of identical cores inside a heterogeneous package.

    Attributes:
        name: Cluster identifier (e.g. ``"big"``, ``"little"``).
        cores: Physical cores in the cluster.
        min_ghz / max_ghz / dvfs_steps: The cluster's own DVFS ladder,
            evenly spaced like the paper's 1.2–2.9 GHz Xeon ladder.
        turbo: Whether the ladder gains an opportunistic turbo entry
            (only meaningful for Xeon-class big clusters; the turbo bins
            follow the global model in :mod:`repro.platform.dvfs`).
        perf_scale: Per-core throughput at equal frequency relative to
            the paper's nominal Xeon core (LITTLE cores < 1).
        power_scale: Per-core power relative to the nominal Xeon core at
            the same voltage/frequency point (LITTLE cores « 1).
        threads_per_core: SMT width.  Asymmetric mobile-style clusters
            are SMT-off (1); the degenerate Xeon cluster keeps 2.
        tdp_watts: Thermal design power of the cluster's package domain.
    """

    name: str
    cores: int
    min_ghz: float = DVFS_FREQUENCIES_GHZ[0]
    max_ghz: float = NOMINAL_GHZ
    dvfs_steps: int = 8
    turbo: bool = False
    perf_scale: float = 1.0
    power_scale: float = 1.0
    threads_per_core: int = 1
    tdp_watts: float = 135.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"cluster name must be a non-empty string, "
                             f"got {self.name!r}")
        if self.cores < 1:
            raise ValueError(f"cluster {self.name!r}: cores must be >= 1, "
                             f"got {self.cores}")
        if not 0 < self.min_ghz <= self.max_ghz:
            raise ValueError(
                f"cluster {self.name!r}: need 0 < min_ghz <= max_ghz, got "
                f"[{self.min_ghz}, {self.max_ghz}]")
        if self.dvfs_steps < 1:
            raise ValueError(f"cluster {self.name!r}: dvfs_steps must be "
                             f">= 1, got {self.dvfs_steps}")
        if self.perf_scale <= 0 or self.power_scale <= 0:
            raise ValueError(
                f"cluster {self.name!r}: perf_scale and power_scale must "
                f"be positive, got {self.perf_scale}/{self.power_scale}")
        if self.threads_per_core < 1:
            raise ValueError(f"cluster {self.name!r}: threads_per_core "
                             f"must be >= 1, got {self.threads_per_core}")
        if self.tdp_watts <= 0:
            raise ValueError(f"cluster {self.name!r}: tdp_watts must be "
                             f"positive, got {self.tdp_watts}")

    @property
    def threads(self) -> int:
        """Hardware thread contexts in the cluster."""
        return self.cores * self.threads_per_core

    def speed_ladder(self) -> List[SpeedSetting]:
        """The cluster's DVFS ladder, slowest first (plus turbo if any)."""
        if self.dvfs_steps == 1:
            freqs: Sequence[float] = (round(self.max_ghz, 5),)
        else:
            freqs = tuple(round(f, 5) for f in
                          np.linspace(self.min_ghz, self.max_ghz,
                                      self.dvfs_steps))
        ladder = [SpeedSetting(index=i, base_ghz=f, turbo=False)
                  for i, f in enumerate(freqs)]
        if self.turbo:
            ladder.append(SpeedSetting(index=len(freqs),
                                       base_ghz=freqs[-1], turbo=True))
        return ladder


@dataclasses.dataclass(frozen=True)
class OffloadDevice:
    """A GPU-like fixed-function accelerator attached to the node.

    When a configuration offloads, the compute portion of each heartbeat
    runs on the device at ``speedup``× a single nominal big core, paying
    ``transfer_seconds`` of host↔device transfer per heartbeat.  The
    device draws ``active_watts`` while offloading and ``idle_watts``
    otherwise (it is attached, so it always draws at least idle power on
    heterogeneous nodes that declare it).
    """

    name: str = "gpu"
    speedup: float = 8.0
    transfer_seconds: float = 0.004
    active_watts: float = 60.0
    idle_watts: float = 8.0

    def __post_init__(self) -> None:
        if self.speedup <= 0:
            raise ValueError(f"speedup must be positive, got {self.speedup}")
        if self.transfer_seconds < 0:
            raise ValueError(f"transfer_seconds must be non-negative, "
                             f"got {self.transfer_seconds}")
        if self.active_watts < 0 or self.idle_watts < 0:
            raise ValueError("device power draws must be non-negative")
        if self.idle_watts > self.active_watts:
            raise ValueError(
                f"idle_watts {self.idle_watts} exceeds active_watts "
                f"{self.active_watts}")


class HeteroTopology:
    """An ordered collection of asymmetric core clusters.

    Built either from explicit clusters (genuinely heterogeneous) or via
    :meth:`from_topology` (homogeneous-degenerate: one cluster mirroring
    a plain :class:`Topology`, with the original kept so every model can
    delegate to the exact homogeneous code path).
    """

    def __init__(self, clusters: Sequence[CoreCluster],
                 memory_controllers: int = 2,
                 offload: Optional[OffloadDevice] = None,
                 base: Optional[Topology] = None) -> None:
        if not clusters:
            raise ValueError("a HeteroTopology needs at least one cluster")
        names = [c.name for c in clusters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cluster names in {names}")
        if memory_controllers < 1:
            raise ValueError(f"memory_controllers must be >= 1, "
                             f"got {memory_controllers}")
        self.clusters: Tuple[CoreCluster, ...] = tuple(clusters)
        self.memory_controllers = memory_controllers
        self.offload = offload
        self._base = base

    @classmethod
    def from_topology(cls, topology: Topology = PAPER_TOPOLOGY
                      ) -> "HeteroTopology":
        """The homogeneous-degenerate hetero view of a plain topology."""
        cluster = CoreCluster(
            name="xeon",
            cores=topology.total_cores,
            min_ghz=DVFS_FREQUENCIES_GHZ[0],
            max_ghz=NOMINAL_GHZ,
            dvfs_steps=len(DVFS_FREQUENCIES_GHZ),
            turbo=True,
            perf_scale=1.0,
            power_scale=1.0,
            threads_per_core=topology.threads_per_core,
            tdp_watts=topology.tdp_watts * topology.sockets,
        )
        return cls((cluster,), topology.memory_controllers, offload=None,
                   base=topology)

    @property
    def is_homogeneous(self) -> bool:
        """True when this topology degenerates to a plain ``Topology``."""
        return self._base is not None

    @property
    def base_topology(self) -> Topology:
        """The plain topology a homogeneous-degenerate instance mirrors."""
        if self._base is None:
            raise ValueError(
                "a genuinely heterogeneous topology has no base Topology")
        return self._base

    @property
    def total_cores(self) -> int:
        return sum(c.cores for c in self.clusters)

    @property
    def total_threads(self) -> int:
        return sum(c.threads for c in self.clusters)

    @property
    def total_tdp_watts(self) -> float:
        return sum(c.tdp_watts for c in self.clusters)

    def cluster_named(self, name: str) -> CoreCluster:
        for cluster in self.clusters:
            if cluster.name == name:
                return cluster
        raise KeyError(f"no cluster named {name!r} "
                       f"(have {[c.name for c in self.clusters]})")

    def cluster_index(self, name: str) -> int:
        for i, cluster in enumerate(self.clusters):
            if cluster.name == name:
                return i
        raise KeyError(f"no cluster named {name!r}")

    def split_by_cluster(self) -> List[CorePartition]:
        """One :class:`CorePartition` per cluster, packed in order.

        This is the hetero analogue of :meth:`Topology.split` and feeds
        the cluster subsystem's per-tenant partitioning.
        """
        partitions: List[CorePartition] = []
        next_core = 0
        for cluster in self.clusters:
            partitions.append(CorePartition(
                name=cluster.name, cores=cluster.cores,
                threads=cluster.threads, first_core=next_core))
            next_core += cluster.cores
        return partitions

    def signature(self) -> np.ndarray:
        """Numeric platform descriptor for the transfer-prior kernel.

        ``[total_cores, total_threads, memory_controllers, min_ghz,
        max_ghz, core-weighted perf_scale, core-weighted power_scale,
        total tdp, offload speedup (0 when absent)]`` — comparable
        across homogeneous and heterogeneous platforms.
        """
        cores = self.total_cores
        perf = sum(c.perf_scale * c.cores for c in self.clusters) / cores
        power = sum(c.power_scale * c.cores for c in self.clusters) / cores
        return np.array([
            float(cores),
            float(self.total_threads),
            float(self.memory_controllers),
            min(c.min_ghz for c in self.clusters),
            max(c.max_ghz for c in self.clusters),
            perf,
            power,
            self.total_tdp_watts,
            self.offload.speedup if self.offload is not None else 0.0,
        ])

    def __repr__(self) -> str:
        names = "+".join(f"{c.cores}{c.name}" for c in self.clusters)
        dev = f"+{self.offload.name}" if self.offload else ""
        return f"HeteroTopology({names}{dev}, mem={self.memory_controllers})"


@dataclasses.dataclass(frozen=True)
class HeteroConfiguration(Configuration):
    """A resource assignment with per-cluster core counts and speeds.

    The base fields hold the aggregates (``cores``/``threads`` summed
    over clusters, ``speed`` of the first active cluster) so every
    aggregate-only consumer — the LP layer, partitioning, telemetry —
    keeps working unchanged.  SMT contexts are not a hetero knob:
    ``threads == cores`` always (asymmetric mobile-style clusters run
    SMT-off).

    Attributes:
        cluster_cores: Cores allocated on each cluster, topology order.
        cluster_speeds: Speed setting of each cluster (entries for empty
            clusters are pinned to the cluster's slowest step so equal
            allocations have equal identity).
        offload: Whether the compute portion runs on the offload device.
    """

    cluster_cores: Tuple[int, ...] = ()
    cluster_speeds: Tuple[SpeedSetting, ...] = ()
    offload: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.cluster_cores:
            raise ValueError("a HeteroConfiguration needs cluster_cores")
        if len(self.cluster_cores) != len(self.cluster_speeds):
            raise ValueError(
                f"cluster_cores ({len(self.cluster_cores)}) and "
                f"cluster_speeds ({len(self.cluster_speeds)}) disagree")
        if any(c < 0 for c in self.cluster_cores):
            raise ValueError(f"cluster core counts must be non-negative, "
                             f"got {self.cluster_cores}")
        if sum(self.cluster_cores) != self.cores:
            raise ValueError(
                f"cluster cores {self.cluster_cores} sum to "
                f"{sum(self.cluster_cores)} but cores={self.cores}")
        if self.threads != self.cores:
            raise ValueError(
                "hetero configurations run SMT-off: threads "
                f"({self.threads}) must equal cores ({self.cores})")

    def active_clusters(self) -> Tuple[Tuple[int, int], ...]:
        """``(cluster_index, cores)`` pairs with at least one core."""
        return tuple((k, c) for k, c in enumerate(self.cluster_cores)
                     if c > 0)

    def lookup_key(self):
        return (super().lookup_key(), self.cluster_cores,
                tuple(s.index for s in self.cluster_speeds), self.offload)

    def feature_vector(self) -> np.ndarray:
        """Aggregate knobs followed by per-cluster knobs and the offload
        flag — the predictor vector for feature-based estimators and the
        alignment space for cross-platform transfer."""
        values = [float(self.cores), float(self.threads),
                  float(self.memory_controllers), float(self.speed.index)]
        values.extend(float(c) for c in self.cluster_cores)
        values.extend(float(s.index) for s in self.cluster_speeds)
        values.append(1.0 if self.offload else 0.0)
        return np.array(values, dtype=float)


def hetero_space(topology: HeteroTopology,
                 speed_indices: Optional[Sequence[Optional[Sequence[int]]]]
                 = None,
                 include_offload: bool = True) -> ConfigurationSpace:
    """Enumerate the configuration space of a heterogeneous topology.

    A homogeneous-degenerate topology returns exactly
    ``ConfigurationSpace.paper_space(topology.base_topology)`` — the
    degeneracy guarantee, bit for bit.

    Otherwise configurations carry one core count per cluster (0..cores,
    excluding the all-idle assignment) and one DVFS state per *active*
    cluster (empty clusters are pinned to their slowest step).  Ordering
    follows the paper's convention — memory controllers vary fastest,
    then speeds (later clusters fastest), then the offload flag, then
    per-cluster core counts.

    ``speed_indices`` optionally decimates each cluster's ladder (one
    sequence of ladder indices per cluster, ``None`` keeping the full
    ladder) so experiments can trade space size for estimation cost.
    """
    if topology.is_homogeneous:
        return ConfigurationSpace.paper_space(topology.base_topology)
    ladders: List[List[SpeedSetting]] = []
    for k, cluster in enumerate(topology.clusters):
        ladder = cluster.speed_ladder()
        if speed_indices is not None and speed_indices[k] is not None:
            ladder = [ladder[i] for i in speed_indices[k]]
            if not ladder:
                raise ValueError(f"cluster {cluster.name!r}: empty ladder")
        ladders.append(ladder)
    offload_choices = ((False, True)
                       if include_offload and topology.offload is not None
                       else (False,))
    configs: List[Configuration] = []
    core_ranges = [range(0, c.cores + 1) for c in topology.clusters]
    for cores_tuple in itertools.product(*core_ranges):
        total = sum(cores_tuple)
        if total == 0:
            continue
        speed_choices = [ladders[k] if c > 0 else ladders[k][:1]
                         for k, c in enumerate(cores_tuple)]
        for off in offload_choices:
            for speeds in itertools.product(*speed_choices):
                first_active = next(k for k, c in enumerate(cores_tuple)
                                    if c > 0)
                for mem in range(1, topology.memory_controllers + 1):
                    configs.append(HeteroConfiguration(
                        cores=total, threads=total,
                        memory_controllers=mem,
                        speed=speeds[first_active],
                        cluster_cores=cores_tuple,
                        cluster_speeds=speeds,
                        offload=off,
                    ))
    return ConfigurationSpace(configs, topology)


def cluster_indices(space: ConfigurationSpace, topology: HeteroTopology,
                    name: str) -> List[int]:
    """Flat indices of the configurations active *only* on cluster ``name``.

    These are the non-contiguous base-index subsets hetero partitions
    feed to ``cluster.partition.partition_space``.
    """
    target = topology.cluster_index(name)
    indices = []
    for i, config in enumerate(space):
        if not isinstance(config, HeteroConfiguration):
            continue
        active = config.active_clusters()
        if len(active) == 1 and active[0][0] == target and not config.offload:
            indices.append(i)
    return indices


def _require_hetero(topology: HeteroTopology,
                    config: Configuration) -> HeteroConfiguration:
    if not isinstance(config, HeteroConfiguration):
        raise TypeError(
            f"a heterogeneous topology {topology!r} only runs "
            f"HeteroConfigurations; got a plain {type(config).__name__} "
            f"(build one with hetero_space())")
    if len(config.cluster_cores) != len(topology.clusters):
        raise ValueError(
            f"configuration spans {len(config.cluster_cores)} clusters "
            f"but the topology has {len(topology.clusters)}")
    for (k, c) in config.active_clusters():
        if c > topology.clusters[k].cores:
            raise ValueError(
                f"configuration uses {c} cores on cluster "
                f"{topology.clusters[k].name!r} which has "
                f"{topology.clusters[k].cores}")
    if config.offload and topology.offload is None:
        raise ValueError("configuration offloads but the topology has "
                         "no offload device")
    return config


class HeteroPerformanceModel(PerformanceModel):
    """Ground-truth heartbeat rate composed from per-cluster contributions.

    The serial fraction runs on the fastest allocated core; the parallel
    fraction sees the allocation's effective core count expressed in
    fastest-core units (heterogeneous Amdahl).  On the homogeneous
    degenerate topology, plain configurations delegate to the original
    :class:`PerformanceModel` — the bit-identical path.
    """

    def __init__(self, topology: HeteroTopology) -> None:
        self.topology = topology
        self.hetero = topology
        self._base = (PerformanceModel(topology.base_topology)
                      if topology.is_homogeneous else None)

    def _compute_terms(self, config: HeteroConfiguration
                       ) -> Tuple[List[float], List[float], int]:
        """Per-active-cluster relative speeds and effective core counts.

        Speeds are ``perf_scale * delivered_ghz / NOMINAL_GHZ`` — the
        per-core throughput relative to a nominal paper core.  Returns
        ``(speeds, effective_cores, primary)`` with ``primary`` the
        position of the fastest per-core cluster in the active list.
        """
        speeds: List[float] = []
        effs: List[float] = []
        for k, c in config.active_clusters():
            cluster = self.hetero.clusters[k]
            ghz = config.cluster_speeds[k].effective_ghz(c, cluster.cores)
            speeds.append(cluster.perf_scale * (ghz / NOMINAL_GHZ))
            effs.append(max(float(c), 0.1))
        primary = max(range(len(speeds)), key=speeds.__getitem__)
        return speeds, effs, primary

    def heartbeat_rate(self, profile: ApplicationProfile,
                       config: Configuration) -> float:
        if not isinstance(config, HeteroConfiguration):
            if self._base is not None:
                return self._base.heartbeat_rate(profile, config)
            _require_hetero(self.hetero, config)
        config = _require_hetero(self.hetero, config)

        base_period = 1.0 / profile.base_rate
        t_cpu0 = base_period * profile.compute_intensity
        t_mem0 = base_period * profile.memory_intensity
        t_io0 = base_period * profile.io_intensity

        speeds, effs, primary = self._compute_terms(config)
        s1 = speeds[primary]
        # Effective cores in fastest-core units.  For a single active
        # cluster speeds[i]/s1 is exactly 1.0, so this reduces bit-for-bit
        # to the homogeneous Amdahl term.
        e_rel = 0.0
        for i in range(len(speeds)):
            e_rel += effs[i] * (speeds[i] / s1)
        s = profile.serial_fraction
        speedup = 1.0 / (s + (1.0 - s) / e_rel)
        t_cpu = t_cpu0 / (speedup * s1)

        device = self.hetero.offload
        if config.offload and device is not None:
            t_cpu = t_cpu0 / device.speedup + device.transfer_seconds

        t_mem = t_mem0 / memory_speedup(profile, config)
        period = t_cpu + t_mem + t_io0
        return contention_penalty(profile, config) / period


class HeteroPowerModel(PowerModel):
    """Ground-truth power composed from per-cluster package domains.

    Each cluster is one package domain: uncore charged when the cluster
    is active, leakage and dynamic power per allocated core at the
    cluster's own voltage/frequency point, all scaled by the cluster's
    ``power_scale``.  The offload device adds active/idle watts at the
    system level.  Plain configurations on the homogeneous degenerate
    topology delegate to the original :class:`PowerModel`.
    """

    def __init__(self, topology: HeteroTopology,
                 constants: PowerConstants = PowerConstants()) -> None:
        self.topology = topology
        self.hetero = topology
        self.constants = constants
        self._base = (PowerModel(topology.base_topology, constants)
                      if topology.is_homogeneous else None)

    def chip_power(self, profile: ApplicationProfile,
                   config: Configuration) -> float:
        if not isinstance(config, HeteroConfiguration):
            if self._base is not None:
                return self._base.chip_power(profile, config)
            _require_hetero(self.hetero, config)
        config = _require_hetero(self.hetero, config)
        k = self.constants
        util = self._core_utilization(profile, config)
        total = 0.0
        for idx, c in config.active_clusters():
            cluster = self.hetero.clusters[idx]
            ghz = config.cluster_speeds[idx].effective_ghz(c, cluster.cores)
            volt_ratio = voltage_at(ghz) / voltage_at(NOMINAL_GHZ)
            leakage = c * k.core_leakage_nominal * volt_ratio
            dynamic_per_core = (k.core_dynamic_max * dynamic_power_scale(ghz)
                                * profile.activity_factor * util)
            dynamic = c * dynamic_per_core
            uncore = k.uncore_per_socket
            total += (uncore + leakage + dynamic) * cluster.power_scale
        return total

    def dram_power(self, profile: ApplicationProfile,
                   config: Configuration) -> float:
        if not isinstance(config, HeteroConfiguration) \
                and self._base is not None:
            return self._base.dram_power(profile, config)
        return super().dram_power(profile, config)

    def _device_power(self, config: Configuration) -> float:
        device = self.hetero.offload
        if device is None:
            return 0.0
        offloading = (isinstance(config, HeteroConfiguration)
                      and config.offload)
        return device.active_watts if offloading else device.idle_watts

    def system_power(self, profile: ApplicationProfile,
                     config: Configuration) -> float:
        if not isinstance(config, HeteroConfiguration) \
                and self._base is not None:
            return self._base.system_power(profile, config)
        return (self.constants.system_floor
                + self.chip_power(profile, config)
                + self.dram_power(profile, config)
                + self._device_power(config))

    def idle_power(self) -> float:
        if self._base is not None:
            return self._base.idle_power()
        uncore = 0.0
        for cluster in self.hetero.clusters:
            uncore += cluster.power_scale * self.constants.uncore_per_socket
        idle = self.constants.system_floor + 0.25 * uncore
        if self.hetero.offload is not None:
            idle += self.hetero.offload.idle_watts
        return idle


class HeteroMachine(Machine):
    """A :class:`Machine` whose topology is heterogeneous.

    Execution, measurement noise, thermal coupling, fault hooks, and
    sweeps are all inherited unchanged — only the ground-truth models
    are swapped for the per-cluster composing ones, so a homogeneous
    degenerate ``HeteroMachine`` with the same seed produces bit-equal
    measurements to a plain ``Machine``.
    """

    def __init__(self, topology: HeteroTopology,
                 seed: Optional[int] = None,
                 thermal: Optional[ThermalModel] = None) -> None:
        super().__init__(PAPER_TOPOLOGY, seed=seed, thermal=thermal)
        self.topology = topology
        self.performance_model = HeteroPerformanceModel(topology)
        self.power_model = HeteroPowerModel(topology)

    @property
    def hetero(self) -> HeteroTopology:
        return self.topology


#: A default big.LITTLE-style node with a modest offload device: four
#: Xeon-class big cores, four efficiency cores at less than half the
#: per-core throughput and a seventh of the power, one GPU-like device.
BIG_LITTLE = HeteroTopology(
    clusters=(
        CoreCluster(name="big", cores=4, min_ghz=1.2, max_ghz=2.9,
                    dvfs_steps=7, turbo=True, perf_scale=1.0,
                    power_scale=1.0, tdp_watts=70.0),
        CoreCluster(name="little", cores=4, min_ghz=0.6, max_ghz=1.6,
                    dvfs_steps=4, turbo=False, perf_scale=0.42,
                    power_scale=0.15, tdp_watts=8.0),
    ),
    memory_controllers=2,
    offload=OffloadDevice(name="gpu", speedup=8.0, transfer_seconds=0.004,
                          active_watts=55.0, idle_watts=6.0),
)
