"""Dynamic voltage and frequency scaling (DVFS) model.

The paper's Xeon E5-2690 exposes fifteen DVFS settings from 1.2 to 2.9 GHz
plus TurboBoost (Section 6.1), for sixteen speed settings in total.  This
module enumerates that frequency ladder and provides the voltage/frequency
relationship the power model builds on: across the DVFS range, supply
voltage rises roughly linearly with frequency, so dynamic power grows like
``C * V(f)^2 * f``.

TurboBoost is modeled as an opportunistic boost above nominal frequency
whose magnitude shrinks as more cores are active, following Intel's bin
scheme (maximum boost with one or two active cores, stepping down as the
active-core count rises).
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

#: Nominal DVFS frequencies in GHz: fifteen evenly spaced steps, 1.2-2.9 GHz.
DVFS_FREQUENCIES_GHZ: Sequence[float] = tuple(
    round(f, 5) for f in np.linspace(1.2, 2.9, 15)
)

#: Index used for the TurboBoost pseudo-frequency setting.
TURBO_INDEX = len(DVFS_FREQUENCIES_GHZ)

#: Peak single-core turbo frequency for the E5-2690 (3.8 GHz).
TURBO_PEAK_GHZ = 3.8

#: Nominal (all-core base) frequency.
NOMINAL_GHZ = DVFS_FREQUENCIES_GHZ[-1]


@dataclasses.dataclass(frozen=True)
class SpeedSetting:
    """One entry of the speed ladder: a DVFS step or TurboBoost.

    Attributes:
        index: Position in the ladder (0 = slowest, 15 = TurboBoost).
        base_ghz: The guaranteed frequency of this setting.
        turbo: Whether this setting enables opportunistic TurboBoost.
    """

    index: int
    base_ghz: float
    turbo: bool

    def effective_ghz(self, active_cores: int, total_cores: int) -> float:
        """Frequency actually delivered with ``active_cores`` running.

        Non-turbo settings always deliver their base frequency.  Turbo
        settings deliver a boost above nominal that decays linearly from
        the single-core peak down to a small all-core boost, matching the
        "fewer active cores, higher bins" behaviour of real TurboBoost.
        """
        if active_cores < 0:
            raise ValueError(f"active_cores must be non-negative, got {active_cores}")
        if total_cores < 1:
            raise ValueError(f"total_cores must be positive, got {total_cores}")
        if not self.turbo or active_cores == 0:
            return self.base_ghz
        active = min(active_cores, total_cores)
        # All-core turbo for the E5-2690 is ~3.3 GHz; single core ~3.8 GHz.
        all_core_boost = 3.3
        if total_cores == 1:
            return TURBO_PEAK_GHZ
        frac = (active - 1) / (total_cores - 1)
        return TURBO_PEAK_GHZ - frac * (TURBO_PEAK_GHZ - all_core_boost)


def speed_ladder() -> List[SpeedSetting]:
    """The sixteen speed settings of the paper's platform, slowest first."""
    ladder = [
        SpeedSetting(index=i, base_ghz=f, turbo=False)
        for i, f in enumerate(DVFS_FREQUENCIES_GHZ)
    ]
    ladder.append(SpeedSetting(index=TURBO_INDEX, base_ghz=NOMINAL_GHZ, turbo=True))
    return ladder


def voltage_at(freq_ghz: float) -> float:
    """Supply voltage (V) at a given frequency.

    Uses a linear V/f curve fit to typical Sandy Bridge operating points:
    ~0.85 V at 1.2 GHz rising to ~1.2 V at 2.9 GHz, extrapolating slightly
    for turbo frequencies.
    """
    if freq_ghz <= 0:
        raise ValueError(f"freq_ghz must be positive, got {freq_ghz}")
    v_low, f_low = 0.85, 1.2
    v_high, f_high = 1.20, 2.9
    slope = (v_high - v_low) / (f_high - f_low)
    return v_low + slope * (freq_ghz - f_low)


def dynamic_power_scale(freq_ghz: float) -> float:
    """Relative dynamic power ``V(f)^2 * f`` normalized to nominal frequency.

    Returns 1.0 at the nominal (2.9 GHz) frequency.  The power model
    multiplies per-core dynamic power by this factor.
    """
    nominal = voltage_at(NOMINAL_GHZ) ** 2 * NOMINAL_GHZ
    return (voltage_at(freq_ghz) ** 2 * freq_ghz) / nominal
