"""Configurations and the configuration space of the simulated platform.

A *configuration* is one assignment of system resources to the application:
how many physical cores it may use, how many hardware thread contexts
(hyperthreading on or off), how many memory controllers it may touch, and
which speed setting (DVFS step or TurboBoost) the cores run at.

The paper's platform exposes 1024 such configurations: 16 cores x 2
hyperthread settings x 2 memory controllers x 16 speed settings (Section
6.1, footnote 3).  When the paper plots estimates against a flat
"configuration index" (Figures 7 and 8), the index varies memory
controllers fastest, then clockspeed, then cores, which produces the
saw-tooth curves the paper describes; :class:`ConfigurationSpace` uses the
same ordering so our reproduced curves have the same appearance.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Sequence

import numpy as np

from repro.platform.dvfs import SpeedSetting, speed_ladder
from repro.platform.topology import PAPER_TOPOLOGY, Topology


@dataclasses.dataclass(frozen=True)
class Configuration:
    """One resource assignment.

    Attributes:
        cores: Number of physical cores allocated (1-based count).
        threads: Total hardware thread contexts allocated.  Equal to
            ``cores`` with hyperthreading off; up to ``2 * cores`` with
            hyperthreading on.  The motivational example's "32 cores"
            (Section 2) are 32 logical contexts, i.e. 16 physical cores
            with all hyperthread partners enabled.
        memory_controllers: Number of memory controllers accessible
            (the testbed has one per socket, controlled via numactl).
        speed: The speed setting the allocated cores run at.
    """

    cores: int
    threads: int
    memory_controllers: int
    speed: SpeedSetting

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if not self.cores <= self.threads <= 2 * self.cores:
            raise ValueError(
                f"threads must be in [cores, 2*cores] = "
                f"[{self.cores}, {2 * self.cores}], got {self.threads}"
            )
        if self.memory_controllers < 1:
            raise ValueError(
                f"memory_controllers must be >= 1, got {self.memory_controllers}"
            )

    @property
    def hyperthreading(self) -> bool:
        """Whether any hyperthread partner contexts are allocated."""
        return self.threads > self.cores

    def effective_ghz(self, total_cores: int) -> float:
        """Delivered core frequency given this allocation's active cores."""
        return self.speed.effective_ghz(self.cores, total_cores)

    def feature_vector(self) -> np.ndarray:
        """Numeric knob values ``[cores, threads, memory_controllers, speed]``.

        This is the predictor vector the online polynomial-regression
        baseline uses (Section 6.2: "configuration values (the number of
        cores, memory control and speed-settings) as predictors").
        """
        return np.array(
            [self.cores, self.threads, self.memory_controllers, self.speed.index],
            dtype=float,
        )

    def lookup_key(self):
        """Hashable identity used by :class:`ConfigurationSpace`'s index.

        Subclasses with extra knobs (per-cluster allocations on
        heterogeneous platforms) must extend this key, otherwise
        configurations sharing aggregate knob values would collide in
        the dict-backed lookup.
        """
        return (self.cores, self.threads, self.memory_controllers,
                self.speed.index)


class ConfigurationSpace:
    """An ordered, indexable collection of configurations.

    The order is the paper's flat configuration index: memory controllers
    vary fastest, then speed settings, then hyperthreading, then cores.
    """

    def __init__(self, configs: Sequence[Configuration],
                 topology: Topology = PAPER_TOPOLOGY) -> None:
        if not configs:
            raise ValueError("a configuration space must contain configurations")
        self._configs: List[Configuration] = list(configs)
        self.topology = topology
        self._index = {self._key(c): i for i, c in enumerate(self._configs)}
        if len(self._index) != len(self._configs):
            raise ValueError("configuration space contains duplicates")

    @staticmethod
    def _key(config: Configuration):
        return config.lookup_key()

    def __len__(self) -> int:
        return len(self._configs)

    def __getitem__(self, index: int) -> Configuration:
        return self._configs[index]

    def __iter__(self) -> Iterator[Configuration]:
        return iter(self._configs)

    def index_of(self, config: Configuration) -> int:
        """The flat index of ``config``; raises ``KeyError`` if absent."""
        return self._index[self._key(config)]

    def __contains__(self, config: Configuration) -> bool:
        return self._key(config) in self._index

    def feature_matrix(self) -> np.ndarray:
        """Stacked feature vectors, shape ``(len(self), d)``.

        ``d`` is 4 for plain configurations; heterogeneous spaces append
        per-cluster knobs (every member of a space shares one type, so
        rows always stack).
        """
        return np.stack([c.feature_vector() for c in self._configs])

    def subspace(self, indices: Sequence[int]) -> "ConfigurationSpace":
        """A new space holding ``self[i]`` for each ``i`` in ``indices``.

        Accepts any (possibly non-contiguous) index subset, preserving
        order; the configuration objects are shared, not copied.  This
        is the single code path for partition slicing and the
        allocator's budget filtering.
        """
        configs = [self._configs[i] for i in indices]
        return ConfigurationSpace(configs, self.topology)

    @classmethod
    def paper_space(cls, topology: Topology = PAPER_TOPOLOGY) -> "ConfigurationSpace":
        """The full 1024-configuration space of the paper's testbed.

        Ordering (fastest-changing last dimension first): memory
        controllers, then the 16 speed settings, then hyperthreading,
        then core count — matching the description under Figures 7/8.
        """
        ladder = speed_ladder()
        configs = []
        for cores in range(1, topology.total_cores + 1):
            for ht in (False, True):
                threads = cores * 2 if ht else cores
                for speed in ladder:
                    for mem in range(1, topology.memory_controllers + 1):
                        configs.append(Configuration(
                            cores=cores, threads=threads,
                            memory_controllers=mem, speed=speed,
                        ))
        return cls(configs, topology)

    @classmethod
    def cores_only(cls, topology: Topology = PAPER_TOPOLOGY) -> "ConfigurationSpace":
        """The 32-configuration core-allocation space of Section 2.

        Configuration ``c`` allocates ``c + 1`` logical CPUs (1..32) at the
        highest non-turbo speed with all memory controllers, mirroring the
        motivational example where only the affinity mask is varied.
        """
        top_speed = speed_ladder()[-2]  # highest non-turbo DVFS step
        configs = []
        for logical in range(1, topology.total_threads + 1):
            cores = min(logical, topology.total_cores)
            configs.append(Configuration(
                cores=cores, threads=logical,
                memory_controllers=topology.memory_controllers, speed=top_speed,
            ))
        return cls(configs, topology)
