"""First-order thermal model with throttling (optional realism).

The paper's stationary model assumes each configuration has one fixed
(rate, power) pair.  Real packages are not quite stationary: sustained
high power heats the die, and past the throttle point the processor
sheds frequency until it cools.  :class:`ThermalModel` is the standard
RC lumped model,

    T(t + dt) = T_amb + (T(t) - T_amb) e^{-dt/tau}
                + P * R * (1 - e^{-dt/tau}),

with hysteresis throttling: above ``throttle_celsius`` the delivered
frequency (and dynamic power) is derated by ``throttle_factor`` until
the die cools below ``resume_celsius``.

Disabled by default — every paper experiment runs the stationary model —
and enabled per machine (``Machine(thermal=ThermalModel())``) for the
stress tests: a thermal event looks exactly like a workload phase
change to the runtime, which is precisely what the phase detector is
for.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class ThermalModel:
    """Lumped RC package thermal model with hysteresis throttling.

    Attributes:
        ambient_celsius: Temperature the package relaxes toward.
        resistance: Junction-to-ambient thermal resistance (C/W) of the
            chip power above idle.
        time_constant: RC time constant in seconds.
        throttle_celsius: Die temperature that trips throttling.
        resume_celsius: Temperature below which throttling clears.
        throttle_factor: Frequency/power derate while throttled, (0, 1).
    """

    ambient_celsius: float = 35.0
    resistance: float = 0.30
    time_constant: float = 20.0
    throttle_celsius: float = 95.0
    resume_celsius: float = 85.0
    throttle_factor: float = 0.80

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(f"resistance must be positive, got {self.resistance}")
        if self.time_constant <= 0:
            raise ValueError(
                f"time_constant must be positive, got {self.time_constant}"
            )
        if self.resume_celsius >= self.throttle_celsius:
            raise ValueError(
                "resume_celsius must be below throttle_celsius "
                f"({self.resume_celsius} >= {self.throttle_celsius})"
            )
        if not 0 < self.throttle_factor < 1:
            raise ValueError(
                f"throttle_factor must be in (0, 1), got {self.throttle_factor}"
            )
        self.temperature = self.ambient_celsius
        self.throttled = False

    def advance(self, chip_power: float, duration: float) -> float:
        """Advance the die state by ``duration`` seconds at ``chip_power``.

        Returns the performance/power derate factor in effect for the
        window (1.0 when not throttled).  The derate is decided at the
        window's start (hysteresis state), then the temperature is
        integrated with the (possibly derated) power.
        """
        if chip_power < 0:
            raise ValueError(f"chip_power must be >= 0, got {chip_power}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")

        if self.throttled and self.temperature <= self.resume_celsius:
            self.throttled = False
        elif not self.throttled and self.temperature >= self.throttle_celsius:
            self.throttled = True
        factor = self.throttle_factor if self.throttled else 1.0

        import math
        decay = math.exp(-duration / self.time_constant)
        steady = self.ambient_celsius + chip_power * factor * self.resistance
        self.temperature = steady + (self.temperature - steady) * decay
        return factor

    def reset(self) -> None:
        """Return to ambient, unthrottled."""
        self.temperature = self.ambient_celsius
        self.throttled = False
