"""Analytic performance model of the simulated platform.

Maps an :class:`~repro.workloads.profile.ApplicationProfile` and a
:class:`~repro.platform.config_space.Configuration` to a ground-truth
heartbeat rate (heartbeats per second, the paper's performance metric from
Section 6.1).

The model decomposes per-heartbeat time at the baseline configuration
(one core, nominal frequency, one memory controller) into compute, memory,
and I/O portions and scales each with the relevant knobs:

* compute time shrinks with thread-level speedup (Amdahl's law with an
  effectiveness discount for hyperthread contexts) and with delivered
  core frequency (including TurboBoost's active-core-dependent bins);
* memory time shrinks with memory-level parallelism up to the
  application's sustainable stream count, and with the number of
  accessible memory controllers;
* I/O time is invariant.

On top of the decomposition, a contention penalty degrades throughput once
the thread count exceeds the application's scaling peak, reproducing
behaviours like kmeans' sharp drop past 8 threads (Section 2).
"""

from __future__ import annotations

from repro.platform.config_space import Configuration
from repro.platform.topology import PAPER_TOPOLOGY, Topology
from repro.workloads.profile import ApplicationProfile
from repro.platform.dvfs import NOMINAL_GHZ

#: Throughput boost from unlocking the second memory controller for a
#: fully memory-bound application.  Less memory-bound applications see
#: proportionally less.
MEMORY_CONTROLLER_BOOST = 0.7


def thread_speedup(profile: ApplicationProfile, config: Configuration) -> float:
    """Amdahl speedup of the compute portion at ``config``.

    Hyperthread partner contexts contribute ``ht_efficiency`` of a
    physical core each; negative efficiencies model destructive sharing.
    """
    extra = config.threads - config.cores
    effective = config.cores + profile.ht_efficiency * extra
    effective = max(effective, 0.1)
    s = profile.serial_fraction
    return 1.0 / (s + (1.0 - s) / effective)


def contention_penalty(profile: ApplicationProfile, config: Configuration) -> float:
    """Multiplicative throughput penalty past the scaling peak, in (0, 1]."""
    over = max(0, config.threads - profile.scaling_peak)
    return 1.0 / (1.0 + profile.contention_slope * over)


def memory_speedup(profile: ApplicationProfile, config: Configuration) -> float:
    """Speedup of the memory-bound portion at ``config``.

    Memory time shrinks with overlapping streams (bounded by the
    application's memory-level parallelism) and with controller count.
    """
    streams = min(config.threads, profile.memory_parallelism)
    controllers = 1.0 + MEMORY_CONTROLLER_BOOST * (config.memory_controllers - 1)
    return streams * controllers


class PerformanceModel:
    """Ground-truth heartbeat-rate model for a fixed topology."""

    def __init__(self, topology: Topology = PAPER_TOPOLOGY) -> None:
        self.topology = topology

    def heartbeat_rate(self, profile: ApplicationProfile,
                       config: Configuration) -> float:
        """Noise-free heartbeats/s of ``profile`` running at ``config``."""
        if config.cores > self.topology.total_cores:
            raise ValueError(
                f"configuration uses {config.cores} cores but the machine "
                f"has {self.topology.total_cores}"
            )
        base_period = 1.0 / profile.base_rate
        t_cpu0 = base_period * profile.compute_intensity
        t_mem0 = base_period * profile.memory_intensity
        t_io0 = base_period * profile.io_intensity

        freq_factor = config.effective_ghz(self.topology.total_cores) / NOMINAL_GHZ
        t_cpu = t_cpu0 / (thread_speedup(profile, config) * freq_factor)
        t_mem = t_mem0 / memory_speedup(profile, config)
        period = t_cpu + t_mem + t_io0

        return contention_penalty(profile, config) / period

    def speedup(self, profile: ApplicationProfile, config: Configuration,
                baseline: Configuration) -> float:
        """Rate at ``config`` relative to the rate at ``baseline``.

        The paper reports performance "measured as speedup" in Figures 5
        and 9; this helper provides the same normalization.
        """
        return (self.heartbeat_rate(profile, config)
                / self.heartbeat_rate(profile, baseline))
